"""Ablation — cache eviction policies under a skewed working set.

The paper uses a simple LRU cache for hot chunks (§4.3: "Various cache
algorithms could be applied here but in our experiment, we used a LRU
based approach").  This ablation quantifies the choice: a capacity-
limited cache under a hot/cold skewed read workload, comparing the
hit rate and mean read latency of LRU, LFU, and FIFO eviction.
"""


from repro.bench import KiB, build_cluster, proposed, render_table, report
from repro.sim import RngRegistry

NUM_OBJECTS = 40
OBJ_SIZE = 2 * KiB
HOT_SET = 8  # the first N objects take most of the traffic
READS = 600


def run_policy(policy: str):
    storage = proposed(
        build_cluster(),
        chunk_size=1 * KiB,
        cache_policy=policy,
        cache_capacity_bytes=HOT_SET * OBJ_SIZE,  # room for the hot set only
        hit_count_threshold=1,
        hitset_period=1_000.0,  # everything counts as hot: cache-on-flush
    )
    rng = RngRegistry(seed=17).stream(f"access-{policy}")
    for i in range(NUM_OBJECTS):
        storage.write_sync(f"obj{i}", bytes([i]) * OBJ_SIZE)
    storage.drain()

    latencies = []
    for _ in range(READS):
        # 80% of reads hit the hot set, 20% spread over the rest.
        if rng.random() < 0.8:
            oid = f"obj{rng.randrange(HOT_SET)}"
        else:
            oid = f"obj{HOT_SET + rng.randrange(NUM_OBJECTS - HOT_SET)}"
        t0 = storage.sim.now
        storage.read_sync(oid)
        latencies.append(storage.sim.now - t0)
        # Let the engine enforce capacity between reads.
        storage.cluster.run(storage.engine.enforce_cache_capacity())
    hits, misses = storage.tier.cache_hits, storage.tier.cache_misses
    return {
        "hit_rate": hits / (hits + misses),
        "mean_latency": sum(latencies) / len(latencies),
    }


def run_experiment():
    return {policy: run_policy(policy) for policy in ("lru", "lfu", "fifo")}


def test_ablation_cache_policy(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for policy, r in results.items():
        rows.append(
            (
                policy,
                f"{100 * r['hit_rate']:.1f}",
                f"{r['mean_latency'] * 1e3:.3f}",
            )
        )
        benchmark.extra_info[policy] = round(100 * r["hit_rate"], 1)
    report(
        render_table(
            "Ablation: cache eviction policy (80/20 skewed reads, tight cache)",
            ["policy", "cache hit rate (%)", "mean read latency (ms)"],
            rows,
            notes=["paper §4.3 uses LRU; recency-aware policies keep the hot set"],
        )
    )
    # Recency/frequency-aware policies must beat FIFO on a skewed stream.
    assert results["lru"]["hit_rate"] > results["fifo"]["hit_rate"]
    assert results["lfu"]["hit_rate"] > results["fifo"]["hit_rate"]
    # Better hit rate shows up as lower read latency.
    assert results["lru"]["mean_latency"] < results["fifo"]["mean_latency"]
