"""Ablation — chunk size vs foreground cost of immediate dedup.

Table 2 showed chunk size trading dedup ratio against metadata; this
ablation shows its *performance* face: under flush-on-write (immediate
dedup), a sub-chunk random write's read-modify-write grows with the
chunk size (§3.1: "reading 32KB chunk => modifying 16KB data => writing
32KB chunk"), while the post-processing design stays flat because the
RMW is deferred off the foreground path.
"""


from repro.bench import KiB, MiB, build_cluster, proposed, render_table, report
from repro.workloads import FioJobSpec, FioRunner

CHUNK_SIZES = (16 * KiB, 32 * KiB, 64 * KiB)


def rand_write_spec(seed):
    return FioJobSpec(
        pattern="randwrite",
        block_size=8 * KiB,
        file_size=2 * MiB,
        object_size=64 * KiB,
        numjobs=2,
        iodepth=4,
        runtime=0.15,
        seed=seed,
    )


def measure(chunk_size: int, flush_on_write: bool) -> float:
    storage = proposed(
        build_cluster(), chunk_size=chunk_size, flush_on_write=flush_on_write
    )
    prefill = FioJobSpec(
        pattern="write",
        block_size=64 * KiB,
        file_size=2 * MiB,
        object_size=64 * KiB,
        numjobs=2,
        seed=1,
    )
    FioRunner(storage, prefill).run()
    storage.drain()
    result = FioRunner(storage, rand_write_spec(seed=3)).run()
    if not flush_on_write:
        storage.drain()
    return result.latency.mean


def run_experiment():
    out = {}
    for chunk in CHUNK_SIZES:
        out[chunk] = (
            measure(chunk, flush_on_write=True),
            measure(chunk, flush_on_write=False),
        )
    return out


def test_ablation_chunk_size_vs_write_latency(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for chunk, (inline_lat, post_lat) in results.items():
        rows.append(
            (
                f"{chunk // KiB}KiB",
                f"{inline_lat * 1e3:.3f}",
                f"{post_lat * 1e3:.3f}",
            )
        )
        benchmark.extra_info[f"{chunk // KiB}KiB"] = {
            "flush_ms": round(inline_lat * 1e3, 3),
            "post_ms": round(post_lat * 1e3, 3),
        }
    report(
        render_table(
            "Ablation: 8KiB random-write latency vs chunk size",
            ["chunk", "flush-on-write (ms)", "post-processing (ms)"],
            rows,
            notes=[
                "immediate dedup pays a chunk-sized RMW per sub-chunk write;",
                "post-processing defers it off the foreground path",
            ],
        )
    )
    # Immediate dedup degrades with chunk size...
    assert results[64 * KiB][0] > 1.3 * results[16 * KiB][0]
    # ...post-processing stays roughly flat (within 30%)...
    assert results[64 * KiB][1] < 1.3 * results[16 * KiB][1]
    # ...and beats flush-on-write at every chunk size.
    for chunk in CHUNK_SIZES:
        assert results[chunk][1] < results[chunk][0]
