"""Ablation — static chunking vs content-defined chunking (CDC).

The paper chose static chunking because Ceph's small-write path is
already CPU-bound (§5): CDC's per-byte rolling hash would steal cycles
from foreground I/O.  The flip side is that static chunking cannot find
duplicates at shifted offsets.

This bench measures both sides on the same data: dedup ratio on aligned
vs shifted duplicate streams, and the CPU cost per byte of each
chunker.
"""

import time

import pytest

from repro.bench import KiB, MiB, render_table, report
from repro.chunking import GearChunker, StaticChunker
from repro.fingerprint import fingerprint
from repro.sim import RngRegistry


def dedup_ratio(chunker, streams):
    seen = set()
    total = 0
    unique = 0
    for stream in streams:
        for span in chunker.chunk(stream):
            total += span.length
            fp = fingerprint(span.data)
            if fp not in seen:
                seen.add(fp)
                unique += span.length
    return 1 - unique / total


def run_experiment():
    rng = RngRegistry(seed=11).stream("data")
    base = rng.randbytes(4 * MiB)
    aligned_streams = [base, base]
    shifted_streams = [base, b"SHIFT!!" + base]  # duplicates at +7 bytes

    static = StaticChunker(32 * KiB)
    cdc = GearChunker(avg_size=32 * KiB)

    out = {}
    for name, chunker in (("static 32KiB", static), ("CDC (gear) ~32KiB", cdc)):
        t0 = time.perf_counter()
        aligned = dedup_ratio(chunker, aligned_streams)
        shifted = dedup_ratio(chunker, shifted_streams)
        elapsed = time.perf_counter() - t0
        processed = 4 * len(base)
        out[name] = {
            "aligned": aligned,
            "shifted": shifted,
            "mbps": processed / elapsed / 1e6,
        }
    return out


def test_ablation_static_vs_cdc(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        rows.append(
            (
                name,
                f"{100 * r['aligned']:.1f}",
                f"{100 * r['shifted']:.1f}",
                f"{r['mbps']:.0f}",
            )
        )
        benchmark.extra_info[name] = {
            "aligned_pct": round(100 * r["aligned"], 1),
            "shifted_pct": round(100 * r["shifted"], 1),
        }
    report(
        render_table(
            "Ablation: static vs content-defined chunking",
            ["chunker", "aligned dup %", "shifted dup %", "chunking MB/s (host)"],
            rows,
            notes=[
                "paper §5: static chosen for CPU; CDC finds shifted duplicates",
            ],
        )
    )
    static = results["static 32KiB"]
    cdc = results["CDC (gear) ~32KiB"]
    # Both catch aligned duplicates fully.
    assert static["aligned"] == pytest.approx(0.5, abs=0.01)
    assert cdc["aligned"] == pytest.approx(0.5, abs=0.05)
    # Only CDC catches shifted duplicates.
    assert static["shifted"] < 0.05
    assert cdc["shifted"] > 0.35
    # And static chunking is far cheaper on CPU.
    assert static["mbps"] > 5 * cdc["mbps"]
