"""Ablation — tier-level chunk compression (extension feature).

The paper composes dedup with *filesystem* compression (Figure 13); a
content-addressed chunk store can also compress beneath the fingerprint
itself.  This ablation measures the trade on compressible data: stored
bytes shrink further, while redirected reads pay a whole-chunk fetch
plus a decompression CPU charge.
"""


from repro.bench import KiB, build_cluster, fmt_bytes, proposed, render_table, report
from repro.workloads import ContentGenerator


def run_config(compress: bool):
    storage = proposed(
        build_cluster(),
        chunk_size=32 * KiB,
        cache_on_flush=False,
        compress_chunks=compress,
    )
    gen = ContentGenerator(seed=5, dedupe_ratio=0.4, compress_ratio=0.6)
    for i in range(64):
        storage.write_sync(f"obj{i}", gen.block(32 * KiB))
    storage.drain()
    report_ = storage.space_report()
    # Measure redirected read latency over the whole dataset.
    t0 = storage.sim.now
    for i in range(64):
        storage.read_sync(f"obj{i}")
    read_latency = (storage.sim.now - t0) / 64
    return report_, read_latency


def run_experiment():
    return {
        "raw chunks": run_config(False),
        "compressed chunks": run_config(True),
    }


def test_ablation_chunk_compression(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name, (space, latency) in results.items():
        rows.append(
            (
                name,
                fmt_bytes(space.chunk_data_bytes),
                f"{100 * space.actual_dedup_ratio:.1f}",
                f"{latency * 1e3:.3f}",
            )
        )
        benchmark.extra_info[name] = {
            "chunk_bytes": space.chunk_data_bytes,
            "read_ms": round(latency * 1e3, 3),
        }
    report(
        render_table(
            "Ablation: tier-level chunk compression (40% dup, 60% compressible)",
            ["config", "stored chunk bytes", "saving (%)", "read latency (ms)"],
            rows,
            notes=["compression stacks on dedup; reads pay decode CPU"],
        )
    )
    raw_space, raw_lat = results["raw chunks"]
    comp_space, comp_lat = results["compressed chunks"]
    # Compression shrinks stored data well beyond dedup alone...
    assert comp_space.chunk_data_bytes < 0.6 * raw_space.chunk_data_bytes
    # ...logical data is identical in both configs...
    assert comp_space.logical_bytes == raw_space.logical_bytes
    # ...and the read-path cost stays bounded (within 2x).
    assert comp_lat < 2.0 * raw_lat
