"""Ablation — double hashing vs a conventional fingerprint index.

The paper's core argument (§3.1): a fingerprint index needs >=32 bytes
of RAM per unique chunk, grows without bound with cluster capacity, and
needs a home (an MDS — a SPOF) in a shared-nothing cluster.  Double
hashing removes the structure entirely: chunk lookup is a pure placement
computation.

This bench ingests growing datasets and reports the index memory a
conventional design would need, next to the (constant: zero) state the
index-free design keeps — plus what capping that memory does to the
dedup ratio (evicted entries = missed duplicates).
"""


from repro.bench import KiB, MiB, render_table, report
from repro.fingerprint import FingerprintIndex, fingerprint
from repro.workloads import ContentGenerator

CHUNK = 32 * KiB
DATASET_SIZES = (8 * MiB, 16 * MiB, 32 * MiB)


def ingest(index: FingerprintIndex, total_bytes: int, seed: int = 5):
    """Stream a 50%-dedupable dataset through an index; returns the
    dedup ratio the index achieved."""
    gen = ContentGenerator(seed=seed, dedupe_ratio=0.5)
    duplicates = 0
    blocks = 0
    for block in gen.stream(total_bytes, CHUNK):
        fp = fingerprint(block)
        if index.lookup(fp) is not None:
            duplicates += 1
        else:
            index.insert(fp, ("chunk-pool", blocks))
        blocks += 1
    return duplicates / blocks


def run_experiment():
    rows = []
    for size in DATASET_SIZES:
        full = FingerprintIndex()
        ratio_full = ingest(full, size)
        capped = FingerprintIndex(memory_limit=64 * full.entry_bytes)
        ratio_capped = ingest(capped, size)
        rows.append(
            {
                "size": size,
                "index_bytes": full.memory_bytes(),
                "entries": len(full),
                "ratio_full": ratio_full,
                "ratio_capped": ratio_capped,
            }
        )
    return rows


def test_ablation_fingerprint_index_memory(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = []
    for row in rows:
        table.append(
            (
                f"{row['size'] // MiB}MiB",
                f"{row['entries']}",
                f"{row['index_bytes'] / 1024:.0f}KiB",
                "0",
                f"{100 * row['ratio_full']:.1f}",
                f"{100 * row['ratio_capped']:.1f}",
            )
        )
        benchmark.extra_info[f"{row['size'] // MiB}MiB"] = row["index_bytes"]
    report(
        render_table(
            "Ablation: fingerprint-index memory vs double hashing",
            [
                "dataset",
                "index entries",
                "index RAM",
                "double-hash RAM",
                "dedup % (index)",
                "dedup % (RAM-capped index)",
            ],
            table,
            notes=[
                "index RAM grows linearly with unique data; double hashing keeps none",
                "capping the index loses dedup opportunities (evictions)",
            ],
        )
    )
    # Index memory grows ~linearly with unique data.
    assert rows[1]["index_bytes"] > 1.7 * rows[0]["index_bytes"]
    assert rows[2]["index_bytes"] > 1.7 * rows[1]["index_bytes"]
    # A memory-capped index misses duplicates the full index finds.
    for row in rows:
        assert row["ratio_capped"] < row["ratio_full"]
