"""Ablation — strict vs false-positive reference counting (§4.6).

Strict counting dereferences synchronously ("strictly locks on
increment" *and* waits on decrement); the false-positive variant skips
the decrement wait, leaving temporary garbage references that a GC pass
resolves.  The paper notes the trade: better flush latency vs an extra
GC process.

This bench rewrites a working set repeatedly (every rewrite forces a
dereference of the previous chunk), comparing total simulated dedup
time, then shows the garbage that accrues before GC and that GC clears
it.
"""


from repro.bench import KiB, build_cluster, proposed, render_table, report
from repro.workloads import ContentGenerator


def rewrite_workload(storage, rounds=4, objects=24, seed=3):
    gen = ContentGenerator(seed=seed, dedupe_ratio=0.0)
    for round_no in range(rounds):
        for i in range(objects):
            storage.write_sync(f"obj{i}", gen.block(32 * KiB))
        start = storage.sim.now
        storage.cluster.run(storage.engine.drain(run_gc=False))
        yield storage.sim.now - start


def run_experiment():
    out = {}
    for mode in ("strict", "false_positive"):
        storage = proposed(
            build_cluster(), refcount_mode=mode, cache_on_flush=False
        )
        drain_times = list(rewrite_workload(storage, seed=7))
        pending = storage.engine.refcount.pending
        chunk_objects_before_gc = len(
            storage.cluster.list_objects(storage.tier.chunk_pool)
        )
        storage.drain()  # runs GC
        chunk_objects_after_gc = len(
            storage.cluster.list_objects(storage.tier.chunk_pool)
        )
        out[mode] = {
            "drain_time": sum(drain_times),
            "pending_before_gc": pending,
            "chunks_before_gc": chunk_objects_before_gc,
            "chunks_after_gc": chunk_objects_after_gc,
        }
    return out


def test_ablation_refcount_modes(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for mode, r in results.items():
        rows.append(
            (
                mode,
                f"{r['drain_time'] * 1e3:.2f}",
                r["pending_before_gc"],
                r["chunks_before_gc"],
                r["chunks_after_gc"],
            )
        )
        benchmark.extra_info[mode] = round(r["drain_time"] * 1e3, 3)
    report(
        render_table(
            "Ablation: strict vs false-positive refcount (rewrite-heavy)",
            [
                "mode",
                "dedup time (ms)",
                "pending derefs",
                "chunk objs pre-GC",
                "post-GC",
            ],
            rows,
            notes=["false-positive defers deref work to GC (paper §4.6)"],
        )
    )
    strict, fp = results["strict"], results["false_positive"]
    # Deferring dereferences makes the dedup passes themselves faster.
    assert fp["drain_time"] < strict["drain_time"]
    # The cost: garbage accumulates until GC...
    assert fp["pending_before_gc"] > 0
    assert fp["chunks_before_gc"] > strict["chunks_after_gc"]
    # ...and GC converges to the same live set as strict.
    assert fp["chunks_after_gc"] == strict["chunks_after_gc"]
