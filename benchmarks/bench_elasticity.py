"""Online elasticity — Table 1's scaling story without stopping the world.

Table 1 shows why dedup must be *global*: per-OSD dedup ratios collapse
as the cluster grows.  This experiment replays the growth itself online:
half the dataset lands on a 4-OSD cluster, then the cluster doubles to
8 OSDs *mid-workload* with a rate-limited rebalance migrating chunk
objects (refcounts ride along in their xattrs) while the second half of
the dataset is being written.

Measured: dedup-ratio continuity (global ratio before vs after the
expansion — dedup metadata survives migration, so the ratio must not
degrade), write-throughput continuity across the expansion, bytes moved,
and post-rebalance placement cleanliness.
"""

import os

from repro.bench import KiB, MiB, build_cluster, proposed, render_table, report
from repro.cluster import Rebalancer, placement_report, recover_sync
from repro.workloads import ContentGenerator

# REPRO_BENCH_FAST=1 (the CI bench-smoke job) shrinks the dataset so the
# experiment stays a smoke test.
FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

NUM_OBJECTS = 16 if FAST else 48
OBJECT_SIZE = 64 * KiB if FAST else 128 * KiB
DEDUPE_RATIO = 0.5
REBALANCE_RATE = 64 * MiB  # background migration throttle, bytes/s


def _write_batch(storage, payloads):
    """Write ``payloads`` concurrently; returns elapsed simulated time."""
    sim = storage.sim
    start = sim.now

    def run():
        procs = [
            sim.process(storage.write(oid, data))
            for oid, data in sorted(payloads.items())
        ]
        yield sim.all_of(procs)

    storage.cluster.run(run())
    return sim.now - start


def run_experiment():
    cluster = build_cluster(num_hosts=2, osds_per_host=2, pg_num=32)
    storage = proposed(cluster, start_engine=True)
    sim = storage.sim
    gen = ContentGenerator(seed=7, dedupe_ratio=DEDUPE_RATIO)
    payloads = {
        f"obj-{i}": gen.block(OBJECT_SIZE) for i in range(NUM_OBJECTS)
    }
    items = sorted(payloads.items())
    first, second = dict(items[: len(items) // 2]), dict(items[len(items) // 2:])

    # Phase 1: half the dataset on the small cluster, fully deduped.
    t_before = _write_batch(storage, first)
    storage.drain()
    report_before = storage.space_report()

    # Phase 2: double the cluster and write the rest WHILE a throttled
    # rebalance migrates the existing chunk/metadata objects.
    diff = cluster.expand("host2", 2)
    engine = Rebalancer(cluster, rate_limit_bps=REBALANCE_RATE)
    start = sim.now
    writes_done = {}

    def phase2():
        migration = sim.process(engine.run_to_completion(max_passes=8))
        procs = [
            sim.process(storage.write(oid, data))
            for oid, data in sorted(second.items())
        ]
        yield sim.all_of(procs)
        writes_done["at"] = sim.now
        yield sim.all_of([migration])

    cluster.run(phase2())
    t_during = writes_done["at"] - start
    storage.drain()
    # Chunks minted by the post-expansion dedup pass may have landed on
    # PGs that were still remapped; one more (unthrottled) sweep settles
    # them, and a recovery pass trims stray union copies of objects
    # created in the instant a remap retired.
    cluster.run(engine.run_to_completion(max_passes=8))
    recover_sync(cluster)
    report_after = storage.space_report()

    violations = placement_report(cluster)
    lost = [
        oid
        for oid, data in items
        if storage.read_sync(oid, 0, len(data)) != data
    ]
    return {
        "diff": diff,
        "stats": engine.stats,
        "before": report_before,
        "after": report_after,
        "t_before": t_before,
        "t_during": t_during,
        "bytes_before": sum(len(d) for d in first.values()),
        "bytes_during": sum(len(d) for d in second.values()),
        "violations": violations,
        "lost": lost,
    }


def test_elasticity_online_expansion(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    mbs_before = r["bytes_before"] / r["t_before"] / MiB
    mbs_during = r["bytes_during"] / r["t_during"] / MiB
    ratio_before = r["before"].ideal_dedup_ratio
    ratio_after = r["after"].ideal_dedup_ratio
    stats = r["stats"]
    rows = [
        ("4 OSDs (before)", f"{100 * ratio_before:.1f}", f"{mbs_before:.1f}", "-"),
        (
            "8 OSDs (expanding)",
            f"{100 * ratio_after:.1f}",
            f"{mbs_during:.1f}",
            f"{stats.bytes_moved / KiB:.0f} KiB",
        ),
    ]
    report(
        render_table(
            "Online elasticity: dedup ratio and throughput across a 4->8"
            " OSD expansion",
            ["cluster", "dedup %", "write MiB/s", "migrated"],
            rows,
            notes=[
                f"{r['diff'].pgs_remapped} PGs remapped;"
                f" {stats.objects_moved} objects moved;"
                f" rebalance throttled to {REBALANCE_RATE // MiB} MiB/s",
                f"placement violations after settle:"
                f" {len(r['violations'])}",
            ],
        )
    )
    benchmark.extra_info["elasticity"] = {
        "pgs_remapped": r["diff"].pgs_remapped,
        "bytes_moved": stats.bytes_moved,
        "dedup_pct_before": round(100 * ratio_before, 2),
        "dedup_pct_after": round(100 * ratio_after, 2),
        "write_mibs_before": round(mbs_before, 2),
        "write_mibs_during": round(mbs_during, 2),
    }
    # Zero data loss and clean final placement.
    assert not r["lost"]
    assert not r["violations"]
    # The expansion actually moved data (chunk objects migrated with
    # their refcount xattrs intact — the scrubbed invariant).
    assert r["diff"].pgs_remapped > 0
    assert stats.bytes_moved > 0
    # Dedup-ratio continuity: global dedup survives the migration.
    assert ratio_after >= ratio_before - 0.08
    # Throughput continuity: writes during the (throttled) rebalance keep
    # flowing — allow degradation, not collapse.
    assert mbs_during >= 0.3 * mbs_before
