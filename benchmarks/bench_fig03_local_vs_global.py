"""Figure 3 — deduplication ratio: local (per-OSD) vs global.

Paper setup: 4 Ceph nodes x 4 OSDs; workloads FIO (dedupe 50 %, 80 %),
SPEC SFS 2014 DB at loads 1/3/10, and the SKT private cloud dataset.
Paper result (local %, global %): FIO-50 (4.20, 50.01), FIO-80
(12.98, 80.01), SFS-DB LD1 (8.96, 35.96), LD3 (32.53, 80.60), LD10
(50.02, 92.73), SKT cloud (21.53, 44.80).

Reproduction: same cluster shape, datasets scaled ~1000x down; dedup
ratios measured with the offline analyzer at the 32 KiB chunk size.
"""

import os

import pytest

from repro.bench import KiB, MiB, build_cluster, original, render_table, report
from repro.core import analyze_dedup_potential
from repro.workloads import (
    FioJobSpec,
    FioRunner,
    SfsDatabaseSpec,
    SfsDatabaseWorkload,
    VmImagePopulation,
    private_cloud_spec,
)

CHUNK = 32 * KiB

# REPRO_BENCH_FAST=1 (the CI bench-smoke job) halves the datasets so the
# whole figure runs in seconds; the measured ratios stay inside the
# assertion tolerances.
FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

#: (label, paper local %, paper global %)
PAPER = {
    "FIO dedup 50%": (4.20, 50.01),
    "FIO dedup 80%": (12.98, 80.01),
    "SFS DB (LD1)": (8.96, 35.96),
    "SFS DB (LD3)": (32.53, 80.60),
    "SFS DB (LD10)": (50.02, 92.73),
    "SKT private cloud": (21.53, 44.80),
}


def _fio_dataset(dedupe_pct: float):
    storage = original(build_cluster())
    spec = FioJobSpec(
        pattern="write",
        block_size=CHUNK,
        file_size=(4 if FAST else 8) * MiB,
        object_size=64 * KiB,
        dedupe_percentage=dedupe_pct,
        seed=int(dedupe_pct),
    )
    FioRunner(storage, spec).run()
    return storage


def _sfs_dataset(load: int, dedupe_ratio: float):
    storage = original(build_cluster())
    spec = SfsDatabaseSpec(
        load=load,
        dataset_per_load=(512 * KiB) if FAST else (1 * MiB),
        block_size=8 * KiB,
        object_size=64 * KiB,
        dedupe_ratio=dedupe_ratio,
        seed=load,
    )
    SfsDatabaseWorkload(storage, spec).prefill()
    return storage


def _cloud_dataset():
    storage = original(build_cluster())
    # Not shrunk in fast mode: the measured ratio depends on the spec's
    # base-image/patch-level structure, not just volume.
    VmImagePopulation(private_cloud_spec(num_vms=24, image_size=2 * MiB)).write_all(
        storage
    )
    return storage


def run_experiment():
    datasets = [
        ("FIO dedup 50%", lambda: _fio_dataset(50)),
        ("FIO dedup 80%", lambda: _fio_dataset(80)),
        ("SFS DB (LD1)", lambda: _sfs_dataset(1, 0.37)),
        ("SFS DB (LD3)", lambda: _sfs_dataset(3, 0.82)),
        ("SFS DB (LD10)", lambda: _sfs_dataset(10, 0.94)),
        ("SKT private cloud", _cloud_dataset),
    ]
    rows = []
    for label, make in datasets:
        storage = make()
        # SFS DB pages dedupe at their 8 KiB page granularity; the FIO
        # and cloud datasets are analysed at the system chunk size.
        chunk = 8 * KiB if label.startswith("SFS") else CHUNK
        result = analyze_dedup_potential(storage.cluster, storage.pool, chunk)
        rows.append((label, result.local_ratio, result.global_ratio))
    return rows


def test_fig3_local_vs_global(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = []
    for label, local, global_ in rows:
        p_local, p_global = PAPER[label]
        table.append(
            (
                label,
                f"{100 * local:.1f}",
                f"{p_local:.1f}",
                f"{100 * global_:.1f}",
                f"{p_global:.1f}",
            )
        )
        benchmark.extra_info[label] = {
            "local_pct": round(100 * local, 2),
            "global_pct": round(100 * global_, 2),
        }
    report(
        render_table(
            "Figure 3: dedup ratio (%), local vs global (16 OSDs)",
            ["workload", "local", "paper", "global", "paper"],
            table,
            notes=["datasets scaled ~1000x (MiB for GiB); 4 hosts x 4 OSDs"],
        )
    )
    # Shape assertions: global always beats local, by a wide margin.
    for label, local, global_ in rows:
        assert global_ > 1.5 * local, f"{label}: global must dominate local"
    by_label = {label: (local, global_) for label, local, global_ in rows}
    assert by_label["FIO dedup 50%"][1] == pytest.approx(0.50, abs=0.08)
    assert by_label["FIO dedup 80%"][1] == pytest.approx(0.80, abs=0.08)
    assert by_label["SKT private cloud"][1] == pytest.approx(0.448, abs=0.10)
