"""Figure 5 — why the paper chose rate-controlled post-processing.

(a) *Partial write problem* (inline processing): a 16 KiB foreground
    write on a 32 KiB-chunk system forces read-modify-write of the
    whole chunk before the ack.  Paper: sequential-write throughput
    collapses versus the original system.

(b) *Interference problem* (post-processing): an un-throttled background
    dedup pass drags foreground sequential writes from ~600 MB/s to
    ~200 MB/s.

Reproduction: same experiment shapes on the simulated testbed; absolute
MB/s differ from the paper's hardware, the collapse factors are the
result.
"""


from repro.bench import (
    KiB,
    MiB,
    build_cluster,
    inline,
    original,
    proposed,
    render_table,
    report,
)
from repro.workloads import FioJobSpec, FioRunner


def seq_write_spec(block_size: int, runtime=None, file_size=8 * MiB, seed=1):
    return FioJobSpec(
        pattern="write",
        block_size=block_size,
        file_size=file_size,
        object_size=64 * KiB,
        iodepth=4,
        runtime=runtime,
        seed=seed,
    )


def run_fig5a():
    """Original vs inline dedup under 16 KiB sequential writes."""
    results = {}
    storage = original(build_cluster())
    results["Original"] = FioRunner(storage, seq_write_spec(16 * KiB)).run()
    storage = inline(build_cluster())
    # Write the file once so every later 16 KiB write is a partial
    # overwrite of an existing 32 KiB chunk (the paper's scenario).
    FioRunner(storage, seq_write_spec(32 * KiB, seed=2)).run()
    results["Inline"] = FioRunner(storage, seq_write_spec(16 * KiB)).run()
    return results


def run_fig5b():
    """Foreground throughput with and without background dedup.

    The interfered run writes a large backlog first, then measures
    foreground sequential writes while the (un-throttled, multi-worker)
    engine chews through it — the paper's Figure 5-(b) scenario.
    """
    results = {}
    window = 0.35  # measurement window, sized to the backlog drain time

    def fg_spec(seed):
        # Three clients (the paper's testbed) pushing hard enough that
        # foreground I/O actually competes for cluster resources.
        return FioJobSpec(
            pattern="write",
            block_size=64 * KiB,
            file_size=24 * MiB,
            object_size=64 * KiB,
            numjobs=3,
            iodepth=8,
            runtime=window,
            seed=seed,
        )

    # Ideal: no dedup work pending.
    storage = proposed(build_cluster(), rate_control=False)
    results["No dedup (ideal)"] = FioRunner(storage, fg_spec(1)).run()

    # Interfered: large dirty backlog, un-throttled engine with an
    # aggressive thread pool (8 dedup threads per OSD).
    storage = proposed(build_cluster(), rate_control=False, engine_workers=128)
    backlog = FioJobSpec(
        pattern="write",
        block_size=64 * KiB,
        file_size=64 * MiB,
        object_size=64 * KiB,
        numjobs=4,
        iodepth=4,
        seed=9,
    )
    FioRunner(storage, backlog).run()
    storage.engine.start()
    results["Dedup w/o rate control"] = FioRunner(storage, fg_spec(3)).run()
    storage.engine.stop()
    return results


def test_fig5a_partial_write_problem(benchmark):
    results = benchmark.pedantic(run_fig5a, rounds=1, iterations=1)
    rows = [
        (name, f"{r.bandwidth / 1e6:.0f}", f"{r.latency.mean * 1e3:.3f}")
        for name, r in results.items()
    ]
    report(
        render_table(
            "Figure 5-(a): inline partial-write problem (16KiB seq writes, 32KiB chunks)",
            ["system", "MB/s", "mean latency (ms)"],
            rows,
            notes=["paper: inline throughput collapses vs Original"],
        )
    )
    for name, r in results.items():
        benchmark.extra_info[name] = round(r.bandwidth / 1e6, 1)
    # The collapse: inline read-modify-write costs at least ~35% of
    # the original throughput.
    assert results["Inline"].bandwidth < 0.65 * results["Original"].bandwidth


def test_fig5b_interference_problem(benchmark):
    results = benchmark.pedantic(run_fig5b, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        rows.append((name, f"{r.bandwidth / 1e6:.0f}"))
        benchmark.extra_info[name] = round(r.bandwidth / 1e6, 1)
    report(
        render_table(
            "Figure 5-(b): foreground interference from un-throttled dedup",
            ["scenario", "MB/s (mean during dedup window)"],
            rows,
            notes=["paper: ~600 MB/s drops to ~200 MB/s while dedup runs"],
        )
    )
    ideal = results["No dedup (ideal)"].bandwidth
    interfered = results["Dedup w/o rate control"].bandwidth
    assert interfered < 0.55 * ideal  # paper: a ~3x collapse
