"""Figure 10 — small random performance (8 KiB, 32 KiB chunks).

Paper setup: single client, FIO 4 threads x 4 iodepth, 8 KiB random
read/write on a 32 KiB-chunk system.  Paper findings:

* random write: *Proposed* +<=20 % latency and ~2x CPU vs *Original*
  (extra chunk-map updates and background flush work);
  *Proposed-flush* (immediate dedup) is the worst of all;
  *Proposed-cache* (data still in the metadata pool) ~= Original.
* random read: *Proposed* pays the redirection to the chunk pool;
  *Proposed-cache* ~= Original.
"""


import os

from repro.bench import KiB, MiB, build_cluster, original, proposed, render_table, report
from repro.workloads import FioJobSpec, FioRunner

# REPRO_BENCH_FAST=1 (the CI bench-smoke job) shrinks the files and the
# timed window; the latency *ratios* the assertions check are unaffected.
FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

RUNTIME = 0.15 if FAST else 0.3


def rand_spec(pattern, seed=5):
    return FioJobSpec(
        pattern=pattern,
        block_size=8 * KiB,
        file_size=(2 if FAST else 4) * MiB,
        object_size=64 * KiB,
        numjobs=4,
        iodepth=4,
        runtime=RUNTIME,
        seed=seed,
    )


def prefill(storage):
    FioRunner(
        storage,
        FioJobSpec(
            pattern="write",
            block_size=32 * KiB,
            file_size=(2 if FAST else 4) * MiB,
            object_size=64 * KiB,
            numjobs=4,
            seed=1,
        ),
    ).run()


def run_experiment():
    out = {"write": {}, "read": {}}

    storage = original(build_cluster())
    prefill(storage)
    out["write"]["Original"] = FioRunner(storage, rand_spec("randwrite")).run()
    out["read"]["Original"] = FioRunner(storage, rand_spec("randread")).run()

    # Proposed: rate-controlled post-processing with the background
    # engine active; data has been flushed to the chunk pool (steady
    # state), so reads pay the redirection.  Hot caching is off so the
    # working set stays in the chunk pool (that is what this
    # configuration measures — Proposed-cache below measures the other).
    storage = proposed(
        build_cluster(),
        ops_per_dedup_high=10,
        ops_per_dedup_mid=2,
        engine_workers=16,
        cache_on_flush=False,
    )
    prefill(storage)
    storage.drain()
    storage.engine.start()
    out["write"]["Proposed"] = FioRunner(storage, rand_spec("randwrite")).run()
    storage.engine.stop()
    storage.drain()
    out["read"]["Proposed"] = FioRunner(storage, rand_spec("randread")).run()

    # Proposed-flush: every write deduplicates before the ack.
    storage = proposed(build_cluster(), flush_on_write=True)
    prefill(storage)
    storage.drain()
    out["write"]["Proposed-flush"] = FioRunner(storage, rand_spec("randwrite")).run()

    # Proposed-cache: the working set stays cached in the metadata pool
    # (hitcount threshold 1 -> everything is hot).
    storage = proposed(
        build_cluster(), hit_count_threshold=1, hitset_period=100.0
    )
    prefill(storage)
    storage.drain()  # flushes but keeps the data cached
    storage.engine.start()
    out["write"]["Proposed-cache"] = FioRunner(storage, rand_spec("randwrite")).run()
    out["read"]["Proposed-cache"] = FioRunner(storage, rand_spec("randread")).run()
    return out


def test_fig10_small_random(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for direction in ("write", "read"):
        rows = []
        for name, res in results[direction].items():
            rows.append(
                (name, f"{res.latency.mean * 1e3:.3f}", f"{res.cpu_percent:.1f}")
            )
            benchmark.extra_info[f"{direction}:{name}"] = {
                "latency_ms": round(res.latency.mean * 1e3, 3),
                "cpu_pct": round(res.cpu_percent, 1),
            }
        report(
            render_table(
                f"Figure 10: 8KiB random {direction} (4 jobs x 4 iodepth)",
                ["system", "mean latency (ms)", "CPU (%)"],
                rows,
                notes=[
                    "paper: Proposed write +<=20% latency/~2x CPU; "
                    "flush worst; cache ~= Original; read pays redirection"
                ],
            )
        )

    w = {k: v.latency.mean for k, v in results["write"].items()}
    r = {k: v.latency.mean for k, v in results["read"].items()}
    # Write: Proposed within ~40% of Original; flush clearly worst;
    # cache close to Original.
    assert w["Proposed"] < 1.40 * w["Original"]
    assert w["Proposed-flush"] > 1.5 * w["Proposed"]
    assert w["Proposed-cache"] < 1.35 * w["Original"]
    # Read: redirection penalty for Proposed; cache ~= Original.
    assert r["Proposed"] > 1.2 * r["Original"]
    assert r["Proposed-cache"] < 1.2 * r["Original"]
