"""Figure 11 — sequential read/write at 32/64/128 KiB (3 clients).

Paper findings (32 KiB-chunk system, data flushed to the chunk pool
before the read tests):

* read: Proposed is ~half of Original at small block sizes (the
  redirection overhead dominates), and the gap closes at 128 KiB
  because the four 32 KiB chunks are requested from the chunk pool in
  parallel;
* write: with watermark rate control, Proposed writes at near-Original
  throughput regardless of the client block size.
"""


import os

from repro.bench import KiB, MiB, build_cluster, original, proposed, render_table, report
from repro.workloads import FioJobSpec, FioRunner

# REPRO_BENCH_FAST=1 (the CI bench-smoke job) halves each client's file;
# the bandwidth *ratios* the assertions check are unaffected.
FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

BLOCK_SIZES = (32 * KiB, 64 * KiB, 128 * KiB)


def seq_spec(pattern, block_size, seed):
    return FioJobSpec(
        pattern=pattern,
        block_size=block_size,
        file_size=(2 if FAST else 4) * MiB,
        object_size=128 * KiB,
        numjobs=3,
        iodepth=4,
        seed=seed,
    )


def run_experiment():
    out = {"read": {}, "write": {}}
    for block in BLOCK_SIZES:
        storage = original(build_cluster())
        out["write"][("Original", block)] = FioRunner(
            storage, seq_spec("write", block, seed=block)
        ).run()
        out["read"][("Original", block)] = FioRunner(
            storage, seq_spec("read", block, seed=block)
        ).run()

        storage = proposed(build_cluster(), engine_workers=16)
        out["write"][("Proposed", block)] = FioRunner(
            storage, seq_spec("write", block, seed=block)
        ).run()
        storage.drain()  # all data flushed to the chunk pool before reads
        out["read"][("Proposed", block)] = FioRunner(
            storage, seq_spec("read", block, seed=block)
        ).run()
    return out


def test_fig11_sequential(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for direction in ("write", "read"):
        rows = []
        for block in BLOCK_SIZES:
            orig = results[direction][("Original", block)]
            prop = results[direction][("Proposed", block)]
            rows.append(
                (
                    f"{block // KiB}KiB",
                    f"{orig.bandwidth / 1e6:.0f}",
                    f"{prop.bandwidth / 1e6:.0f}",
                    f"{orig.latency.mean * 1e3:.3f}",
                    f"{prop.latency.mean * 1e3:.3f}",
                )
            )
            benchmark.extra_info[f"{direction}:{block // KiB}KiB"] = {
                "original_MBps": round(orig.bandwidth / 1e6, 1),
                "proposed_MBps": round(prop.bandwidth / 1e6, 1),
            }
        report(
            render_table(
                f"Figure 11: sequential {direction} (3 clients, 32KiB chunks)",
                [
                    "block",
                    "Original MB/s",
                    "Proposed MB/s",
                    "Original ms",
                    "Proposed ms",
                ],
                rows,
                notes=[
                    "paper: read gap large at 32KiB (redirection), closes at "
                    "128KiB (parallel chunk reads); writes similar under rate control"
                ],
            )
        )

    def ratio(direction, block):
        return (
            results[direction][("Proposed", block)].bandwidth
            / results[direction][("Original", block)].bandwidth
        )

    # Reads: a visible redirection penalty at 32 KiB that shrinks by
    # 128 KiB (parallel chunk fetches).
    assert ratio("read", 32 * KiB) < 0.85
    assert ratio("read", 128 * KiB) > ratio("read", 32 * KiB)
    # Writes: Proposed holds near-Original throughput at every size.
    for block in BLOCK_SIZES:
        assert ratio("write", block) > 0.65
