"""Figure 12 — SPEC SFS 2014 DB workload with replication and EC.

Paper setup: KRBD block device, SFS 2014 DATABASE at LOAD=10 (240 GB),
four systems: Replication (x2), Proposed, EC (2+1), Proposed-EC.
Findings (Fig. 12 a-e):

* (a) throughput: Replication ~= Proposed; EC and Proposed-EC
  significantly lower (they cannot sustain the requested op rate);
* (b) latency: Replication 1.26 ms, Proposed 4.1 ms (dedup processing
  overhead), EC/Proposed-EC ~2 s (random writes require parity
  recalculation and read-modify-write);
* (c, d) per-op IOPS and latency: same story per op type — the EC
  random-write RMW dominates;
* (e) storage: Replication 428 GB, EC 320 GB, Proposed only 48 GB.

Reproduction: dataset scaled to 5 MiB (x1000 smaller, 1 MiB objects so
sub-stripe writes force the EC RMW), fixed-rate open-loop arrivals.
The proposed system chunks at the 8 KiB DB page size (the granularity
at which DB pages dedup; Fig. 3 measured the LD10 dataset at ~93 %
dedupable).
"""

import pytest

from repro.bench import (
    KiB,
    MiB,
    build_cluster,
    fmt_bytes,
    original,
    proposed,
    render_table,
    report,
)
from repro.metrics import storage_breakdown
from repro.workloads import SfsDatabaseSpec, SfsDatabaseWorkload

PAPER_NOTES = [
    "paper: throughput rep~=proposed >> EC~=proposed-EC; latency 1.26ms /",
    "4.1ms / ~2s / ~2s; storage rep 428GB, EC 320GB, proposed 48GB",
]


def sfs_spec():
    return SfsDatabaseSpec(
        load=10,
        ops_per_load=240,
        dataset_per_load=512 * KiB,
        block_size=8 * KiB,
        object_size=1 * MiB,
        duration=2.0,
        dedupe_ratio=0.9,
        seed=7,
    )


def run_one(storage, dedup: bool):
    workload = SfsDatabaseWorkload(storage, sfs_spec())
    workload.prefill()
    if dedup:
        storage.drain()
        storage.engine.start()
    result = workload.run()
    if dedup:
        storage.engine.stop()
        storage.drain()
    used = storage_breakdown(storage.cluster).total
    return result, used


def run_experiment():
    out = {}
    out["Replication"] = run_one(original(build_cluster()), dedup=False)
    out["Proposed"] = run_one(
        proposed(
            build_cluster(),
            chunk_size=8 * KiB,
            cache_on_flush=False,
            engine_workers=16,
        ),
        dedup=True,
    )
    out["EC"] = run_one(original(build_cluster(), ec=True), dedup=False)
    out["Proposed-EC"] = run_one(
        proposed(
            build_cluster(),
            ec=True,
            chunk_size=8 * KiB,
            cache_on_flush=False,
            engine_workers=16,
        ),
        dedup=True,
    )
    return out


def test_fig12_sfs_database(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # (a, b, e): totals.
    rows = []
    for name, (res, used) in results.items():
        rows.append(
            (
                name,
                f"{res.throughput / 1e6:.1f}",
                f"{res.total_latency.mean * 1e3:.2f}",
                f"{res.achieved_iops:.0f}",
                fmt_bytes(used),
            )
        )
        benchmark.extra_info[name] = {
            "throughput_MBps": round(res.throughput / 1e6, 2),
            "latency_ms": round(res.total_latency.mean * 1e3, 2),
            "used_bytes": used,
        }
    report(
        render_table(
            "Figure 12 (a,b,e): SFS DB totals (LOAD=10, scaled 1/1000)",
            ["system", "MB/s", "latency (ms)", "IOPS", "storage used"],
            rows,
            notes=PAPER_NOTES,
        )
    )

    # (c, d): per-op breakdown.
    rows = []
    for name, (res, _used) in results.items():
        for op in ("read", "randread", "randwrite"):
            rows.append(
                (
                    name,
                    op,
                    f"{res.op_iops(op):.0f}",
                    f"{res.per_op_latency[op].mean * 1e3:.2f}",
                )
            )
    report(
        render_table(
            "Figure 12 (c,d): SFS DB per-operation IOPS and latency",
            ["system", "op", "IOPS", "latency (ms)"],
            rows,
            notes=["paper: EC random write dominated by parity RMW"],
        )
    )

    thr = {k: v[0].throughput for k, v in results.items()}
    lat = {k: v[0].total_latency.mean for k, v in results.items()}
    used = {k: v[1] for k, v in results.items()}
    # (a) Rep ~= Proposed; EC variants significantly lower.
    assert thr["Proposed"] == pytest.approx(thr["Replication"], rel=0.10)
    assert thr["EC"] < 0.85 * thr["Replication"]
    assert thr["Proposed-EC"] < 0.85 * thr["Replication"]
    # (b) Proposed pays a bounded dedup overhead; EC explodes.
    assert lat["Proposed"] < 6 * lat["Replication"]
    assert lat["EC"] > 50 * lat["Replication"]
    assert lat["Proposed-EC"] > 50 * lat["Replication"]
    # (d) the EC pain is concentrated in random writes.
    ec_res = results["EC"][0]
    assert (
        ec_res.per_op_latency["randwrite"].mean
        > 1.5 * ec_res.per_op_latency["randread"].mean
    )
    # (e) dedup saves a large fraction of the storage.
    assert used["Proposed"] < 0.65 * used["Replication"]
    assert used["EC"] == pytest.approx(0.75 * used["Replication"], rel=0.15)
