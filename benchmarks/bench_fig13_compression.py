"""Figure 13 — dedup x redundancy x compression on VM images.

Paper: ten 8 GB Ubuntu VM images (identical OS, differing user data)
written under six configurations.  Cumulative space after 10 images:
replication x2 = 160 GB, EC 2+1 = 120 GB, rep+dedup ~= 2.2 GB
(~200 MB added per extra image), and EC+dedup+compression is the
minimum.  The point: the self-contained design composes with the
underlying redundancy scheme *and* with filesystem compression
multiplicatively.

Reproduction: ten 8 MiB images (scaled 1/1000) with a shared OS base;
compression is measured by running the node filesystems' zlib over each
OSD store (Btrfs-style 128 KiB extents).
"""

import pytest

from repro.bench import MiB, build_cluster, fmt_bytes, original, proposed, render_table, report
from repro.compression import ZlibCodec, compressed_store_bytes
from repro.workloads import VmImagePopulation, VmPopulationSpec

NUM_VMS = 10


def vm_spec():
    # Thin 8 MiB images: ~94% untouched zeros, a shared OS portion, and
    # a small unique tail per VM — the structure that lets the paper's
    # ten "8 GB" images dedup to ~2.2 GB with ~200 MB per extra image.
    return VmPopulationSpec(
        num_vms=NUM_VMS,
        image_size=8 * MiB,
        block_size=64 * 1024,
        os_base_fraction=0.03125,  # 4 of 128 blocks shared OS data
        common_fraction=0.0,
        zero_fraction=0.9375,  # 120 of 128 blocks never written
        compress_ratio=0.55,
        seed=13,
    )


def raw_used(cluster) -> int:
    return cluster.total_used_bytes()


def compressed_used(cluster) -> int:
    codec = ZlibCodec(level=1)
    return sum(
        compressed_store_bytes(osd.store, codec) for osd in cluster.osds.values()
    )


def run_experiment():
    """Cumulative usage per config after each VM image.

    Returns {config: [bytes after 1 image, ..., after 10]}.
    """
    curves = {}
    configs = [
        ("rep", lambda: original(build_cluster()), False),
        ("ec", lambda: original(build_cluster(), ec=True), False),
        ("rep+dedup", lambda: proposed(build_cluster(), cache_on_flush=False), True),
        (
            "ec+dedup",
            lambda: proposed(build_cluster(), ec=True, cache_on_flush=False),
            True,
        ),
    ]
    for name, make, dedup in configs:
        storage = make()
        population = VmImagePopulation(vm_spec())
        raw_curve, comp_curve = [], []
        for vm in range(NUM_VMS):
            # Stripe the image over 1 MiB objects (RBD-style).
            population.write_vm(storage, vm, object_size=1 * MiB)
            if dedup:
                storage.drain()
            raw_curve.append(raw_used(storage.cluster))
            comp_curve.append(compressed_used(storage.cluster))
        curves[name] = raw_curve
        curves[name + "+comp"] = comp_curve
    return curves


def test_fig13_compression_combination(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    order = ["rep", "ec", "rep+dedup", "rep+dedup+comp", "ec+dedup", "ec+dedup+comp"]
    rows = []
    for name in order:
        curve = curves[name]
        rows.append(
            (
                name,
                fmt_bytes(curve[0]),
                fmt_bytes(curve[4]),
                fmt_bytes(curve[-1]),
                fmt_bytes(curve[-1] - curve[-2]),
            )
        )
        benchmark.extra_info[name] = round(curve[-1] / 1e6, 2)
    report(
        render_table(
            "Figure 13: cumulative size of 10 VM images (8MiB each, scaled 1/1000)",
            ["config", "1 image", "5 images", "10 images", "+last image"],
            rows,
            notes=[
                "paper: rep 160GB, EC 120GB, rep+dedup ~2.2GB (+~200MB/image), "
                "ec+dedup+comp minimal"
            ],
        )
    )
    final = {name: curves[name][-1] for name in order}
    logical = NUM_VMS * 8 * MiB
    # Replication stores 2x logical; EC 1.5x.
    assert final["rep"] == pytest.approx(2 * logical, rel=0.05)
    assert final["ec"] == pytest.approx(1.5 * logical, rel=0.08)
    # Dedup collapses the shared OS base: > 5x saving vs replication.
    assert final["rep+dedup"] < final["rep"] / 5
    # Marginal cost of one more image is small under dedup.
    marginal = curves["rep+dedup"][-1] - curves["rep+dedup"][-2]
    assert marginal < 0.2 * 2 * 8 * MiB
    # Compression stacks on top of dedup; the EC+dedup+comp corner wins.
    assert final["rep+dedup+comp"] < final["rep+dedup"]
    assert final["ec+dedup+comp"] == min(final.values())
