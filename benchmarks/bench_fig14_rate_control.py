"""Figure 14 — deduplication rate control.

Paper: a foreground thread issues sequential writes while a background
dedup job runs.  Ideal (no dedup): ~500-600 MB/s.  Un-throttled dedup:
collapses to ~200 MB/s.  With watermark rate control: 400-500 MB/s —
most of the foreground throughput is preserved while dedup still makes
progress.

Reproduction: same scenario as Figure 5-(b) plus the rate-controlled
run (high-watermark pacing, one dedup I/O per 500 foreground ops above
the high watermark, per the paper's example values).
"""

import os

from repro.bench import KiB, MiB, build_cluster, proposed, render_table, report
from repro.workloads import FioJobSpec, FioRunner

# REPRO_BENCH_FAST=1 (the CI bench-smoke job) shrinks the workload so
# the shape of the result survives but the run finishes in seconds.
FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

WINDOW = 0.35


def fg_spec(seed):
    return FioJobSpec(
        pattern="write",
        block_size=64 * KiB,
        # Fast mode still needs > ops_per_dedup_high foreground ops in
        # the window so the paced engine gets at least one dedup slot.
        file_size=(12 if FAST else 24) * MiB,
        object_size=64 * KiB,
        numjobs=3,
        iodepth=8,
        runtime=WINDOW,
        seed=seed,
    )


def backlog_spec():
    return FioJobSpec(
        pattern="write",
        block_size=64 * KiB,
        file_size=(16 if FAST else 64) * MiB,
        object_size=64 * KiB,
        numjobs=4,
        iodepth=4,
        seed=9,
    )


def run_with_engine(rate_control: bool):
    storage = proposed(
        build_cluster(),
        rate_control=rate_control,
        low_watermark=100.0,
        high_watermark=1_000.0,
        ops_per_dedup_mid=100,
        ops_per_dedup_high=500,
        engine_workers=128,
    )
    FioRunner(storage, backlog_spec()).run()
    storage.engine.start()
    result = FioRunner(storage, fg_spec(3)).run()
    storage.engine.stop()
    processed = (
        storage.engine.stats.chunks_flushed + storage.engine.stats.chunks_deduped
    )
    return result, processed


def run_experiment():
    out = {}
    storage = proposed(build_cluster())
    out["No deduplication (ideal)"] = (FioRunner(storage, fg_spec(1)).run(), 0)
    out["Dedup w/o rate control"] = run_with_engine(rate_control=False)
    out["Dedup w/ rate control"] = run_with_engine(rate_control=True)
    return out


def test_fig14_rate_control(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name, (res, processed) in results.items():
        rows.append((name, f"{res.bandwidth / 1e6:.0f}", processed))
        benchmark.extra_info[name] = round(res.bandwidth / 1e6, 1)
    report(
        render_table(
            "Figure 14: foreground MB/s under background dedup",
            ["scenario", "MB/s", "chunks deduped in window"],
            rows,
            notes=[
                "paper: ideal 500-600, w/o control ~200, w/ control 400-500 MB/s"
            ],
        )
    )
    ideal = results["No deduplication (ideal)"][0].bandwidth
    wo = results["Dedup w/o rate control"][0].bandwidth
    w = results["Dedup w/ rate control"][0].bandwidth
    # Un-throttled dedup collapses foreground throughput (~3x)...
    assert wo < 0.55 * ideal
    # ...rate control restores most of it...
    assert w > 0.80 * ideal
    assert w > 1.3 * wo
    # ...while dedup still makes some progress.  The fast-mode smoke
    # shrinks the foreground burst below one paced dedup slot, so this
    # only holds for the full-size run.
    if not FAST:
        assert results["Dedup w/ rate control"][1] > 0
