"""Scalability — the design's headline architectural claim.

The paper's motivation for double hashing + self-contained objects is
that dedup must not cap the scale-out property: no fingerprint index to
shard, no MDS to bottleneck, chunk placement is pure computation.  This
bench grows the cluster (2/4/8 hosts) under a fixed per-client load and
checks that the deduplicated system's aggregate throughput scales like
the original system's — i.e. dedup does not bend the scaling curve.
"""


from repro.bench import KiB, MiB, build_cluster, original, proposed, render_table, report
from repro.workloads import FioJobSpec, FioRunner

HOST_COUNTS = (2, 4, 8)


def load_spec(num_hosts: int, seed: int):
    # Offered load grows with the cluster (2 client jobs per host).
    return FioJobSpec(
        pattern="randwrite",
        block_size=32 * KiB,
        file_size=4 * MiB,
        object_size=64 * KiB,
        numjobs=2 * num_hosts,
        iodepth=8,
        runtime=0.2,
        dedupe_percentage=50,
        seed=seed,
    )


def run_experiment():
    out = {}
    for hosts in HOST_COUNTS:
        plain = original(build_cluster(num_hosts=hosts, osds_per_host=4))
        res_plain = FioRunner(plain, load_spec(hosts, seed=1)).run()
        dedup = proposed(
            build_cluster(num_hosts=hosts, osds_per_host=4),
            engine_workers=4 * hosts,
        )
        dedup.engine.start()
        res_dedup = FioRunner(dedup, load_spec(hosts, seed=2)).run()
        dedup.engine.stop()
        out[hosts] = (res_plain, res_dedup)
    return out


def test_scalability_dedup_preserves_scaleout(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for hosts, (plain, dedup) in results.items():
        rows.append(
            (
                f"{hosts} hosts ({4 * hosts} OSDs)",
                f"{plain.bandwidth / 1e6:.0f}",
                f"{dedup.bandwidth / 1e6:.0f}",
                f"{dedup.bandwidth / plain.bandwidth:.2f}",
            )
        )
        benchmark.extra_info[f"hosts{hosts}"] = {
            "original_MBps": round(plain.bandwidth / 1e6, 1),
            "proposed_MBps": round(dedup.bandwidth / 1e6, 1),
        }
    report(
        render_table(
            "Scalability: aggregate write throughput vs cluster size",
            ["cluster", "Original MB/s", "Proposed MB/s", "ratio"],
            rows,
            notes=[
                "offered load grows with the cluster; dedup must not bend the curve",
            ],
        )
    )
    # Both systems scale up with cluster size...
    for system in (0, 1):
        t2 = results[2][system].bandwidth
        t8 = results[8][system].bandwidth
        assert t8 > 2.0 * t2
    # ...and the dedup system tracks the original within 30% at every size.
    for hosts, (plain, dedup) in results.items():
        assert dedup.bandwidth > 0.70 * plain.bandwidth
