"""Table 1 — local dedup ratio falls as the cluster grows; global stays.

Paper: FIO workload with dedupe 50 %; OSD counts 4/8/12/16.
Local dedup ratio: 15.5 / 8.1 / 5.5 / 4.1 %.  Global: 50 % throughout.

Reproduction: 4 hosts with 1/2/3/4 OSDs each (so failure domains match
the paper's fixed 4 nodes), same FIO dedupe-50 % dataset, analyzer at
the 32 KiB chunk size.
"""

import pytest

from repro.bench import KiB, MiB, build_cluster, original, render_table, report
from repro.workloads import FioJobSpec, FioRunner

PAPER_LOCAL = {4: 15.5, 8: 8.1, 12: 5.5, 16: 4.1}


def measure(osds_per_host: int):
    from repro.core import analyze_dedup_potential

    storage = original(build_cluster(num_hosts=4, osds_per_host=osds_per_host))
    spec = FioJobSpec(
        pattern="write",
        block_size=32 * KiB,
        file_size=8 * MiB,
        object_size=64 * KiB,
        dedupe_percentage=50,
        seed=50,
    )
    FioRunner(storage, spec).run()
    return analyze_dedup_potential(storage.cluster, storage.pool, 32 * KiB)


def run_experiment():
    return {4 * n: measure(n) for n in (1, 2, 3, 4)}


def test_table1_local_ratio_vs_osd_count(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for osds, result in results.items():
        rows.append(
            (
                f"{osds} OSD",
                f"{100 * result.local_ratio:.1f}",
                f"{PAPER_LOCAL[osds]:.1f}",
                f"{100 * result.global_ratio:.1f}",
                "50.0",
            )
        )
        benchmark.extra_info[f"osd{osds}"] = {
            "local_pct": round(100 * result.local_ratio, 2),
            "global_pct": round(100 * result.global_ratio, 2),
        }
    report(
        render_table(
            "Table 1: dedup ratio vs OSD count (FIO dedupe 50%)",
            ["cluster", "local", "paper", "global", "paper"],
            rows,
            notes=["fixed 4 hosts; OSDs per host 1/2/3/4"],
        )
    )
    # Global is constant at the workload's dedupe ratio...
    for result in results.values():
        assert result.global_ratio == pytest.approx(0.5, abs=0.08)
    # ...while local falls monotonically with OSD count.
    locals_ = [results[n].local_ratio for n in (4, 8, 12, 16)]
    assert locals_[0] > locals_[1] > locals_[3]
    assert locals_[0] > 2 * locals_[3]
