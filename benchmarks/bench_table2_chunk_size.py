"""Table 2 — deduplication ratio vs chunk size (16/32/64 KiB).

Paper (private-cloud dataset, redundancy excluded):

| chunk | ideal ratio | stored data | stored metadata | actual ratio |
|-------|-------------|-------------|-----------------|--------------|
| 16KiB | 46.4 %      | 1.82 TB     | 163 GB          | 41.7 %       |
| 32KiB | 44.8 %      | 1.88 TB     |  82 GB          | 42.4 %       |
| 64KiB | 43.7 %      | 1.89 TB     |  41 GB          | 43.3 %       |

The headline: the *smallest* chunk size has the best data-only ratio but
the worst **actual** ratio once the per-chunk metadata (150 B map
entries, 64 B references, 512 B per-object overhead) is charged — the
ordering inverts.

Reproduction: the scaled private-cloud population written through the
dedup tier at each chunk size, fully drained, with the cache disabled so
stored data is exactly the chunk pool.
"""

import pytest

from repro.bench import KiB, MiB, build_cluster, fmt_bytes, proposed, render_table, report
from repro.workloads import VmImagePopulation, private_cloud_spec

CHUNK_SIZES = (16 * KiB, 32 * KiB, 64 * KiB)

PAPER = {
    16 * KiB: (46.4, 41.7),
    32 * KiB: (44.8, 42.4),
    64 * KiB: (43.7, 43.3),
}


def measure(chunk_size: int):
    storage = proposed(
        build_cluster(), chunk_size=chunk_size, cache_on_flush=False
    )
    population = VmImagePopulation(private_cloud_spec(num_vms=24, image_size=2 * MiB))
    population.write_all(storage)
    storage.drain()
    return storage.space_report()


def run_experiment():
    return {size: measure(size) for size in CHUNK_SIZES}


def test_table2_chunk_size(benchmark):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for size in CHUNK_SIZES:
        rep = reports[size]
        p_ideal, p_actual = PAPER[size]
        rows.append(
            (
                f"{size // KiB}KiB",
                f"{100 * rep.ideal_dedup_ratio:.1f}",
                f"{p_ideal}",
                fmt_bytes(rep.chunk_data_bytes),
                fmt_bytes(rep.metadata_bytes),
                f"{100 * rep.actual_dedup_ratio:.1f}",
                f"{p_actual}",
            )
        )
        benchmark.extra_info[f"{size // KiB}KiB"] = {
            "ideal_pct": round(100 * rep.ideal_dedup_ratio, 2),
            "actual_pct": round(100 * rep.actual_dedup_ratio, 2),
            "metadata_bytes": rep.metadata_bytes,
        }
    report(
        render_table(
            "Table 2: dedup ratio vs chunk size (private-cloud dataset)",
            [
                "chunk",
                "ideal %",
                "paper",
                "stored data",
                "stored metadata",
                "actual %",
                "paper",
            ],
            rows,
            notes=["paper shows the ideal/actual ordering inverting with size"],
        )
    )

    ideals = [reports[s].ideal_dedup_ratio for s in CHUNK_SIZES]
    actuals = [reports[s].actual_dedup_ratio for s in CHUNK_SIZES]
    metadata = [reports[s].metadata_bytes for s in CHUNK_SIZES]
    # Ideal (data-only) ratio falls as chunks grow...
    assert ideals[0] > ideals[1] > ideals[2]
    # ...metadata shrinks roughly with 1/chunk-size...
    assert metadata[0] > 1.5 * metadata[1] > 2 * metadata[2]
    # ...and charging metadata inverts the ordering (the paper's point):
    # the smallest chunk has the best ideal ratio but the worst actual.
    assert ideals[0] == max(ideals)
    assert actuals[0] == min(actuals)
    # Sanity: the 32 KiB ideal ratio is in the paper's neighbourhood.
    assert ideals[1] == pytest.approx(0.448, abs=0.10)
