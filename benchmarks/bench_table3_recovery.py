"""Table 3 — data recovery accelerates under deduplication.

Paper: 100 GB stored at a 50 % dedup ratio, 2-way replication; OSDs are
removed and re-added; recovery time in seconds:

| failed OSDs | 1     | 2     | 4     |
|-------------|-------|-------|-------|
| Original    | 68.04 | 71.35 | 81.77 |
| Proposed    | 43.72 | 44.51 | 54.78 |

Deduplication roughly halves the bytes each failed OSD held, so
re-replication completes ~1.5-1.6x faster.

Reproduction: 32 MiB at 50 % duplicate content (scaled ~3000x), same
fail/out/recover cycle, recovery time measured on the simulated clock.
"""

import os

from repro.bench import KiB, MiB, build_cluster, original, proposed, render_table, report
from repro.cluster import recover_sync
from repro.workloads import FioJobSpec, FioRunner

# REPRO_BENCH_FAST=1 (the CI bench-smoke job) trims the sweep; the
# speedup assertions still run on the points that remain.
FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

PAPER = {
    1: (68.04, 43.72),
    2: (71.35, 44.51),
    4: (81.77, 54.78),
}

FAIL_COUNTS = (1, 4) if FAST else (1, 2, 4)


def _fill(storage):
    spec = FioJobSpec(
        pattern="write",
        block_size=32 * KiB,
        file_size=(4 if FAST else 8) * MiB,
        object_size=64 * KiB,
        numjobs=4,
        dedupe_percentage=50,
        seed=3,
    )
    FioRunner(storage, spec).run()


def measure(dedup: bool, failed: int) -> float:
    if dedup:
        storage = proposed(build_cluster(), cache_on_flush=False)
        _fill(storage)
        storage.drain()
    else:
        storage = original(build_cluster())
        _fill(storage)
    cluster = storage.cluster
    for osd_id in range(failed):
        cluster.fail_osd(osd_id)
    stats = recover_sync(cluster)
    assert stats.objects_lost == 0
    for osd_id in range(failed):
        cluster.revive_osd(osd_id)
    stats2 = recover_sync(cluster)
    assert stats2.objects_lost == 0
    return stats.duration + stats2.duration


def run_experiment():
    return {
        failed: (measure(False, failed), measure(True, failed))
        for failed in FAIL_COUNTS
    }


def test_table3_recovery_time(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for failed in FAIL_COUNTS:
        orig_t, prop_t = results[failed]
        p_orig, p_prop = PAPER[failed]
        rows.append(
            (
                f"{failed} OSD",
                f"{orig_t * 1e3:.1f}",
                f"{prop_t * 1e3:.1f}",
                f"{orig_t / prop_t:.2f}x",
                f"{p_orig / p_prop:.2f}x",
            )
        )
        benchmark.extra_info[f"failed{failed}"] = {
            "original_s": round(orig_t, 4),
            "proposed_s": round(prop_t, 4),
        }
    report(
        render_table(
            "Table 3: recovery time, 50% dup data, replication x2 (scaled)",
            ["failed", "Original (ms)", "Proposed (ms)", "speedup", "paper speedup"],
            rows,
            notes=[
                "data scaled 100GB -> 32MiB; absolute times are simulated",
                "paper: dedup halves recovered bytes -> ~1.5x faster",
            ],
        )
    )
    for failed in FAIL_COUNTS:
        orig_t, prop_t = results[failed]
        # Proposed recovers meaningfully faster (paper: 1.49-1.60x).
        assert prop_t < 0.85 * orig_t
    # More failures -> more data to re-replicate -> longer recovery.
    assert results[4][0] > results[1][0]
