"""Benchmark-suite plumbing: benches register result tables via
repro.bench.report(); this hook prints them in the terminal summary
(stdout inside tests is captured by pytest, the summary is not)."""

from repro.bench import harness


def pytest_terminal_summary(terminalreporter):
    if not harness.RESULTS:
        return
    terminalreporter.section("paper-reproduction results")
    for table in harness.RESULTS:
        for line in table:
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
