#!/usr/bin/env python3
"""Backup series on a deduplicated cluster.

Nightly backups re-store mostly unchanged data; global dedup keeps one
copy of every unchanged block across all generations, so N generations
cost roughly one base plus the accumulated churn — while each
generation remains independently restorable.

Run:  python examples/backup_store.py
"""

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage
from repro.workloads import BackupSpec, BackupStream

KiB, MiB = 1024, 1024 * 1024


def main():
    spec = BackupSpec(
        dataset_size=2 * MiB,
        block_size=32 * KiB,
        mutation_rate=0.04,  # ~4% of blocks change per night
        generations=7,
        seed=21,
    )
    cluster = RadosCluster(num_hosts=4, osds_per_host=4, pg_num=64)
    storage = DedupedStorage(
        cluster,
        DedupConfig(chunk_size=32 * KiB, cache_on_flush=False),
        start_engine=False,
    )
    stream = BackupStream(spec)
    histories = []

    print(f"dataset {spec.dataset_size / MiB:.0f} MiB, "
          f"{100 * spec.mutation_rate:.0f}% nightly churn\n")
    for gen in range(spec.generations):
        stream.write_generation(storage, gen)
        histories.append(list(stream._last_changed))
        storage.drain()
        report = storage.space_report()
        logical = (gen + 1) * spec.dataset_size
        print(
            f"  gen {gen}: logical {logical / MiB:5.1f} MiB | "
            f"unique data {report.chunk_data_bytes / MiB:5.2f} MiB | "
            f"dedup ratio {100 * report.ideal_dedup_ratio:5.1f}%"
        )

    # Every generation restores byte-identically — point-in-time recovery.
    for gen in (0, spec.generations // 2, spec.generations - 1):
        restored = stream.restore_generation(storage, gen)
        expected = stream.expected_generation(gen, histories[gen])
        assert restored == expected, f"generation {gen} corrupt!"
        print(f"restore check: generation {gen} intact "
              f"({len(restored) / MiB:.0f} MiB)")


if __name__ == "__main__":
    main()
