#!/usr/bin/env python3
"""Failure and recovery with deduplication (the Table 3 scenario).

Self-contained objects mean the cluster's recovery machinery covers the
dedup tier for free: chunk maps, reference records, and chunk data all
re-replicate like any other object.  And because dedup shrinks the
stored bytes, recovery finishes faster.

This example stores a 50 %-duplicate dataset with and without dedup,
kills OSDs, re-adds them, and compares recovery.

Run:  python examples/failure_recovery.py
"""

from repro.cluster import RadosCluster, recover_sync
from repro.core import DedupConfig, DedupedStorage, PlainStorage
from repro.workloads import FioJobSpec, FioRunner

KiB, MiB = 1024, 1024 * 1024


def build_and_fill(dedup: bool):
    cluster = RadosCluster(num_hosts=4, osds_per_host=4, pg_num=64)
    if dedup:
        storage = DedupedStorage(
            cluster, DedupConfig(cache_on_flush=False), start_engine=False
        )
    else:
        storage = PlainStorage(cluster)
    spec = FioJobSpec(
        pattern="write",
        block_size=32 * KiB,
        file_size=8 * MiB,
        object_size=64 * KiB,
        numjobs=4,
        dedupe_percentage=50,
        seed=3,
    )
    FioRunner(storage, spec).run()
    if dedup:
        storage.drain()
    return storage


def main():
    for dedup in (False, True):
        label = "Proposed (dedup)" if dedup else "Original"
        storage = build_and_fill(dedup)
        cluster = storage.cluster
        used = cluster.total_used_bytes()

        # Kill two OSDs on the same host (host-level failure domains
        # guarantee no PG loses both replicas), heal, then re-add them.
        for osd_id in (0, 1):
            cluster.fail_osd(osd_id)
        heal = recover_sync(cluster)
        for osd_id in (0, 1):
            cluster.revive_osd(osd_id)
        backfill = recover_sync(cluster)

        print(f"== {label} ==")
        print(f"  raw bytes stored:   {used / MiB:6.2f} MiB")
        print(f"  heal:     {heal.objects_recovered:4d} objects, "
              f"{heal.bytes_moved / MiB:6.2f} MiB in {heal.duration * 1e3:6.1f} ms")
        print(f"  backfill: {backfill.objects_recovered:4d} objects, "
              f"{backfill.bytes_moved / MiB:6.2f} MiB in {backfill.duration * 1e3:6.1f} ms")
        assert heal.objects_lost == 0 and backfill.objects_lost == 0

        # Prove the data (and all dedup metadata) survived.
        sample = storage.read_sync("fio.j0.o0")
        print(f"  sample object intact after recovery: {len(sample)} bytes\n")


if __name__ == "__main__":
    main()
