#!/usr/bin/env python3
"""Quickstart: a deduplicated scale-out object store in a few lines.

Builds the paper's testbed shape (4 hosts x 4 OSDs, 2-way replication),
writes objects with heavily duplicated content, lets the background
dedup engine flush them into the content-addressed chunk pool, and
prints the space accounting.

Run:  python examples/quickstart.py
"""

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage

KiB = 1024


def main():
    cluster = RadosCluster(num_hosts=4, osds_per_host=4, pg_num=64)
    storage = DedupedStorage(
        cluster,
        DedupConfig(chunk_size=32 * KiB),
        start_engine=False,  # we drive the engine explicitly below
    )

    # Write ten objects that all share the same content.
    payload = b"the same 64KiB of data, over and over " * 1724  # ~64 KiB
    for i in range(10):
        storage.write_sync(f"object-{i}", payload)

    print(f"wrote 10 objects x {len(payload)} bytes "
          f"({10 * len(payload) / 1024:.0f} KiB logical)")

    # Reads are served immediately (the data is cached in the metadata
    # pool until the post-processing dedup engine gets to it).
    assert storage.read_sync("object-3") == payload

    # Run the background dedup engine to completion.
    storage.drain()

    # Every object still reads back intact...
    assert storage.read_sync("object-7") == payload
    assert storage.read_sync("object-0", offset=100, length=50) == payload[100:150]

    # ...but the duplicate chunks are stored exactly once.
    report = storage.space_report()
    print(f"logical data:        {report.logical_bytes / 1024:.0f} KiB")
    print(f"unique chunk data:   {report.chunk_data_bytes / 1024:.0f} KiB "
          f"({report.chunk_objects} chunk objects)")
    print(f"dedup metadata:      {report.metadata_bytes / 1024:.1f} KiB")
    print(f"ideal dedup ratio:   {100 * report.ideal_dedup_ratio:.1f} %")
    print(f"actual dedup ratio:  {100 * report.actual_dedup_ratio:.1f} %")

    # Double hashing in action: the chunk objects' IDs *are* content
    # fingerprints; their location needs no index, just the placement
    # hash.
    chunk_ids = cluster.list_objects(storage.tier.chunk_pool)
    print(f"chunk object IDs (fingerprints): {[c[:12] + '…' for c in chunk_ids]}")


if __name__ == "__main__":
    main()
