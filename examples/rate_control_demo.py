#!/usr/bin/env python3
"""Dedup rate control protecting foreground I/O (the Figure 14 scenario).

Writes a large dirty backlog, then measures a foreground sequential
write stream while the background dedup engine chews through the
backlog — first un-throttled, then with the paper's watermark-based
rate control (one dedup I/O per 100 foreground ops between the
watermarks, one per 500 above the high watermark).

Run:  python examples/rate_control_demo.py
"""

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage
from repro.workloads import FioJobSpec, FioRunner

KiB, MiB = 1024, 1024 * 1024


def build(rate_control: bool):
    cluster = RadosCluster(num_hosts=4, osds_per_host=4, pg_num=64)
    config = DedupConfig(
        rate_control=rate_control,
        low_watermark=100.0,
        high_watermark=1_000.0,
        ops_per_dedup_mid=100,
        ops_per_dedup_high=500,
        engine_workers=128,
    )
    return DedupedStorage(cluster, config, start_engine=False)


def foreground_spec(seed):
    return FioJobSpec(
        pattern="write",
        block_size=64 * KiB,
        file_size=24 * MiB,
        object_size=64 * KiB,
        numjobs=3,
        iodepth=8,
        runtime=0.35,
        seed=seed,
    )


def backlog_spec():
    return FioJobSpec(
        pattern="write",
        block_size=64 * KiB,
        file_size=64 * MiB,
        object_size=64 * KiB,
        numjobs=4,
        iodepth=4,
        seed=9,
    )


def main():
    # Baseline: nothing to deduplicate.
    storage = build(rate_control=True)
    ideal = FioRunner(storage, foreground_spec(1)).run()
    print(f"ideal (no dedup pending):     {ideal.bandwidth / 1e6:7.0f} MB/s")

    for rate_control in (False, True):
        storage = build(rate_control)
        FioRunner(storage, backlog_spec()).run()  # dirty backlog
        storage.engine.start()
        result = FioRunner(storage, foreground_spec(3)).run()
        storage.engine.stop()
        done = (
            storage.engine.stats.chunks_flushed
            + storage.engine.stats.chunks_deduped
        )
        label = "with rate control" if rate_control else "w/o rate control "
        print(
            f"dedup {label}:      {result.bandwidth / 1e6:7.0f} MB/s"
            f"   ({done} chunks deduplicated during the window)"
        )

    print(
        "\nWatermark pacing keeps foreground throughput near the ideal while"
        "\nthe backlog still drains — the paper's Figure 14."
    )


if __name__ == "__main__":
    main()
