#!/usr/bin/env python3
"""A thin-provisioned block volume on the deduplicated cluster.

The paper evaluates through a kernel RBD block device; this example uses
the library's equivalent — a BlockDevice striped over storage objects —
to show a "100 MiB" volume that costs almost nothing until written,
dedups what is written, and returns space on discard (TRIM).

Run:  python examples/thin_volume.py
"""

from repro.cluster import RadosCluster
from repro.core import BlockDevice, DedupConfig, DedupedStorage

KiB, MiB = 1024, 1024 * 1024


def usage(storage) -> str:
    report = storage.space_report()
    return (
        f"unique data {report.chunk_data_bytes / KiB:7.0f} KiB, "
        f"metadata {report.metadata_bytes / KiB:5.1f} KiB"
    )


def main():
    cluster = RadosCluster(num_hosts=4, osds_per_host=4, pg_num=64)
    storage = DedupedStorage(
        cluster,
        DedupConfig(chunk_size=32 * KiB, cache_on_flush=False),
        start_engine=False,
    )
    volume = BlockDevice(storage, size=100 * MiB, object_size=1 * MiB, prefix="vol0")

    print(f"created a {volume.size / MiB:.0f} MiB thin volume")
    storage.drain()
    print(f"  cost while empty:     {usage(storage)}")

    # A filesystem writes its superblocks: tiny, scattered.
    for offset in (0, 32 * MiB, 64 * MiB + 512 * KiB):
        volume.write_sync(offset, b"SUPERBLOCK" * 100)
    storage.drain()
    print(f"  after 3 superblocks:  {usage(storage)}")

    # An application writes 8 MiB of highly duplicated data mid-volume.
    block = bytes(range(256)) * 128  # 32 KiB
    volume.write_sync(10 * MiB, block * 256)  # 8 MiB of one repeated chunk
    storage.drain()
    print(f"  after 8 MiB of dups:  {usage(storage)}")

    # Reads cross object boundaries transparently; unwritten space is zeros.
    data = volume.read_sync(10 * MiB - 16, 64)
    assert data[:16] == b"\x00" * 16 and data[16:48] == block[:32]
    print("  boundary read across written/unwritten space: ok")

    # The application is done: discard (TRIM) the 8 MiB region.
    volume.discard_sync(10 * MiB, 8 * MiB)
    storage.drain()
    print(f"  after discard (TRIM): {usage(storage)}")
    assert volume.read_sync(10 * MiB, 32 * KiB) == b"\x00" * (32 * KiB)


if __name__ == "__main__":
    main()
