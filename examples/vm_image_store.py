#!/usr/bin/env python3
"""VM image store: dedup x redundancy x compression (the Figure 13 scenario).

A private cloud keeps many VM images cloned from the same OS template.
This example writes ten thin images into four configurations and prints
the cumulative footprint after each image — showing how deduplication
collapses the shared OS base and how filesystem compression stacks on
top.

Run:  python examples/vm_image_store.py
"""

from repro.cluster import ErasureCoded, RadosCluster, Replicated
from repro.compression import ZlibCodec, compressed_store_bytes
from repro.core import DedupConfig, DedupedStorage, PlainStorage
from repro.workloads import VmImagePopulation, VmPopulationSpec

MiB = 1024 * 1024


def build(name):
    cluster = RadosCluster(num_hosts=4, osds_per_host=4, pg_num=64)
    if name == "replication":
        return PlainStorage(cluster, Replicated(2))
    if name == "ec":
        return PlainStorage(cluster, ErasureCoded(2, 1))
    if name == "rep+dedup":
        return DedupedStorage(
            cluster, DedupConfig(cache_on_flush=False), start_engine=False
        )
    raise ValueError(name)


def main():
    spec = VmPopulationSpec(
        num_vms=10,
        image_size=8 * MiB,  # the paper's 8 GB images, scaled 1/1000
        block_size=64 * 1024,
        os_base_fraction=0.03125,
        common_fraction=0.0,
        zero_fraction=0.9375,  # thin images: most of the disk is untouched
        compress_ratio=0.55,
        seed=42,
    )
    codec = ZlibCodec(level=1)

    for config in ("replication", "ec", "rep+dedup"):
        storage = build(config)
        population = VmImagePopulation(spec)
        print(f"\n== {config} ==")
        for vm in range(spec.num_vms):
            population.write_vm(storage, vm, object_size=1 * MiB)
            if config == "rep+dedup":
                storage.drain()
            raw = storage.cluster.total_used_bytes()
            compressed = sum(
                compressed_store_bytes(osd.store, codec)
                for osd in storage.cluster.osds.values()
            )
            print(
                f"  after image {vm + 1:2d}: raw {raw / MiB:7.2f} MiB"
                f"   with fs compression {compressed / MiB:7.2f} MiB"
            )

    print(
        "\nThe dedup configurations grow by only the per-image unique data;"
        "\ncompression multiplies the saving (the paper's Figure 13)."
    )


if __name__ == "__main__":
    main()
