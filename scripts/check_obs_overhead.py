#!/usr/bin/env python
"""Gate the observability layer's runtime overhead (CI's ``obs-overhead``).

Measures the dedup-phase cost of op tracing with the perf harness's own
discipline — traced and untraced runs of each simulated workload
interleaved (t, u, t, u, ...) and the fastest wall time kept, so slow
host drift hits both legs equally — and fails if tracing costs more
than the allowed fraction of dedup throughput.  A full traced
``run_perf`` report is additionally gated against the committed perf
baseline (``benchmarks/baselines/perf_baseline.json``), so "tracing
on" stays within budget of the committed numbers, not just of a
same-machine control run.  The overhead bound is tight (5 %: the two
legs run back-to-back on one host, so the ratio is clean); the
baseline leg uses the perf-smoke job's wider calibrated-rate tolerance
(25 %), because absolute calibrated ops/s carry cross-machine and
host-load noise that the machine-score calibration only partly removes.

Writes the whole comparison as ``BENCH_obs_overhead.json`` (the job's
artifact).
"""

from __future__ import annotations

import argparse
import json
import sys

#: Workloads with no simulator (and therefore no tracer) — excluded
#: from the traced/untraced ratio, which would be pure noise for them.
UNTRACED_WORKLOADS = {"pipeline-chunk-fingerprint"}


def measure_overhead(workers: int, repeats: int) -> dict:
    """Interleaved best-of traced/untraced dedup rates per sim workload."""
    from repro.perf.harness import WORKLOADS

    overhead = {}
    for name, runner in WORKLOADS.items():
        if name in UNTRACED_WORKLOADS:
            continue
        best_traced = best_untraced = None
        for _ in range(repeats):
            t = runner("batched", dict(fingerprint_workers=workers), 0, True, True)
            if best_traced is None or t.dedup_wall_seconds < best_traced.dedup_wall_seconds:
                best_traced = t
            u = runner("batched", dict(fingerprint_workers=workers), 0, True, False)
            if best_untraced is None or u.dedup_wall_seconds < best_untraced.dedup_wall_seconds:
                best_untraced = u
        control_rate = best_untraced.dedup_ops_per_sec
        traced_rate = best_traced.dedup_ops_per_sec
        overhead[name] = {
            "untraced_dedup_ops_per_sec": control_rate,
            "traced_dedup_ops_per_sec": traced_rate,
            "ratio": traced_rate / control_rate if control_rate else 0.0,
            "identical_results": (
                best_traced.readback_digest == best_untraced.readback_digest
                and best_traced.refcounts == best_untraced.refcounts
            ),
            "span_stages": len(best_traced.spans),
        }
    return overhead


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.05,
        help="allowed fractional dedup-throughput loss with tracing on "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed calibrated ops/s regression of the traced run vs the "
        "committed baseline (default: %(default)s, matching the perf-smoke "
        "gate: calibrated absolute rates are host-noise-bound, unlike the "
        "interleaved overhead ratio)",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/baselines/perf_baseline.json",
        help="committed perf baseline to gate the traced run against "
        "(default: %(default)s; empty string skips)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="fingerprint workers, matching the perf-smoke invocation "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=7,
        help="best-of-N repeats per (workload, mode) pair (default: %(default)s; "
        "the fast-mode drains are ~50 ms, so the ratio needs several "
        "samples to shake host jitter out of both legs)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_obs_overhead.json",
        help="where to write the comparison report (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    from repro.perf.harness import compare_to_baseline, run_perf

    print("measuring tracing overhead (interleaved traced/untraced) ...")
    overhead = measure_overhead(args.workers, args.repeats)
    failures = []
    for name, entry in overhead.items():
        print(
            f"  {name}: {entry['untraced_dedup_ops_per_sec']:.0f} -> "
            f"{entry['traced_dedup_ops_per_sec']:.0f} dedup ops/s "
            f"({entry['ratio']:.3f}x traced/untraced)"
        )
        if entry["ratio"] < 1.0 - args.max_overhead:
            failures.append(
                f"{name}: tracing costs {1.0 - entry['ratio']:.1%} of dedup"
                f" throughput (allowed {args.max_overhead:.0%})"
            )
        if not entry["identical_results"]:
            failures.append(
                f"{name}: traced and untraced runs produced different results"
            )
        if not entry["span_stages"]:
            failures.append(f"{name}: traced run recorded no span rollup")

    print("running traced perf report for the baseline gate ...")
    traced = run_perf(
        fast=True, workers=args.workers, repeats=args.repeats, trace=True
    )
    if not traced["summary"]["all_verified"]:
        failures.append("traced run failed verification")

    baseline_failures = []
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        baseline_failures = compare_to_baseline(
            traced, baseline, max_regression=args.max_regression
        )
        failures.extend(f"baseline: {f}" for f in baseline_failures)

    report = {
        "schema": 1,
        "max_overhead": args.max_overhead,
        "max_regression": args.max_regression,
        "overhead": overhead,
        "baseline": args.baseline or None,
        "baseline_failures": baseline_failures,
        "failures": failures,
        "traced": traced,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"report written to {args.out}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"obs-overhead gate passed (tolerance {args.max_overhead:.0%})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
