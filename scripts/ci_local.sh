#!/usr/bin/env bash
# Local dry-run of .github/workflows/ci.yml: runs the same jobs with the
# same commands so a green run here predicts a green run in Actions.
# Tools that only CI installs (ruff, mypy, pytest-cov) are skipped with
# a notice when absent.  Usage:
#
#   scripts/ci_local.sh               # lint + invariants + tests + coverage + faults + elasticity + perf
#   scripts/ci_local.sh --bench       # also the nightly bench smoke
#   scripts/ci_local.sh --bench-full  # also the full (slow) benchmark suite
set -u
cd "$(dirname "$0")/.."

RUN_BENCH=0
RUN_BENCH_FULL=0
[ "${1:-}" = "--bench" ] && RUN_BENCH=1
[ "${1:-}" = "--bench-full" ] && RUN_BENCH_FULL=1

FAILURES=0
step() {
    echo
    echo "==> $1"
    shift
    if "$@"; then
        echo "    OK"
    else
        echo "    FAILED: $*"
        FAILURES=$((FAILURES + 1))
    fi
}

# -- workflow sanity: the YAML must at least parse --------------------------
step "ci.yml parses as YAML" python - <<'EOF'
import sys
try:
    import yaml
except ImportError:
    print("    (PyYAML not installed; structural check skipped)")
    sys.exit(0)
with open(".github/workflows/ci.yml") as fh:
    doc = yaml.safe_load(fh)
jobs = doc["jobs"]
expected = {
    "lint", "lint-invariants", "sanitizer-smoke", "test", "test-no-numpy",
    "coverage", "faults-smoke", "elasticity-smoke", "perf-smoke",
    "obs-smoke", "obs-overhead", "perf-baseline-refresh", "bench-smoke",
    "bench-full",
}
assert expected <= set(jobs), jobs.keys()
sseeds = jobs["sanitizer-smoke"]["strategy"]["matrix"]["sanitizer-seed"]
assert len(set(sseeds)) == 3, sseeds
matrix = jobs["test"]["strategy"]["matrix"]["python-version"]
assert matrix == ["3.9", "3.11", "3.12", "3.13"], matrix
seeds = jobs["faults-smoke"]["strategy"]["matrix"]["fault-seed"]
assert len(set(seeds)) == 3, seeds
eseeds = jobs["elasticity-smoke"]["strategy"]["matrix"]["elasticity-seed"]
assert len(set(eseeds)) == 3, eseeds
concurrency = doc["concurrency"]
assert concurrency["cancel-in-progress"] is True, concurrency
EOF

# -- lint job ---------------------------------------------------------------
if command -v ruff >/dev/null 2>&1; then
    step "lint: ruff check" ruff check src tests benchmarks
else
    echo
    echo "==> lint: ruff not installed locally; skipping (CI installs it)"
fi

# -- lint-invariants job ----------------------------------------------------
step "lint-invariants: repro lint" \
    env PYTHONPATH=src python -m repro lint --format json --out lint-findings.json
# mypy_gate.py itself skips with a notice when mypy is not installed.
step "lint-invariants: mypy gate" python scripts/mypy_gate.py

# -- sanitizer-smoke job ----------------------------------------------------
for seed in 11 29 4242; do
    step "sanitizer-smoke: lock sanitizer over both scenarios, seed $seed" \
        env PYTHONPATH=src python -m repro --seed "$seed" sanitize \
        --out sanitize-report.json
done

# -- test job (this interpreter stands in for the version matrix) -----------
step "test: tier-1 suite" env PYTHONPATH=src python -m pytest -x -q

# -- test-no-numpy job -------------------------------------------------------
# CI uninstalls NumPy outright; locally REPRO_NO_NUMPY=1 forces the same
# pure-Python fallback paths (chunking reference scanners, GF(256) via
# bytes.translate) without touching the environment.
step "test-no-numpy: tier-1 suite, pure-Python fallback" \
    env PYTHONPATH=src REPRO_NO_NUMPY=1 python -m pytest -x -q

# -- coverage job -----------------------------------------------------------
if python -c "import pytest_cov" >/dev/null 2>&1; then
    step "coverage: tier-1 suite with floor" \
        env PYTHONPATH=src python -m pytest -q \
        --cov=repro --cov-report=term --cov-fail-under=70
else
    echo
    echo "==> coverage: pytest-cov not installed locally; skipping (CI installs it)"
fi

# -- faults-smoke job -------------------------------------------------------
for seed in 11 29 4242; do
    step "faults-smoke: suite, seed $seed" \
        env PYTHONPATH=src REPRO_FAULT_SEED="$seed" python -m pytest -x -q tests/faults
    step "faults-smoke: CLI scenario, seed $seed" \
        env PYTHONPATH=src python -m repro --seed "$seed" faults
done

# -- elasticity-smoke job ---------------------------------------------------
for seed in 11 29 4242; do
    step "elasticity-smoke: online expand + decommission, seed $seed" \
        env PYTHONPATH=src python -m repro --seed "$seed" rebalance
done

# -- perf-smoke job ---------------------------------------------------------
# Runs every harness workload, including the read-heavy
# read-sequential-deduped one: the baseline gates min_speedup,
# min_read_speedup (read fan-out + coalescing + chunk data cache), and
# the >60% re-read chunk-cache hit rate.
step "perf-smoke: harness vs committed baseline" \
    env PYTHONPATH=src python -m repro perf --fast --workers 4 \
    --out BENCH_perf.json \
    --profile BENCH_perf_profile.json \
    --baseline benchmarks/baselines/perf_baseline.json

# -- obs-smoke job ----------------------------------------------------------
step "obs-smoke: traced workload + integrity checks" \
    env PYTHONPATH=src python -m repro obs trace \
    --out trace.jsonl --metrics-out metrics.prom
step "obs-smoke: span rollup report" \
    env PYTHONPATH=src python -m repro obs report --trace trace.jsonl

# -- obs-overhead job -------------------------------------------------------
step "obs-overhead: tracing overhead vs untraced + baseline" \
    env PYTHONPATH=src python scripts/check_obs_overhead.py

# -- bench-smoke job (nightly; opt-in locally) ------------------------------
if [ "$RUN_BENCH" = 1 ]; then
    step "bench-smoke: fast-mode benchmarks" \
        env PYTHONPATH=src REPRO_BENCH_FAST=1 python -m pytest -q \
        benchmarks/bench_fig14_rate_control.py \
        benchmarks/bench_table3_recovery.py \
        --benchmark-json=bench-smoke.json
else
    echo
    echo "==> bench-smoke: skipped (pass --bench to run)"
fi

# -- bench-full job (nightly / dispatch input; opt-in locally) ---------------
if [ "$RUN_BENCH_FULL" = 1 ]; then
    step "bench-full: full benchmark suite" \
        env PYTHONPATH=src python -m pytest -q benchmarks \
        --benchmark-json=bench-full.json
else
    echo
    echo "==> bench-full: skipped (pass --bench-full to run)"
fi

# -- perf-baseline-refresh job (manual-only in CI; notice here) --------------
echo
echo "==> perf-baseline-refresh: manual-only (run scripts/refresh_perf_baseline.py to regenerate)"

echo
if [ "$FAILURES" -ne 0 ]; then
    echo "ci_local: $FAILURES step(s) FAILED"
    exit 1
fi
echo "ci_local: all steps passed"
