#!/usr/bin/env python3
"""The two-tier mypy gate (CI job ``lint-invariants``).

Tier 1 — strict: the leaf packages declared in ``pyproject.toml``
(``repro.fingerprint``, ``repro.util``, ``repro.faults``,
``repro.metrics``, ``repro.analysis``, ``repro.obs``, ``repro.sim``)
must produce **zero** errors under the strict per-module overrides
there.  Any error fails the gate.  The declared package list is itself
ratcheted: ``STRICT_FLOOR`` below names every package ever promoted to
the strict tier, and the gate fails if ``pyproject.toml`` stops listing
one of them — demotion requires editing both files, on purpose.

Tier 2 — baseline-checked: ``repro.core`` and ``repro.cluster`` are
checked non-strict (config: ``scripts/mypy-core.ini``) and compared to
the committed baseline ``scripts/mypy_core_baseline.json``, which maps
``module`` -> error count.  A module exceeding its baselined count (or
a new module with errors) fails the gate; shrinking counts prints a
reminder to re-record.  With no baseline file the tier is report-only.

Run ``python scripts/mypy_gate.py --write-baseline`` after deliberate
changes to re-record tier 2.  When mypy is not installed (local dev
containers ship without it) the gate skips with a notice and exit 0 —
CI installs mypy, so the gate is enforced where it matters.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "scripts" / "mypy_core_baseline.json"
CORE_CONFIG = REPO / "scripts" / "mypy-core.ini"
CORE_PACKAGES = ["repro.core", "repro.cluster"]

#: Every package ever promoted to the strict tier.  Append-only: the
#: gate fails if pyproject.toml drops one of these from [tool.mypy]
#: packages, so strictness can only be widened by accident, never
#: narrowed.
STRICT_FLOOR = frozenset(
    {
        "repro.fingerprint",
        "repro.util",
        "repro.faults",
        "repro.metrics",
        "repro.analysis",
        "repro.obs",
        "repro.sim",
    }
)

_ERROR_LINE = re.compile(
    r"^(?P<path>[^:]+\.py):(?P<line>\d+):(?:\d+:)?\s*error:"
)


def _have_mypy() -> bool:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def _run_mypy(args: List[str]) -> Tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *args],
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.returncode, proc.stdout


def _module_for(path: str) -> str:
    """Dotted module the error path belongs to, rooted at ``repro``."""
    parts = Path(path).with_suffix("").parts
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _errors_by_module(output: str) -> Dict[str, int]:
    counts: Counter = Counter()
    for line in output.splitlines():
        match = _ERROR_LINE.match(line.strip())
        if match:
            counts[_module_for(match.group("path"))] += 1
    return dict(counts)


def declared_strict_packages() -> List[str]:
    """[tool.mypy] packages as declared in pyproject.toml."""
    try:
        import tomllib
    except ImportError:  # Python < 3.11: fall back to a line scan.
        packages: List[str] = []
        collecting = False
        for raw in (REPO / "pyproject.toml").read_text("utf-8").splitlines():
            line = raw.split("#", 1)[0].strip()
            if collecting:
                if line.startswith("]"):
                    break
                packages += re.findall(r'"([^"]+)"', line)
            elif line.replace(" ", "").startswith("packages=["):
                collecting = True
                packages += re.findall(r'"([^"]+)"', line)
        return packages
    with open(REPO / "pyproject.toml", "rb") as fh:
        data = tomllib.load(fh)
    return list(data.get("tool", {}).get("mypy", {}).get("packages", []))


def _floor_check() -> int:
    """Fail if a strict-tier package was dropped from pyproject.toml."""
    declared = set(declared_strict_packages())
    demoted = sorted(STRICT_FLOOR - declared)
    if demoted:
        print(
            "FAIL: strict-tier package(s) missing from [tool.mypy]"
            f" packages in pyproject.toml: {', '.join(demoted)}"
            " (the strict tier only ratchets up; see STRICT_FLOOR)",
            file=sys.stderr,
        )
        return 1
    return 0


def _strict_tier() -> int:
    print("== mypy gate: tier 1 (strict leaf packages) ==")
    code, output = _run_mypy(["--config-file", "pyproject.toml"])
    if code == 0:
        print("strict packages: clean")
        return 0
    sys.stdout.write(output)
    print("FAIL: strict packages must type-check cleanly", file=sys.stderr)
    return 1


def _core_tier(write_baseline: bool) -> int:
    print("== mypy gate: tier 2 (core/cluster vs baseline) ==")
    args = ["--config-file", str(CORE_CONFIG)]
    for pkg in CORE_PACKAGES:
        args += ["-p", pkg]
    _code, output = _run_mypy(args)
    current = _errors_by_module(output)
    total = sum(current.values())
    print(f"core/cluster: {total} error(s) in {len(current)} module(s)")
    if write_baseline:
        BASELINE.write_text(
            json.dumps(dict(sorted(current.items())), indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"baseline written to {BASELINE}")
        return 0
    if not BASELINE.exists():
        print(
            "no baseline recorded (scripts/mypy_core_baseline.json);"
            " report-only.  Record one with --write-baseline."
        )
        return 0
    baseline: Dict[str, int] = json.loads(BASELINE.read_text(encoding="utf-8"))
    failures = []
    for module, count in sorted(current.items()):
        allowed = baseline.get(module, 0)
        if count > allowed:
            failures.append(f"{module}: {count} error(s), baseline allows {allowed}")
    if failures:
        sys.stdout.write(output)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(
            "fix the new errors, or (for deliberate exceptions) re-record"
            " with --write-baseline",
            file=sys.stderr,
        )
        return 1
    improved = {
        module: allowed
        for module, allowed in baseline.items()
        if current.get(module, 0) < allowed
    }
    if improved:
        print(
            "note: baseline is stale (errors fixed); ratchet down with"
            f" --write-baseline: {', '.join(sorted(improved))}"
        )
    print("core/cluster: within baseline")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="re-record scripts/mypy_core_baseline.json and exit 0",
    )
    args = parser.parse_args(argv)
    # The floor check is pure config introspection — enforce it even
    # where mypy itself is absent.
    floor = _floor_check()
    if not _have_mypy():
        print("mypy gate: mypy not installed; skipping (CI enforces it)")
        return floor
    strict = _strict_tier()
    core = _core_tier(write_baseline=args.write_baseline)
    return floor or strict or core


if __name__ == "__main__":
    sys.exit(main())
