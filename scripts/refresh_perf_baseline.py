#!/usr/bin/env python
"""Regenerate the committed perf-smoke baseline.

Runs the fast-mode perf harness and writes a fresh
``perf_baseline.json`` in the format :func:`repro.perf.harness
.compare_to_baseline` consumes.  CI's ``perf-baseline-refresh`` job
runs this and uploads the result as an artifact; review the numbers and
commit the file to ``benchmarks/baselines/perf_baseline.json``.

With ``--from-artifact BENCH_perf.json`` no harness runs: the baseline
is derived from an already-recorded report — e.g. the artifact the
perf-smoke CI job uploads — so the committed numbers can come from the
exact machine/run that produced them.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="benchmarks/baselines/perf_baseline.json",
        help="where to write the refreshed baseline",
    )
    parser.add_argument(
        "--speedup-floor",
        type=float,
        default=1.5,
        help="min_speedup_floor to embed (default: %(default)s)",
    )
    parser.add_argument(
        "--read-speedup-floor",
        type=float,
        default=1.5,
        help=(
            "min_read_speedup_floor to embed: the batched read path "
            "(fan-out + coalescing + chunk data cache) must beat the "
            "sequential uncached one by this factor (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help=(
            "fingerprint workers for the run (default: %(default)s, "
            "matching the perf-smoke gate invocation)"
        ),
    )
    parser.add_argument(
        "--from-artifact",
        default=None,
        metavar="PATH",
        help=(
            "derive the baseline from this BENCH_perf.json report "
            "(e.g. a downloaded CI artifact) instead of running the harness"
        ),
    )
    args = parser.parse_args(argv)

    from repro.perf.harness import render_report, run_perf

    if args.from_artifact:
        try:
            with open(args.from_artifact, "r", encoding="utf-8") as fh:
                report = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read artifact: {exc}", file=sys.stderr)
            return 2
        if report.get("schema") != 1:
            print(
                f"error: unsupported report schema {report.get('schema')!r}"
                " (expected 1)",
                file=sys.stderr,
            )
            return 2
        if "calibrated_ops_per_sec" not in report.get("summary", {}):
            print(
                "error: artifact has no summary.calibrated_ops_per_sec",
                file=sys.stderr,
            )
            return 2
        recorded_with = (
            f"artifact {args.from_artifact} (seed {report.get('seed')},"
            f" fast={report.get('fast')}, workers {report.get('workers')},"
            " schema 1)"
        )
    else:
        report = run_perf(fast=True, workers=args.workers)
        for line in render_report(report):
            print(line)
        recorded_with = (
            f"repro perf --fast --workers {args.workers} (seed 0, schema 1)"
        )
    if not report["summary"]["all_verified"]:
        print("refusing to write baseline: verification failed", file=sys.stderr)
        return 1

    baseline = {
        "comment": (
            "Committed perf-smoke baseline; refresh via the "
            "perf-baseline-refresh workflow_dispatch job "
            "(scripts/refresh_perf_baseline.py)."
        ),
        "recorded_with": recorded_with,
        "min_speedup_floor": args.speedup_floor,
        "min_read_speedup_floor": args.read_speedup_floor,
        "calibrated_ops_per_sec": {
            name: round(rate)
            for name, rate in report["summary"]["calibrated_ops_per_sec"].items()
        },
    }
    with open(args.out, "w") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
