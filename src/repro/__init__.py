"""repro — reproduction of "Design of Global Data Deduplication for a
Scale-out Distributed Storage System" (Oh et al., ICDCS 2018).

The two entry points most users need:

>>> from repro.cluster import RadosCluster
>>> from repro.core import DedupConfig, DedupedStorage

See README.md for a tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
