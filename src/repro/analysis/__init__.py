"""Static analysis: AST-based invariant checking (``repro lint``).

The runtime can only catch determinism and fault-model violations
probabilistically (a seeded smoke test has to get lucky); this package
encodes the invariants as lint rules so CI rejects violations at diff
time.  See ``docs/static-analysis.md`` for the rule catalogue and the
paper-grounded rationale behind each rule.
"""

from .concurrency import LockSanitizer
from .engine import (
    Baseline,
    Finding,
    Linter,
    LintResult,
    Rule,
    SourceModule,
    format_human,
    format_json,
    iter_python_files,
    module_name_for,
)
from .rules import default_rules, rules_by_id

__all__ = [
    "Baseline",
    "Finding",
    "Linter",
    "LintResult",
    "LockSanitizer",
    "Rule",
    "SourceModule",
    "format_human",
    "format_json",
    "iter_python_files",
    "module_name_for",
    "default_rules",
    "rules_by_id",
]
