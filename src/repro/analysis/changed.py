"""Git-backed file selection for ``repro lint --changed-only``.

Resolves "which Python files differ from a ref" so the linter can run
on a PR's footprint instead of the whole tree.  The selection is the
union of

* ``git diff --name-only REF`` (tracked changes, staged or not), and
* ``git ls-files --others --exclude-standard`` (new, untracked files)

filtered to ``*.py`` paths that still exist (a deleted file has nothing
to lint).  All git failures — no git binary, not a repository, unknown
ref — surface as :class:`GitUnavailable` so the CLI can fall back or
report cleanly rather than crash.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import List, Optional

__all__ = ["GitUnavailable", "changed_python_files"]


class GitUnavailable(RuntimeError):
    """git could not produce a change list (missing binary, not a repo,
    or an unresolvable ref)."""


def _git(args: List[str], cwd: Optional[Path]) -> List[str]:
    """Run ``git *args``; non-empty stdout lines, or raise GitUnavailable."""
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise GitUnavailable(f"git {args[0]}: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()
        raise GitUnavailable(
            f"git {' '.join(args)} failed:"
            f" {detail[0] if detail else proc.returncode}"
        )
    return [line for line in proc.stdout.splitlines() if line.strip()]


def changed_python_files(
    ref: str = "HEAD", cwd: Optional[Path] = None
) -> List[Path]:
    """Absolute paths of ``*.py`` files changed relative to ``ref``.

    Includes untracked (but not git-ignored) files; excludes paths that
    no longer exist on disk.  Raises :class:`GitUnavailable` when git
    cannot answer.
    """
    root = Path(_git(["rev-parse", "--show-toplevel"], cwd)[0])
    names = _git(["diff", "--name-only", ref, "--", "*.py"], cwd)
    names += _git(
        ["ls-files", "--others", "--exclude-standard", "--", "*.py"], cwd
    )
    selected: List[Path] = []
    seen = set()
    for name in names:
        if not name.endswith(".py"):
            continue
        path = (root / name).resolve()
        if path in seen or not path.is_file():
            continue
        seen.add(path)
        selected.append(path)
    return sorted(selected)
