"""Concurrency soundness checkers (static + runtime).

Two prongs guard the lock discipline the paper's two-phase commit path
depends on (per-object write locks around rados ``submit``/
``submit_batch``, recovery and rebalance; per-object/per-chunk tier
locks around the dedup metadata):

* **Static prong** — an interprocedural pass (:mod:`.callgraph`,
  :mod:`.locks`) over ``src/repro`` that extracts lock-acquisition
  sites, derives a lock-order graph and ships three repro-lint rules
  (:mod:`.rules`): LCK001 (potential acquire-acquire cycles), LCK002
  (faultable I/O or unbounded waits while holding a write lock) and
  LCK003 (lock not released on every exit path).
* **Dynamic prong** — :class:`.sanitizer.LockSanitizer`, hooked into
  labelled :class:`repro.sim.Resource` instances (the rados write-lock
  table and the tier lock maps), recording per-task held-lock sets and
  acquisition edges at runtime and reporting order inversions,
  double-acquires and locks still held at quiesce.  Exposed as the
  ``repro sanitize`` CLI verb.

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from .callgraph import RECEIVER_HINTS, CallGraph, FunctionInfo
from .locks import LOCK_FACTORIES, AcquireSite, LockModel, build_lock_model
from .rules import LockOrderRule, LockReleaseRule, LockWaitRule
from .sanitizer import LockSanitizer

__all__ = [
    "RECEIVER_HINTS",
    "CallGraph",
    "FunctionInfo",
    "LOCK_FACTORIES",
    "AcquireSite",
    "LockModel",
    "build_lock_model",
    "LockOrderRule",
    "LockWaitRule",
    "LockReleaseRule",
    "LockSanitizer",
]
