"""A conservative interprocedural call graph over lint modules.

The graph is deliberately under-approximate: a call edge is added only
when the callee can be pinned down with high confidence, because the
lock rules built on top (LCK001/LCK002) turn every edge into "the
callee's acquires/waits happen while the caller's locks are held" — a
wrong edge manufactures a lock-order cycle that does not exist.

Resolution strategy, in order:

1. ``self.name(...)`` — methods named ``name`` on the caller's own
   class in the same module (falling back to any same-module method).
2. ``name(...)`` — same-module functions named ``name``; otherwise a
   repo-wide match only when the name is defined at most twice (common
   helpers such as ``write`` or ``read`` are defined many times over
   and stay unresolved rather than guessed).
3. ``recv.name(...)`` — when the receiver's last identifier appears in
   :data:`RECEIVER_HINTS` (``cluster``/``rados`` → ``RadosCluster``,
   ``tier`` → ``DedupTier``, ...), methods named ``name`` on those
   classes anywhere in the tree.
4. Anything else is unresolved (no edge).

Nested *named* function bodies are excluded from a function's own
statements (they are separate graph nodes); lambdas are kept, because
the retry layer executes factory lambdas inline under the caller's
locks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..engine import SourceModule

__all__ = ["FunctionInfo", "CallGraph", "RECEIVER_HINTS", "walk_own"]

#: Receiver-name tails that identify a well-known class in this repo.
RECEIVER_HINTS: Dict[str, Tuple[str, ...]] = {
    "cluster": ("RadosCluster",),
    "rados": ("RadosCluster",),
    "tier": ("DedupTier",),
    "sim": ("Simulator",),
    "engine": ("DedupEngine",),
}

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` skipping nested named-function subtrees.

    ``node`` itself is yielded even when it is a function def; lambdas
    and comprehensions are descended into.
    """
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _FUNC_DEFS):
                continue
            stack.append(child)


def receiver_tail(node: ast.expr) -> str:
    """Last identifier of a dotted receiver (``a.b.cluster`` -> ``cluster``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


@dataclass
class FunctionInfo:
    """One function/method definition in the linted tree."""

    module: str
    cls: Optional[str]
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    mod: SourceModule

    @property
    def qualname(self) -> str:
        """``module:Class.name`` or ``module:name``."""
        if self.cls:
            return f"{self.module}:{self.cls}.{self.name}"
        return f"{self.module}:{self.name}"


class CallGraph:
    """Index of function defs plus resolved call edges."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.functions: List[FunctionInfo] = []
        #: id(def node) -> FunctionInfo
        self.by_node: Dict[int, FunctionInfo] = {}
        self._by_module_name: Dict[Tuple[str, str], List[FunctionInfo]] = {}
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        self._by_class_name: Dict[Tuple[str, str], List[FunctionInfo]] = {}
        for mod in modules:
            self._index_module(mod)
        #: id(def node) -> [(call node, resolved targets)]
        self.call_sites: Dict[int, List[Tuple[ast.Call, List[FunctionInfo]]]] = {}
        for info in self.functions:
            self.call_sites[id(info.node)] = self._resolve_function(info)

    # -- indexing --------------------------------------------------------

    def _index_module(self, mod: SourceModule) -> None:
        for node in ast.walk(mod.tree):
            if not isinstance(node, _FUNC_DEFS):
                continue
            cls = next(
                (
                    anc.name
                    for anc in mod.ancestors(node)
                    if isinstance(anc, ast.ClassDef)
                ),
                None,
            )
            info = FunctionInfo(
                module=mod.module, cls=cls, name=node.name, node=node, mod=mod
            )
            self.functions.append(info)
            self.by_node[id(node)] = info
            self._by_module_name.setdefault((mod.module, node.name), []).append(info)
            self._by_name.setdefault(node.name, []).append(info)
            if cls is not None:
                self._by_class_name.setdefault((cls, node.name), []).append(info)

    def function_of(self, mod: SourceModule, node: ast.AST) -> Optional[FunctionInfo]:
        """The innermost function def enclosing ``node``, if indexed."""
        for anc in mod.ancestors(node):
            if isinstance(anc, _FUNC_DEFS):
                return self.by_node.get(id(anc))
        return None

    # -- resolution ------------------------------------------------------

    def _resolve_function(
        self, info: FunctionInfo
    ) -> List[Tuple[ast.Call, List[FunctionInfo]]]:
        sites: List[Tuple[ast.Call, List[FunctionInfo]]] = []
        for node in walk_own(info.node):
            if isinstance(node, ast.Call):
                sites.append((node, self.resolve_call(info, node)))
        return sites

    def resolve_call(self, caller: FunctionInfo, call: ast.Call) -> List[FunctionInfo]:
        """Callees of ``call`` made from ``caller`` (empty if unresolved)."""
        func = call.func
        if isinstance(func, ast.Name):
            local = self._by_module_name.get((caller.module, func.id), [])
            if local:
                return list(local)
            everywhere = self._by_name.get(func.id, [])
            if 0 < len(everywhere) <= 2:
                return list(everywhere)
            return []
        if not isinstance(func, ast.Attribute):
            return []
        name = func.attr
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id == "self":
            local = self._by_module_name.get((caller.module, name), [])
            if caller.cls is not None:
                same_class = [f for f in local if f.cls == caller.cls]
                if same_class:
                    return same_class
            return [f for f in local if f.cls is not None]
        hints = RECEIVER_HINTS.get(receiver_tail(recv))
        if hints:
            out: List[FunctionInfo] = []
            for cls in hints:
                out.extend(self._by_class_name.get((cls, name), []))
            return out
        return []
