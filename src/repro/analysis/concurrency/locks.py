"""Lock-acquisition extraction for the LCK rule family.

An *acquire site* is an ``<expr>.acquire()`` call whose receiver can be
traced to one of the repo's lock factories:

===================  ==============  =========================================
factory              lock class      owner
===================  ==============  =========================================
``_write_lock(k)``   ``rados.write``  per-object write locks in the substrate
``object_lock(o)``   ``tier.object``  dedup tier object serialisation
``chunk_lock(c)``    ``tier.chunk``   dedup tier chunk refcount serialisation
``self.acquire()``   ``sim.resource`` inside :class:`repro.sim.Resource` itself
===================  ==============  =========================================

Receivers are traced within the enclosing function only: direct factory
chains (``self._write_lock(k).acquire()``), scalar variables assigned
from a factory call (including conditional ``x if c else None`` forms),
and loop targets iterating a *collection* variable built by a
comprehension over factory calls.  A collection is *ordered* when its
comprehension iterates ``sorted(...)`` — directly or via a name assigned
from ``sorted(...)``.  Untraceable receivers (token buckets, foreign
objects) are skipped: the rules only reason about sites they understand.

A site is *guarded* (released on every exit path) when either

1. it sits in the body of a ``try`` whose ``finally`` releases it — by
   name, or through a release loop over a list the function ``append``-s
   the lock to (the acquired-list idiom for multi-lock sections); or
2. the statement chain from the acquire reaches, before crossing any
   ``for``/``while`` loop, a statement whose *next sibling* is such a
   ``try`` (the canonical ``yield lock.acquire()`` / ``try/finally``
   sequence, possibly wrapped in ``if``/``with``).

Crossing a loop upward is the unsound shape rule LCK003 exists to catch:
``for lock in locks: yield lock.acquire()`` followed by a ``try`` leaks
every already-acquired lock when a mid-loop acquire is interrupted.

The module also records ``ThreadPoolExecutor`` submit boundaries
(``<x>._executor.submit(...)``): sites where work escapes the simulated
task onto real threads, which the blocking-wait rule (LCK002) pairs with
``quiesce``/``shutdown`` joins.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine import SourceModule
from .callgraph import CallGraph, FunctionInfo, receiver_tail, walk_own

__all__ = [
    "LOCK_FACTORIES",
    "AcquireSite",
    "LockModel",
    "build_lock_model",
    "collect_sites",
]

#: Lock-factory callee names -> lock class.
LOCK_FACTORIES: Dict[str, str] = {
    "_write_lock": "rados.write",
    "object_lock": "tier.object",
    "chunk_lock": "tier.chunk",
}

_LOOPS = (ast.For, ast.While)
_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass
class AcquireSite:
    """One traced ``.acquire()`` call."""

    call: ast.Call
    mod: SourceModule
    func: Optional[FunctionInfo]
    lock_class: str
    var: Optional[str]  # receiver name; None for direct factory chains
    collection: Optional[str] = None  # collection var for multi-acquires
    multi: bool = False  # acquired in a loop over a lock collection
    ordered: bool = False  # collection iterates sorted(...)
    guard: Optional[ast.Try] = None

    @property
    def guarded(self) -> bool:
        """Whether a try/finally releases this lock on every exit path."""
        return self.guard is not None

    @property
    def region(self) -> Optional[Tuple[int, int]]:
        """Line span of the guarded (lock-held) region: the try body."""
        if self.guard is None or not self.guard.body:
            return None
        lo = self.guard.body[0].lineno
        hi = lo
        for stmt in self.guard.body:
            for sub in ast.walk(stmt):
                line = getattr(sub, "end_lineno", None) or getattr(
                    sub, "lineno", None
                )
                if line is not None and line > hi:
                    hi = line
        return (lo, hi)


@dataclass
class LockModel:
    """Every traced acquire site in a module set, plus the call graph."""

    graph: CallGraph
    sites: List[AcquireSite]
    #: id(function def node) -> its acquire sites.
    sites_by_func: Dict[int, List[AcquireSite]] = field(default_factory=dict)
    #: (module, call node) pairs where work is handed to a thread pool.
    executor_boundaries: List[Tuple[SourceModule, ast.Call]] = field(
        default_factory=list
    )


def _factory_class(node: ast.AST) -> Optional[str]:
    """Lock class of the first factory call found under ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            callee = ""
            if isinstance(sub.func, ast.Attribute):
                callee = sub.func.attr
            elif isinstance(sub.func, ast.Name):
                callee = sub.func.id
            cls = LOCK_FACTORIES.get(callee)
            if cls is not None:
                return cls
    return None


def _is_sorted_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _is_release_call(node: ast.AST) -> Optional[str]:
    """Receiver name of a ``<name>.release()`` call, else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "release"
        and isinstance(node.func.value, ast.Name)
    ):
        return node.func.value.id
    return None


def _append_lists(func_node: ast.AST, var: str) -> Set[str]:
    """Names L such that ``L.append(var)`` appears in the function."""
    lists: Set[str] = set()
    for sub in walk_own(func_node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "append"
            and isinstance(sub.func.value, ast.Name)
            and len(sub.args) == 1
            and isinstance(sub.args[0], ast.Name)
            and sub.args[0].id == var
        ):
            lists.add(sub.func.value.id)
    return lists


def _finalbody_releases(
    try_node: ast.Try,
    var: Optional[str],
    collection: Optional[str],
    func_node: ast.AST,
) -> bool:
    """Whether ``try_node``'s ``finally`` releases the acquired lock."""
    if var is None:
        return False
    # Direct: <var>.release() anywhere in the finally (incl. nested ifs,
    # or a release loop whose target shadows the same name).
    for stmt in try_node.finalbody:
        for sub in ast.walk(stmt):
            if _is_release_call(sub) == var:
                return True
    # Release loop over an acquired-list (or the source collection):
    # ``for t in reversed(L): t.release()`` with ``L.append(var)``.
    acceptable = _append_lists(func_node, var)
    if collection is not None:
        acceptable.add(collection)
    if not acceptable:
        return False
    for stmt in try_node.finalbody:
        for sub in ast.walk(stmt):
            if not (isinstance(sub, ast.For) and isinstance(sub.target, ast.Name)):
                continue
            target = sub.target.id
            iter_names = {
                n.id for n in ast.walk(sub.iter) if isinstance(n, ast.Name)
            }
            if not (iter_names & acceptable):
                continue
            if any(
                _is_release_call(inner) == target
                for body_stmt in sub.body
                for inner in ast.walk(body_stmt)
            ):
                return True
    return False


def _block_lists(node: ast.AST) -> List[List[ast.stmt]]:
    blocks: List[List[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(node, name, None)
        if isinstance(block, list):
            blocks.append(block)
    if isinstance(node, ast.Try):
        for handler in node.handlers:
            blocks.append(handler.body)
    return blocks


def _find_guard(
    mod: SourceModule,
    call: ast.Call,
    var: Optional[str],
    collection: Optional[str],
    func_node: ast.AST,
) -> Optional[ast.Try]:
    # Condition 1: an enclosing try whose finally releases the lock.
    # Loops may sit in between (the acquired-list idiom acquires inside
    # a for loop inside the try body).
    child: ast.AST = call
    for anc in mod.ancestors(call):
        if isinstance(anc, _FUNC_DEFS) or anc is func_node:
            break
        if isinstance(anc, ast.Try) and any(
            stmt is child for stmt in anc.body
        ):
            if _finalbody_releases(anc, var, collection, func_node):
                return anc
        child = anc
    # Condition 2: a next-sibling try/finally, reached before crossing
    # any loop — per-iteration acquires accumulate across a loop and a
    # try further out cannot release them on mid-loop exits.  The
    # enclosing function's own body is checked before stopping.
    child = call
    for anc in mod.ancestors(call):
        for block in _block_lists(anc):
            for i, stmt in enumerate(block):
                if stmt is child and i + 1 < len(block):
                    following = block[i + 1]
                    if isinstance(following, ast.Try) and _finalbody_releases(
                        following, var, collection, func_node
                    ):
                        return following
        if isinstance(anc, _FUNC_DEFS) or anc is func_node:
            break
        if isinstance(anc, _LOOPS):
            return None
        child = anc
    return None


def _scan_lock_vars(
    func_node: ast.AST,
) -> Tuple[Dict[str, str], Dict[str, Tuple[str, bool]]]:
    """Scalar and collection lock variables assigned in the function."""
    sorted_names: Set[str] = set()
    for sub in walk_own(func_node):
        if (
            isinstance(sub, ast.Assign)
            and len(sub.targets) == 1
            and isinstance(sub.targets[0], ast.Name)
            and _is_sorted_call(sub.value)
        ):
            sorted_names.add(sub.targets[0].id)
    scalars: Dict[str, str] = {}
    collections: Dict[str, Tuple[str, bool]] = {}
    for sub in walk_own(func_node):
        if not (
            isinstance(sub, ast.Assign)
            and len(sub.targets) == 1
            and isinstance(sub.targets[0], ast.Name)
        ):
            continue
        name = sub.targets[0].id
        cls = _factory_class(sub.value)
        if cls is None:
            continue
        if isinstance(sub.value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_iter = sub.value.generators[0].iter
            ordered = _is_sorted_call(comp_iter) or (
                isinstance(comp_iter, ast.Name) and comp_iter.id in sorted_names
            )
            collections[name] = (cls, ordered)
        else:
            scalars[name] = cls
    return scalars, collections


def _loop_binding(
    mod: SourceModule, call: ast.Call, name: str
) -> Optional[ast.For]:
    """Nearest enclosing ``for <name> in ...`` loop binding ``name``."""
    for anc in mod.ancestors(call):
        if isinstance(anc, _FUNC_DEFS):
            return None
        if (
            isinstance(anc, ast.For)
            and isinstance(anc.target, ast.Name)
            and anc.target.id == name
        ):
            return anc
    return None


def collect_sites(
    mod: SourceModule, graph: CallGraph
) -> Tuple[List[AcquireSite], List[ast.Call]]:
    """Traced acquire sites and executor boundaries in one module."""
    sites: List[AcquireSite] = []
    boundaries: List[ast.Call] = []
    for info in graph.functions:
        if info.mod is not mod:
            continue
        scalars, collections = _scan_lock_vars(info.node)
        for node in walk_own(info.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if (
                node.func.attr == "submit"
                and receiver_tail(node.func.value) == "_executor"
            ):
                boundaries.append(node)
                continue
            if node.func.attr != "acquire":
                continue
            recv = node.func.value
            site: Optional[AcquireSite] = None
            if isinstance(recv, ast.Call):
                cls = _factory_class(recv)
                if cls is not None:
                    site = AcquireSite(
                        call=node, mod=mod, func=info, lock_class=cls, var=None
                    )
            elif isinstance(recv, ast.Name):
                name = recv.id
                if name in scalars:
                    site = AcquireSite(
                        call=node,
                        mod=mod,
                        func=info,
                        lock_class=scalars[name],
                        var=name,
                    )
                elif name == "self" and info.cls == "Resource":
                    site = AcquireSite(
                        call=node,
                        mod=mod,
                        func=info,
                        lock_class="sim.resource",
                        var="self",
                    )
                else:
                    loop = _loop_binding(mod, node, name)
                    if loop is not None and isinstance(loop.iter, ast.Name):
                        entry = collections.get(loop.iter.id)
                        if entry is not None:
                            cls, ordered = entry
                            site = AcquireSite(
                                call=node,
                                mod=mod,
                                func=info,
                                lock_class=cls,
                                var=name,
                                collection=loop.iter.id,
                                multi=True,
                                ordered=ordered,
                            )
            if site is None:
                continue
            site.guard = _find_guard(
                mod, node, site.var, site.collection, info.node
            )
            sites.append(site)
    return sites, boundaries


def build_lock_model(modules: Sequence[SourceModule]) -> LockModel:
    """Build the full lock model (call graph + sites) for ``modules``."""
    graph = CallGraph(modules)
    model = LockModel(graph=graph, sites=[])
    for mod in modules:
        sites, boundaries = collect_sites(mod, graph)
        model.sites.extend(sites)
        model.executor_boundaries.extend((mod, b) for b in boundaries)
    for site in model.sites:
        if site.func is not None:
            model.sites_by_func.setdefault(id(site.func.node), []).append(site)
    return model
