"""The LCK rule family: static lock-discipline checks.

* LCK001 — potential acquire-acquire cycle across call paths.  Guarded
  lock regions are scanned (directly and through the call graph) for
  further acquisitions; the resulting class-level lock-order graph must
  be acyclic, and multi-acquires of one class must iterate a sorted
  collection (an unsorted multi-acquire is a self-cycle: two concurrent
  tasks can take the same pair of locks in opposite orders).
* LCK002 — faultable substrate I/O, retry entry, or unbounded blocking
  wait performed while holding a write lock.  Substrate mutations and
  retry loops are only flagged under ``rados.write`` locks (the tier
  deliberately retries its two-phase commits under its own object/chunk
  locks — the paper's §4.4.2 serialisation trade-off); pool joins
  (``quiesce``/``shutdown``), rate-limiter ``throttle`` waits and
  nested ``run_until_complete`` drains are flagged under any lock.
* LCK003 — lock acquired but not released on every exit path (the lock
  analogue of OBS001).  See :mod:`.locks` for what counts as guarded.

All three live in ``default_rules`` and honour suppressions/baselines
like every repro-lint rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..engine import Finding, Rule, SourceModule
from ..rules.faults import _RETRY_CALLS, _is_io_site
from .callgraph import walk_own
from .locks import AcquireSite, LockModel, build_lock_model

__all__ = ["LockOrderRule", "LockWaitRule", "LockReleaseRule", "BLOCKING_CALLS"]

#: Method names whose calls block unboundedly (flagged under any lock).
BLOCKING_CALLS = ("throttle", "quiesce", "shutdown", "run_until_complete")

#: The lock class whose regions must not contain faultable I/O/retries.
_WRITE_CLASS = "rados.write"


def _in_region(node: ast.AST, region: Tuple[int, int]) -> bool:
    line = getattr(node, "lineno", None)
    return line is not None and region[0] <= line <= region[1]


def _is_retry_entry(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Name):
        return node.func.id in _RETRY_CALLS
    if isinstance(node.func, ast.Attribute):
        return node.func.attr in _RETRY_CALLS
    return False


def _is_blocking_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Attribute):
        return node.func.attr in BLOCKING_CALLS
    if isinstance(node.func, ast.Name):
        return node.func.id in BLOCKING_CALLS
    return False


def _direct_flags(func_node: ast.AST) -> Tuple[bool, bool, bool]:
    """(has_io, has_retry, has_blocking) over a function's own statements."""
    has_io = has_retry = has_blocking = False
    for node in walk_own(func_node):
        if _is_io_site(node):
            has_io = True
        if _is_retry_entry(node):
            has_retry = True
        if _is_blocking_call(node):
            has_blocking = True
    return has_io, has_retry, has_blocking


class _Summaries:
    """Transitive per-function facts over the call graph (fixpoint)."""

    def __init__(self, model: LockModel) -> None:
        graph = model.graph
        self.acquires: Dict[int, Set[str]] = {}
        self.io: Dict[int, bool] = {}
        self.retry: Dict[int, bool] = {}
        self.blocking: Dict[int, bool] = {}
        for info in graph.functions:
            fid = id(info.node)
            self.acquires[fid] = {
                s.lock_class for s in model.sites_by_func.get(fid, [])
            }
            io, retry, blocking = _direct_flags(info.node)
            self.io[fid] = io
            self.retry[fid] = retry
            self.blocking[fid] = blocking
        changed = True
        while changed:
            changed = False
            for info in graph.functions:
                fid = id(info.node)
                for _call, targets in graph.call_sites.get(fid, []):
                    for target in targets:
                        tid = id(target.node)
                        if not self.acquires[fid] >= self.acquires[tid]:
                            self.acquires[fid] |= self.acquires[tid]
                            changed = True
                        for attr in ("io", "retry", "blocking"):
                            table = getattr(self, attr)
                            if table[tid] and not table[fid]:
                                table[fid] = True
                                changed = True


def _region_callees(model: LockModel, site: AcquireSite):
    """(call, target) pairs for resolved calls inside the site's region."""
    region = site.region
    if region is None or site.func is None:
        return
    for call, targets in model.graph.call_sites.get(id(site.func.node), []):
        if call is site.call or not _in_region(call, region):
            continue
        for target in targets:
            yield call, target


def _cycle_classes(edges: Set[Tuple[str, str]]) -> Set[Tuple[str, str]]:
    """Edges participating in a cycle (incl. self-loops) of the digraph."""
    nodes = {a for a, _ in edges} | {b for _, b in edges}
    adjacency: Dict[str, Set[str]] = {n: set() for n in nodes}
    for a, b in edges:
        adjacency[a].add(b)

    def reaches(start: str, goal: str) -> bool:
        seen: Set[str] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(adjacency.get(current, ()))
        return False

    return {(a, b) for a, b in edges if a == b or reaches(b, a)}


class LockOrderRule(Rule):
    """LCK001: potential acquire-acquire cycle across call paths."""

    id = "LCK001"
    title = "potential lock-order cycle"
    severity = "error"

    def finalize(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        model = build_lock_model(modules)
        summaries = _Summaries(model)
        # Edge -> anchor sites (outer acquire whose region takes the inner).
        edge_sites: Dict[Tuple[str, str], List[AcquireSite]] = {}

        def add_edge(outer: str, inner: str, site: AcquireSite) -> None:
            edge_sites.setdefault((outer, inner), []).append(site)

        for site in model.sites:
            if site.multi and not site.ordered:
                add_edge(site.lock_class, site.lock_class, site)
            region = site.region
            if region is None or site.func is None:
                continue
            for other in model.sites_by_func.get(id(site.func.node), []):
                if other is site or other.collection == site.collection is not None:
                    continue
                if _in_region(other.call, region):
                    add_edge(site.lock_class, other.lock_class, site)
            for _call, target in _region_callees(model, site):
                for inner in summaries.acquires.get(id(target.node), ()):
                    add_edge(site.lock_class, inner, site)

        cyclic = _cycle_classes(set(edge_sites))
        for outer, inner in sorted(cyclic):
            sites = sorted(
                edge_sites[(outer, inner)],
                key=lambda s: (s.mod.path, s.call.lineno),
            )
            anchor = sites[0]
            if outer == inner:
                if anchor.multi and not anchor.ordered:
                    detail = (
                        "multi-acquire iterates an unsorted collection; two"
                        " tasks can take the same locks in opposite orders —"
                        " build the collection over sorted(...) keys"
                    )
                else:
                    detail = (
                        "a region holding this class acquires the same class"
                        " again; concurrent tasks can wait on each other —"
                        " restructure to a single sorted multi-acquire"
                    )
                message = f"lock-order self-cycle on {outer}: {detail}"
            else:
                message = (
                    f"lock-order edge {outer} -> {inner} participates in a"
                    f" potential acquire-acquire cycle; impose one global"
                    f" class order (acquire {inner} only before {outer},"
                    f" never while holding it)"
                )
            yield anchor.mod.finding(self, anchor.call, message)


class LockWaitRule(Rule):
    """LCK002: faultable I/O or unbounded wait while holding a write lock."""

    id = "LCK002"
    title = "faultable I/O or unbounded wait under a lock"
    severity = "error"

    def finalize(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        model = build_lock_model(modules)
        summaries = _Summaries(model)
        for site in model.sites:
            region = site.region
            if region is None or site.guard is None:
                continue
            is_write = site.lock_class == _WRITE_CLASS
            kinds_seen: Set[str] = set()
            for stmt in site.guard.body:
                for node in ast.walk(stmt):
                    if is_write and "io" not in kinds_seen and _is_io_site(node):
                        kinds_seen.add("io")
                        yield site.mod.finding(
                            self,
                            node,
                            f"faultable substrate I/O while holding a"
                            f" {site.lock_class} lock: a fault/retry loop here"
                            f" wedges the object; move the I/O outside the"
                            f" locked region or make it non-faultable",
                        )
                    if (
                        is_write
                        and "retry" not in kinds_seen
                        and _is_retry_entry(node)
                    ):
                        kinds_seen.add("retry")
                        yield site.mod.finding(
                            self,
                            node,
                            f"retry loop entered while holding a"
                            f" {site.lock_class} lock: backoff sleeps extend"
                            f" the critical section unboundedly; retry outside"
                            f" the lock and re-acquire per attempt",
                        )
                    if "blocking" not in kinds_seen and _is_blocking_call(node):
                        kinds_seen.add("blocking")
                        name = (
                            node.func.attr  # type: ignore[union-attr]
                            if isinstance(node.func, ast.Attribute)  # type: ignore[union-attr]
                            else node.func.id  # type: ignore[union-attr]
                        )
                        yield site.mod.finding(
                            self,
                            node,
                            f"unbounded blocking call .{name}() while holding"
                            f" a {site.lock_class} lock: waiters queue behind"
                            f" an arbitrarily long wait; block before"
                            f" acquiring",
                        )
            for call, target in _region_callees(model, site):
                tid = id(target.node)
                if is_write and "io" not in kinds_seen and summaries.io[tid]:
                    kinds_seen.add("io")
                    yield site.mod.finding(
                        self,
                        call,
                        f"call reaches faultable substrate I/O (via"
                        f" {target.qualname}) while holding a"
                        f" {site.lock_class} lock",
                    )
                if is_write and "retry" not in kinds_seen and summaries.retry[tid]:
                    kinds_seen.add("retry")
                    yield site.mod.finding(
                        self,
                        call,
                        f"call reaches a retry loop (via {target.qualname})"
                        f" while holding a {site.lock_class} lock",
                    )
                if "blocking" not in kinds_seen and summaries.blocking[tid]:
                    kinds_seen.add("blocking")
                    yield site.mod.finding(
                        self,
                        call,
                        f"call reaches an unbounded blocking wait (via"
                        f" {target.qualname}) while holding a"
                        f" {site.lock_class} lock",
                    )


class LockReleaseRule(Rule):
    """LCK003: lock acquired but not released on every exit path."""

    id = "LCK003"
    title = "lock not released on every exit path"
    severity = "error"

    def check(self, mod: SourceModule) -> Iterable[Finding]:
        model = build_lock_model([mod])
        for site in model.sites:
            if site.guarded:
                continue
            if site.var is None:
                message = (
                    f"{site.lock_class} lock acquired from a factory chain"
                    f" with no handle kept: nothing can release it; bind the"
                    f" lock to a variable and release it in a try/finally"
                )
            elif site.multi:
                message = (
                    f"{site.lock_class} multi-acquire loop outside any"
                    f" releasing try/finally: an interrupt or fault mid-loop"
                    f" leaks every lock already acquired; append each lock to"
                    f" an acquired-list inside the try and release the list"
                    f" in the finally"
                )
            else:
                message = (
                    f"{site.lock_class} lock acquired but not released on"
                    f" every exit path: follow the acquire with"
                    f" try/finally: {site.var}.release()"
                )
            yield mod.finding(self, site.call, message)
