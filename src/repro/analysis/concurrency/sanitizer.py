"""Runtime lock sanitizer (the dynamic prong).

:class:`LockSanitizer` attaches to a :class:`repro.sim.Simulator` and
receives callbacks from every *labelled* :class:`repro.sim.Resource`
(the rados write-lock table, the dedup tier's object/chunk lock maps):

* ``on_acquire`` — a task requested the lock (may queue);
* ``on_grant`` — the request was granted (immediately or on release);
* ``on_release`` — the holder released;
* ``on_cancelled`` — a queued waiter was abandoned (interrupted task).

From these it maintains per-task held-lock sets and an acquisition-edge
multigraph at lock-*class* granularity (``rados.write``,
``tier.object``, ``tier.chunk``), plus the directional key-pairs
observed *within* one class.  :meth:`report` then flags:

* **double-acquire** — a task requests a lock it already holds (a
  capacity-1 resource self-deadlocks);
* **order-inversion** — both ``(a before b)`` and ``(b before a)`` were
  observed for two locks of the same class (two tasks doing this
  concurrently deadlock);
* **class-cycle** — the cross-class acquisition graph has a cycle
  (ignoring same-class self-edges, which sorted multi-acquires produce
  legitimately and the pair check covers);
* **held-at-finish** / **waiting-at-finish** — locks still held, or
  live waiters still queued, when the run quiesced.

Edges are recorded at *request* time against the requester's currently
held set — equivalent to grant-time ordering, since a suspended task
cannot change its held set while queued.

The sanitizer is pure bookkeeping over a deterministic simulation, so
its report is deterministic for a given seed and JSON-round-trips
(:meth:`to_json` / ``json.loads``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = ["LockSanitizer"]


def _lock_class(label: str) -> str:
    return label.split(":", 1)[0]


class LockSanitizer:
    """Records lock traffic from labelled resources and judges it."""

    def __init__(self) -> None:
        self.sim: Any = None
        #: id(process) -> task name; refs kept so ids are never reused.
        self._task_names: Dict[int, str] = {}
        self._task_refs: List[Any] = []
        #: task name -> labels currently held, in acquisition order.
        self._held: Dict[str, List[str]] = {}
        #: id(event) -> (label, task, event) for queued/unmatched requests.
        self._pending: Dict[int, Tuple[str, str, Any]] = {}
        #: (from class, to class) -> {"count", "example": (held, requested)}.
        self._edges: Dict[Tuple[str, str], Dict[str, Any]] = {}
        #: class -> ordered key pairs (held label, requested label) seen.
        self._pairs: Dict[str, Dict[Tuple[str, str], str]] = {}
        self._violations: List[Dict[str, Any]] = []
        self.acquires = 0
        self.grants = 0
        self.releases = 0
        self.cancelled = 0

    # -- wiring ----------------------------------------------------------

    def attach(self, sim: Any) -> "LockSanitizer":
        """Install on ``sim`` (sets ``sim.lock_sanitizer``) and return self."""
        self.sim = sim
        sim.lock_sanitizer = self
        return self

    def _task(self, sim: Any) -> str:
        proc = sim.current_task
        if proc is None:
            return "<kernel>"
        name = self._task_names.get(id(proc))
        if name is None:
            name = f"task-{len(self._task_refs):05d}"
            self._task_names[id(proc)] = name
            self._task_refs.append(proc)
        return name

    # -- resource callbacks ---------------------------------------------

    def on_acquire(self, resource: Any, event: Any) -> None:
        """A task requested ``resource`` (grant may come later)."""
        label: str = resource.label
        task = self._task(resource.sim)
        self.acquires += 1
        cls = _lock_class(label)
        held = self._held.get(task, [])
        if label in held:
            self._violations.append(
                {
                    "type": "double-acquire",
                    "task": task,
                    "lock": label,
                    "held": list(held),
                }
            )
        for prior in held:
            edge = self._edges.setdefault(
                (_lock_class(prior), cls),
                {"count": 0, "example": (prior, label)},
            )
            edge["count"] += 1
            if _lock_class(prior) == cls and prior != label:
                self._pairs.setdefault(cls, {}).setdefault(
                    (prior, label), task
                )
        self._pending[id(event)] = (label, task, event)

    def on_grant(self, resource: Any, event: Any) -> None:
        """A request was granted; the requester now holds the lock."""
        entry = self._pending.pop(id(event), None)
        if entry is None:
            label, task = resource.label, self._task(resource.sim)
        else:
            label, task, _event = entry
        self.grants += 1
        self._held.setdefault(task, []).append(label)

    def on_release(self, resource: Any) -> None:
        """The current task released ``resource``."""
        label: str = resource.label
        task = self._task(resource.sim)
        self.releases += 1
        held = self._held.get(task)
        if held and label in held:
            # Remove the most recent acquisition of this label.
            for i in range(len(held) - 1, -1, -1):
                if held[i] == label:
                    del held[i]
                    break
        else:
            self._violations.append(
                {"type": "release-not-held", "task": task, "lock": label}
            )

    def on_cancelled(self, resource: Any, event: Any) -> None:
        """A queued waiter was dropped (its process was interrupted)."""
        self._pending.pop(id(event), None)
        self.cancelled += 1

    # -- verdict ---------------------------------------------------------

    def _class_cycles(self) -> List[List[str]]:
        """Strongly connected class groups (size >= 2) in the edge graph."""
        adjacency: Dict[str, Set[str]] = {}
        for (a, b), _meta in self._edges.items():
            if a == b:
                continue
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set())

        def reachable(start: str) -> Set[str]:
            seen: Set[str] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(adjacency.get(node, ()))
            return seen

        groups: List[List[str]] = []
        assigned: Set[str] = set()
        for node in sorted(adjacency):
            if node in assigned:
                continue
            component = sorted(
                other
                for other in reachable(node)
                if node in reachable(other)
            )
            if len(component) > 1:
                groups.append(component)
                assigned.update(component)
        return groups

    def report(self) -> Dict[str, Any]:
        """Build the (deterministic, JSON-friendly) verdict document."""
        violations: List[Dict[str, Any]] = [dict(v) for v in self._violations]
        for cls in sorted(self._pairs):
            pairs = self._pairs[cls]
            reported: Set[Tuple[str, str]] = set()
            for (a, b), task in sorted(pairs.items()):
                if (b, a) not in pairs:
                    continue
                key = (min(a, b), max(a, b))
                if key in reported:
                    continue
                reported.add(key)
                violations.append(
                    {
                        "type": "order-inversion",
                        "lock_class": cls,
                        "locks": list(key),
                        "tasks": sorted({task, pairs[(b, a)]}),
                    }
                )
        for group in self._class_cycles():
            violations.append({"type": "class-cycle", "classes": group})
        for task in sorted(self._held):
            for label in self._held[task]:
                violations.append(
                    {"type": "held-at-finish", "task": task, "lock": label}
                )
        for label, task, event in sorted(
            self._pending.values(), key=lambda item: (item[0], item[1])
        ):
            if not getattr(event, "cancelled", False):
                violations.append(
                    {"type": "waiting-at-finish", "task": task, "lock": label}
                )
        classes = sorted(
            {_lock_class(label) for pair in self._edges for label in pair}
            | {_lock_class(v["lock"]) for v in violations if "lock" in v}
        )
        edges = [
            {
                "from": a,
                "to": b,
                "count": meta["count"],
                "example": list(meta["example"]),
            }
            for (a, b), meta in sorted(self._edges.items())
        ]
        return {
            "version": 1,
            "clean": not violations,
            "tasks": len(self._task_refs),
            "acquires": self.acquires,
            "grants": self.grants,
            "releases": self.releases,
            "cancelled": self.cancelled,
            "lock_classes": classes,
            "edges": edges,
            "violations": violations,
        }

    def to_json(self) -> str:
        """The report as a JSON document string."""
        return json.dumps(self.report(), indent=2, sort_keys=True) + "\n"
