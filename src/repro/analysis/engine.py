"""The repro-lint rule engine.

AST-based static analysis encoding the repository's correctness
invariants as lint rules (see ``docs/static-analysis.md``).  The engine
is rule-agnostic: it parses every target file once into a
:class:`SourceModule` (AST with parent links, suppression comments,
registered fault scopes), hands each module to every applicable
:class:`Rule`, then post-processes the findings through suppressions and
an optional baseline file.

Suppression syntax (justification after ``--`` is mandatory)::

    something_noisy()  # repro-lint: disable=DET001 -- stage timing only

A standalone suppression comment applies to the next source line.  A
function can be registered as a *fault-injection scope* for rule FLT001
with::

    def commit(self):
        # repro-lint: flt-scope -- invoked under the engine's requeue handler
        ...

Baselines grandfather existing findings: a JSON file recording
``(rule, module, message)`` occurrence counts; findings matching the
baseline are reported as ``baselined`` and do not fail the run.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "SourceModule",
    "Rule",
    "Baseline",
    "LintResult",
    "Linter",
    "iter_python_files",
    "module_name_for",
    "format_human",
    "format_json",
]

#: Finding severities, in increasing order of badness.
SEVERITIES = ("warning", "error")

#: The rule ID used for malformed suppression comments.
META_RULE = "LINT000"

_MAGIC = re.compile(r"#\s*repro-lint:\s*(?P<body>[^\n]*)")
_DISABLE = re.compile(
    r"disable=(?P<rules>[A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)"
    r"(?P<just>\s*--\s*\S.*)?"
)
_FLT_SCOPE = re.compile(r"flt-scope(?P<just>\s*--\s*\S.*)?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: str
    path: str
    module: str
    line: int
    col: int
    message: str

    def key(self) -> Tuple[str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.module, self.message)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class _Suppression:
    line: int
    rules: Tuple[str, ...]
    justified: bool
    used: bool = False


class SourceModule:
    """A parsed source file: AST, parent links, and lint comments."""

    def __init__(self, path: str, source: str, module: str) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.suppressions: List[_Suppression] = []
        #: Lines carrying a ``flt-scope`` marker -> justified flag.
        self.flt_scope_lines: Dict[int, bool] = {}
        self.comment_errors: List[Finding] = []
        self._scan_comments()

    # -- comments -------------------------------------------------------------

    def _scan_comments(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            match = _MAGIC.search(text)
            if match is None:
                continue
            body = match.group("body").strip()
            disable = _DISABLE.match(body)
            if disable is not None:
                rules = tuple(
                    r.strip() for r in disable.group("rules").split(",")
                )
                justified = disable.group("just") is not None
                # A bare comment line suppresses the *next* line; a
                # trailing comment suppresses its own line.
                target = lineno
                if text.lstrip().startswith("#"):
                    target = lineno + 1
                self.suppressions.append(
                    _Suppression(line=target, rules=rules, justified=justified)
                )
                if not justified:
                    self.comment_errors.append(
                        Finding(
                            rule=META_RULE,
                            severity="error",
                            path=self.path,
                            module=self.module,
                            line=lineno,
                            col=0,
                            message=(
                                "suppression without justification: append"
                                " ' -- <reason>' to the disable comment"
                            ),
                        )
                    )
                continue
            flt = _FLT_SCOPE.match(body)
            if flt is not None:
                justified = flt.group("just") is not None
                self.flt_scope_lines[lineno] = justified
                if not justified:
                    self.comment_errors.append(
                        Finding(
                            rule=META_RULE,
                            severity="error",
                            path=self.path,
                            module=self.module,
                            line=lineno,
                            col=0,
                            message=(
                                "flt-scope registration without justification:"
                                " append ' -- <reason>'"
                            ),
                        )
                    )
                continue
            self.comment_errors.append(
                Finding(
                    rule=META_RULE,
                    severity="error",
                    path=self.path,
                    module=self.module,
                    line=lineno,
                    col=0,
                    message=f"unrecognised repro-lint directive: {body!r}",
                )
            )

    def suppressed(self, finding: Finding) -> bool:
        """Whether a (justified) suppression covers ``finding``."""
        for sup in self.suppressions:
            if sup.line == finding.line and finding.rule in sup.rules:
                sup.used = True
                return sup.justified
        return False

    # -- AST helpers ----------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module node."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def flt_scope_functions(self) -> List[ast.AST]:
        """Function defs registered as fault-injection scopes.

        A marker comment registers the function whose header region
        (the ``def`` line, the line above it, or the lines down to the
        first body statement — i.e. alongside the docstring) contains
        it.
        """
        if not self.flt_scope_lines:
            return []
        registered: List[ast.AST] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            first_body_line = node.body[0].lineno if node.body else node.lineno
            for line, justified in self.flt_scope_lines.items():
                if justified and node.lineno - 1 <= line <= first_body_line:
                    registered.append(node)
                    break
        return registered

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            rule=rule.id,
            severity=rule.severity,
            path=self.path,
            module=self.module,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``title``/``severity`` and implement
    :meth:`check`; cross-file rules additionally implement
    :meth:`finalize`, which runs once after every module was checked.
    """

    id: str = "RULE000"
    title: str = ""
    severity: str = "error"

    def applies(self, module: str) -> bool:
        """Whether the rule runs on dotted module ``module``."""
        return True

    def check(self, mod: SourceModule) -> Iterable[Finding]:
        """Per-module pass; yields findings."""
        return ()

    def finalize(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        """Cross-module pass over every module the rule applied to."""
        return ()


def _scoped(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(
        module == p or module.startswith(p + ".") for p in prefixes
    )


class ScopedRule(Rule):
    """A rule restricted to modules under given dotted prefixes."""

    scope: Tuple[str, ...] = ()

    def applies(self, module: str) -> bool:
        if not self.scope:
            return True
        return _scoped(module, self.scope)


@dataclass
class Baseline:
    """Grandfathered findings: ``(rule, module, message) -> count``."""

    entries: Dict[Tuple[str, str, str], int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline JSON file."""
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        entries: Dict[Tuple[str, str, str], int] = {}
        for item in doc.get("findings", []):
            key = (item["rule"], item["module"], item["message"])
            entries[key] = entries.get(key, 0) + int(item.get("count", 1))
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Build a baseline grandfathering ``findings``."""
        entries: Dict[Tuple[str, str, str], int] = {}
        for f in findings:
            entries[f.key()] = entries.get(f.key(), 0) + 1
        return cls(entries=entries)

    def save(self, path: str) -> None:
        """Write the baseline as JSON (sorted, diff-friendly)."""
        doc = {
            "version": 1,
            "findings": [
                {"rule": rule, "module": module, "message": message, "count": count}
                for (rule, module, message), count in sorted(self.entries.items())
            ],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=False)
            fh.write("\n")

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition into (new, baselined) against the recorded counts."""
        budget = dict(self.entries)
        new: List[Finding] = []
        grandfathered: List[Finding] = []
        for f in findings:
            remaining = budget.get(f.key(), 0)
            if remaining > 0:
                budget[f.key()] = remaining - 1
                grandfathered.append(f)
            else:
                new.append(f)
        return new, grandfathered


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    parse_errors: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        """Findings at error severity (these fail the run)."""
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        """Findings at warning severity."""
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when nothing error-severity (or unparseable) remains."""
        return not self.errors and not self.parse_errors


def module_name_for(path: Path) -> str:
    """Dotted module name derived from ``path``.

    The name starts at the last path component named ``repro`` (the
    package root), so ``src/repro/core/tier.py`` -> ``repro.core.tier``.
    Files outside a ``repro`` tree fall back to their stem.
    """
    parts = list(path.with_suffix("").parts)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            parts = parts[i:]
            break
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or ["repro"]
    return ".".join(parts)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield ``.py`` files under each path (files pass through)."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


class Linter:
    """Run a rule set over source files and post-process findings."""

    def __init__(
        self, rules: Sequence[Rule], baseline: Optional[Baseline] = None
    ) -> None:
        self.rules = list(rules)
        self.baseline = baseline or Baseline()

    def run_paths(
        self,
        paths: Sequence[str],
        module_overrides: Optional[Dict[str, str]] = None,
    ) -> LintResult:
        """Lint every Python file under ``paths``.

        ``module_overrides`` maps file path strings to dotted module
        names, letting tests lint fixture files *as if* they lived at a
        given spot in the package (rule scoping keys off the module).
        """
        overrides = module_overrides or {}
        modules: List[SourceModule] = []
        parse_errors: List[Finding] = []
        for path in iter_python_files(paths):
            text = path.read_text(encoding="utf-8")
            name = overrides.get(str(path)) or module_name_for(path)
            try:
                modules.append(SourceModule(str(path), text, name))
            except SyntaxError as exc:
                parse_errors.append(
                    Finding(
                        rule=META_RULE,
                        severity="error",
                        path=str(path),
                        module=name,
                        line=exc.lineno or 0,
                        col=exc.offset or 0,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
        result = self.run_modules(modules)
        result.parse_errors.extend(parse_errors)
        return result

    def run_modules(self, modules: Sequence[SourceModule]) -> LintResult:
        """Lint already-parsed modules."""
        raw: List[Finding] = []
        per_rule_modules: Dict[str, List[SourceModule]] = {}
        by_path = {m.path: m for m in modules}
        for mod in modules:
            raw.extend(mod.comment_errors)
            for rule in self.rules:
                if not rule.applies(mod.module):
                    continue
                per_rule_modules.setdefault(rule.id, []).append(mod)
                raw.extend(rule.check(mod))
        for rule in self.rules:
            scoped = per_rule_modules.get(rule.id, [])
            if scoped:
                raw.extend(rule.finalize(scoped))

        kept: List[Finding] = []
        suppressed = 0
        for f in raw:
            mod = by_path.get(f.path)
            if f.rule != META_RULE and mod is not None and mod.suppressed(f):
                suppressed += 1
                continue
            kept.append(f)
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        new, grandfathered = self.baseline.split(kept)
        return LintResult(
            findings=new,
            baselined=grandfathered,
            suppressed=suppressed,
            files_checked=len(modules),
        )


def format_human(result: LintResult) -> List[str]:
    """Render a result as human-readable report lines."""
    lines: List[str] = []
    for f in result.parse_errors + result.findings:
        lines.append(
            f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity}] {f.message}"
        )
    lines.append(
        f"repro lint: {len(result.errors)} error(s),"
        f" {len(result.warnings)} warning(s),"
        f" {len(result.baselined)} baselined,"
        f" {result.suppressed} suppressed,"
        f" {result.files_checked} file(s) checked"
    )
    return lines


def format_json(result: LintResult) -> str:
    """Render a result as a JSON document string."""
    doc = {
        "version": 1,
        "findings": [f.to_dict() for f in result.parse_errors + result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "summary": {
            "errors": len(result.errors) + len(result.parse_errors),
            "warnings": len(result.warnings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "files_checked": result.files_checked,
            "ok": result.ok,
        },
    }
    return json.dumps(doc, indent=2) + "\n"
