"""The repro-lint rule set.

Rules encode paper-level invariants (see ``docs/static-analysis.md``):

* DET001 — no wall-clock reads in simulated components
* DET002 — all randomness flows through ``repro.sim.rng``
* DET003 — no iteration over sets with unpinned order
* REF001 — ``chunk_ref`` needs a release path in its component
* FLT001 — substrate I/O must sit inside a fault scope
* API001 — no imports bypassing the ``RadosCluster`` facade
* OBS001 — started spans must be closed on all paths
* LCK001 — no potential acquire-acquire cycles across call paths
* LCK002 — no faultable I/O or unbounded waits under a write lock
* LCK003 — locks must be released on every exit path
"""

from typing import Dict, List

from ..engine import Rule
from .determinism import SetOrderRule, UnseededRandomRule, WallClockRule
from .faults import FaultScopeRule
from .layering import LayeringRule
from .observability import SpanLifecycleRule
from .references import RefPairingRule

__all__ = [
    "WallClockRule",
    "UnseededRandomRule",
    "SetOrderRule",
    "RefPairingRule",
    "FaultScopeRule",
    "LayeringRule",
    "SpanLifecycleRule",
    "default_rules",
    "rules_by_id",
]


def default_rules() -> List[Rule]:
    """One instance of every repro-lint rule."""
    # Imported lazily: concurrency.rules reuses FLT001 helpers from this
    # package, so a module-level import here would be circular.
    from ..concurrency.rules import (
        LockOrderRule,
        LockReleaseRule,
        LockWaitRule,
    )

    return [
        WallClockRule(),
        UnseededRandomRule(),
        SetOrderRule(),
        RefPairingRule(),
        FaultScopeRule(),
        LayeringRule(),
        SpanLifecycleRule(),
        LockOrderRule(),
        LockWaitRule(),
        LockReleaseRule(),
    ]


def rules_by_id() -> Dict[str, Rule]:
    """Rule instances keyed by their IDs."""
    return {rule.id: rule for rule in default_rules()}
