"""Determinism rules (DET001-DET003).

The paper's double-hashing design makes placement a pure function of
content: the chunk ID is the fingerprint, and CRUSH hashes that ID to an
OSD.  Anything nondeterministic feeding that path — wall-clock reads,
unseeded randomness, set-iteration order (which varies run-to-run under
string hash randomisation) — silently breaks replayability of every
seeded experiment.  These rules reject such sources at diff time.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..engine import Finding, ScopedRule, SourceModule

__all__ = ["ImportMap", "WallClockRule", "UnseededRandomRule", "SetOrderRule"]


class ImportMap:
    """Alias -> dotted-origin map built from a module's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Used to
    resolve call targets back to their canonical dotted names.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an expression, if import-derived."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        origin = self.aliases.get(current.id)
        if origin is None:
            return None
        return ".".join([origin] + list(reversed(parts)))


#: Wall-clock callables banned inside deterministic components.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(ScopedRule):
    """DET001: no wall-clock reads inside the simulated components.

    ``repro.sim``/``repro.cluster``/``repro.core`` run entirely on the
    simulated clock; a real-time read there either leaks into simulated
    state (breaking determinism) or silently measures the wrong clock.
    Wall-clock timing belongs to ``repro.perf``/``repro.bench``.
    """

    id = "DET001"
    title = "wall-clock read in a simulated component"
    scope = ("repro.sim", "repro.cluster", "repro.core")

    def check(self, mod: SourceModule) -> Iterable[Finding]:
        imports = ImportMap(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = imports.resolve(node.func)
            if dotted in _WALL_CLOCK:
                yield mod.finding(
                    self,
                    node,
                    f"wall-clock call {dotted}() in deterministic component"
                    f" {mod.module}; use the simulated clock (sim.now) or"
                    f" move the measurement into repro.perf",
                )


class UnseededRandomRule(ScopedRule):
    """DET002: all randomness must flow through ``repro.sim.rng``.

    Module-level ``random.*`` functions share one hidden global stream:
    any new caller perturbs every existing draw, so two runs of "the
    same" seeded experiment diverge the moment unrelated code asks for
    a random number.  ``random.Random()`` without a seed (and
    ``SystemRandom``) are nondeterministic outright.  Named streams from
    :class:`repro.sim.rng.RngRegistry` (or an explicitly seeded
    ``random.Random(seed)`` for module-local tables) are the sanctioned
    sources.
    """

    id = "DET002"
    title = "unseeded or global-stream randomness"
    scope = ("repro",)

    def check(self, mod: SourceModule) -> Iterable[Finding]:
        imports = ImportMap(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = imports.resolve(node.func)
            if dotted is None:
                continue
            if dotted == "random.Random":
                if not node.args and not node.keywords:
                    yield mod.finding(
                        self,
                        node,
                        "unseeded random.Random(): seed it explicitly or"
                        " draw from a repro.sim.rng.RngRegistry stream",
                    )
            elif dotted == "random.SystemRandom":
                yield mod.finding(
                    self,
                    node,
                    "random.SystemRandom is nondeterministic by design;"
                    " draw from a repro.sim.rng.RngRegistry stream",
                )
            elif dotted.startswith("random."):
                yield mod.finding(
                    self,
                    node,
                    f"module-level {dotted}() uses the hidden global RNG"
                    f" stream; draw from a repro.sim.rng.RngRegistry stream",
                )
            elif dotted.startswith("numpy.random.") or dotted.startswith(
                "np.random."
            ):
                tail = dotted.split("random.", 1)[1]
                if tail == "default_rng" and (node.args or node.keywords):
                    continue  # explicitly seeded generator
                yield mod.finding(
                    self,
                    node,
                    f"{dotted}() draws from numpy's global (or unseeded)"
                    f" RNG; derive a seed via repro.sim.rng.derive_seed and"
                    f" pass it to numpy.random.default_rng",
                )


def _is_set_call(node: ast.Call) -> bool:
    return isinstance(node.func, ast.Name) and node.func.id in (
        "set",
        "frozenset",
    )


class SetOrderRule(ScopedRule):
    """DET003: never iterate a set where order can feed placement.

    Set iteration order depends on string hash randomisation
    (``PYTHONHASHSEED``), so a loop over a set of chunk IDs or OSD ids
    emits a different order every process — and any placement or
    chunk-ordering decision derived from it stops being replayable.
    Wrap the iterable in ``sorted(...)`` to pin the order.
    """

    id = "DET003"
    title = "iteration over a set with unpinned order"
    scope = (
        "repro.sim",
        "repro.cluster",
        "repro.core",
        "repro.fingerprint",
        "repro.chunking",
    )

    #: Order-insensitive consumers a set expression may appear under.
    _SAFE_CALLS = {
        "sorted",
        "len",
        "sum",
        "min",
        "max",
        "any",
        "all",
        "set",
        "frozenset",
        "bool",
    }

    def check(self, mod: SourceModule) -> Iterable[Finding]:
        set_names = self._set_typed_names(mod)
        for node in ast.walk(mod.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                # A comprehension feeding an order-insensitive aggregate
                # (sum(... for x in s), any(...), a set comprehension) is
                # safe: the consumer collapses the order away.
                if isinstance(node, (ast.SetComp, ast.DictComp)):
                    continue
                parent = mod.parent(node)
                if (
                    isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id in self._SAFE_CALLS
                ):
                    continue
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("list", "tuple", "enumerate") and node.args:
                    iters.append(node.args[0])
            for target in iters:
                scopes = (self._scope_of(mod, target), mod.tree)
                if self._is_set_expr(target, set_names, scopes):
                    yield mod.finding(
                        self,
                        target,
                        "iteration over a set: order varies per process"
                        " (PYTHONHASHSEED); wrap in sorted(...) to pin it",
                    )

    def _set_typed_names(self, mod: SourceModule) -> Set[Tuple[ast.AST, str]]:
        """(enclosing function, name) pairs assigned a set expression."""
        names: Set[Tuple[ast.AST, str]] = set()
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Assign):
                continue
            scope = self._scope_of(mod, node)
            if not self._is_set_expr(node.value, names, (scope, mod.tree)):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add((scope, target.id))
        return names

    @staticmethod
    def _scope_of(mod: SourceModule, node: ast.AST) -> ast.AST:
        for anc in mod.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return anc
        return mod.tree

    def _is_set_expr(
        self,
        node: ast.AST,
        set_names: Set[Tuple[ast.AST, str]],
        scopes: Tuple[ast.AST, ...],
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and _is_set_call(node):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(
                node.left, set_names, scopes
            ) or self._is_set_expr(node.right, set_names, scopes)
        if isinstance(node, ast.Name):
            return any((scope, node.id) in set_names for scope in scopes)
        return False
