"""Fault-model coverage rule (FLT001).

The fault model only means something if every simulated I/O edge is
wrapped by it: a single substrate mutation issued outside a retry or
fault-handling scope is an edge where an injected fault (EIO, crash,
partition) escapes as an unhandled exception instead of exercising the
recovery path the paper's §4.6 analysis depends on.  FASTEN
(arXiv:2312.08309) draws the same boundary between its replication and
dedup layers — the dedup tier must consume substrate faults, not leak
them.

A call site counts as *guarded* when any of these encloses it:

* a lambda/function passed as a factory to ``call_with_retries`` or a
  ``.retrying(...)`` helper (the retry layer);
* a ``try`` whose handler catches ``Exception`` and either classifies
  via ``is_retryable`` or swallows without re-raising (the engine's
  skip-and-requeue degradation);
* a function registered as a fault-injection scope with a
  ``# repro-lint: flt-scope -- <reason>`` marker (for primitives whose
  *callers* own the scope, and for deliberately unguarded paths such as
  offline GC — the justification documents why).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..engine import Finding, ScopedRule, SourceModule

__all__ = ["FaultScopeRule"]

#: Substrate-mutation methods whose call sites must be guarded.
_IO_OPS = ("submit", "submit_batch", "write_full", "remove", "setxattr")

#: Receiver names that identify the storage substrate.
_SUBSTRATE_NAMES = ("cluster", "rados")

#: Names that establish a retry scope when called with a factory.
_RETRY_CALLS = ("call_with_retries", "retrying")


def _receiver_tail(node: ast.expr) -> str:
    """Last identifier of a dotted receiver chain (``a.b.cluster`` -> ``cluster``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_io_site(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _IO_OPS
        and _receiver_tail(node.func.value) in _SUBSTRATE_NAMES
    )


def _callee_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def _mentions_is_retryable(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == "is_retryable"
        for sub in ast.walk(node)
    )


def _handler_catches_broadly(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names: List[ast.expr] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for expr in names:
        tail = expr.attr if isinstance(expr, ast.Attribute) else getattr(expr, "id", "")
        if tail in ("Exception", "BaseException"):
            return True
    return False


def _handler_guards(handler: ast.ExceptHandler) -> bool:
    """A broad handler that classifies with is_retryable, or swallows."""
    if not _handler_catches_broadly(handler):
        return False
    if any(_mentions_is_retryable(stmt) for stmt in handler.body):
        return True
    return not any(
        isinstance(sub, ast.Raise) for stmt in handler.body for sub in ast.walk(stmt)
    )


class FaultScopeRule(ScopedRule):
    """FLT001: substrate mutations must sit inside a fault scope."""

    id = "FLT001"
    title = "substrate I/O outside any retry or fault-injection scope"
    scope = ("repro.core", "repro.bench", "repro.workloads")

    def check(self, mod: SourceModule) -> Iterable[Finding]:
        retry_factories = self._retry_factories(mod)
        registered = set(map(id, mod.flt_scope_functions()))
        for node in ast.walk(mod.tree):
            if not _is_io_site(node):
                continue
            if self._guarded(mod, node, retry_factories, registered):
                continue
            op = node.func.attr  # type: ignore[attr-defined]
            yield mod.finding(
                self,
                node,
                f"substrate mutation .{op}() outside any retry or"
                f" fault-injection scope: wrap it in call_with_retries/"
                f".retrying(...), handle is_retryable faults around it, or"
                f" register the enclosing function with"
                f" '# repro-lint: flt-scope -- <reason>'",
            )

    def _retry_factories(self, mod: SourceModule) -> Set[int]:
        """AST node ids of lambdas/functions passed to the retry layer."""
        factories: Set[int] = set()
        local_defs = {
            node.name: node
            for node in ast.walk(mod.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if _callee_name(node) not in _RETRY_CALLS:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    factories.add(id(arg))
                elif isinstance(arg, ast.Name) and arg.id in local_defs:
                    factories.add(id(local_defs[arg.id]))
        return factories

    def _guarded(
        self,
        mod: SourceModule,
        site: ast.AST,
        retry_factories: Set[int],
        registered: Set[int],
    ) -> bool:
        child = site
        for anc in mod.ancestors(site):
            if isinstance(anc, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                if id(anc) in retry_factories or id(anc) in registered:
                    return True
            if isinstance(anc, ast.Try):
                in_body = any(
                    stmt is child or self._contains(stmt, child)
                    for stmt in anc.body
                )
                if in_body and any(_handler_guards(h) for h in anc.handlers):
                    return True
            child = anc
        return False

    @staticmethod
    def _contains(tree: ast.AST, node: ast.AST) -> bool:
        return any(sub is node for sub in ast.walk(tree))
