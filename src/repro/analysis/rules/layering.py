"""Layering rule (API001).

``RadosCluster`` (the ``repro.cluster`` facade) is the paper's
"underlying storage system" boundary: the dedup tier rides its
replication, recovery and transaction semantics and must not reach
around it.  A consumer importing ``repro.cluster.osd`` (or any other
cluster submodule) directly couples itself to substrate internals —
exactly the split-brain coupling the shared-nothing design avoids —
and bypasses the two-phase commit the facade provides.  Consumers may
import only the facade: ``from ..cluster import X`` /
``import repro.cluster``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, Rule, SourceModule

__all__ = ["LayeringRule"]


class LayeringRule(Rule):
    """API001: no imports of ``repro.cluster`` submodules from outside."""

    id = "API001"
    title = "cross-layer import bypassing the RadosCluster facade"

    def applies(self, module: str) -> bool:
        # The cluster package may import its own internals freely.
        return module.startswith("repro.") and not (
            module == "repro.cluster" or module.startswith("repro.cluster.")
        )

    def check(self, mod: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro.cluster."):
                        yield self._finding(mod, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                target = node.module or ""
                if node.level == 0:
                    if target.startswith("repro.cluster."):
                        yield self._finding(mod, node, target)
                else:
                    # Relative: ``from ..cluster.osd import X`` (any level).
                    if target.startswith("cluster."):
                        yield self._finding(mod, node, target)

    def _finding(self, mod: SourceModule, node: ast.AST, target: str) -> Finding:
        return mod.finding(
            self,
            node,
            f"import of cluster submodule {target!r} bypasses the"
            f" RadosCluster facade; import from repro.cluster (the package)"
            f" instead",
        )
