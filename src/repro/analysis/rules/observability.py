"""Span lifecycle rule (OBS001).

The tracing layer (``repro.obs``) buffers spans until ``finish()``
stamps their end time; a span left open never appears with a duration,
breaks the obs-smoke integrity gate ("span was never finished"), and —
worse — silently punches a hole in the ≥95 % coverage requirement for
its root op.  Exceptions make this easy to get wrong: a span started
before a ``yield from`` into the cluster is leaked whenever a fault
propagates out.  This rule requires every span-starting call
(``child`` / ``root_span`` / ``start_span``) to be closed on all paths:
used directly as a ``with`` context manager, returned to a caller who
owns it, or assigned to a name that is later entered with ``with`` or
finished inside a ``try/finally``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..engine import Finding, ScopedRule, SourceModule

__all__ = ["SpanLifecycleRule"]

#: Method names that start (and therefore leak, if unclosed) a span.
_STARTERS = ("child", "root_span", "start_span")


def _starter_call(node: ast.AST) -> Optional[str]:
    """The starter method name if ``node`` is a span-starting call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _STARTERS
    ):
        return node.func.attr
    return None


def _finishes_name(tree: ast.AST, name: str) -> bool:
    """Whether ``tree`` contains ``<name>.finish()``."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "finish"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            return True
    return False


def _entered_later(scope: ast.AST, name: str, after_line: int) -> bool:
    """Whether ``with <name>`` (possibly ``with <name> as ...``) appears
    in ``scope`` at or after ``after_line``."""
    for node in ast.walk(scope):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if node.lineno < after_line:
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name) and expr.id == name:
                return True
    return False


class SpanLifecycleRule(ScopedRule):
    """OBS001: spans must be closed on all paths."""

    id = "OBS001"
    title = "span started without a with-block or try/finally finish"
    scope = ("repro",)

    def check(self, mod: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            starter = _starter_call(node)
            if starter is None:
                continue
            if self._guarded(mod, node):
                continue
            yield mod.finding(
                self,
                node,
                f"span from .{starter}(...) is not closed on all paths:"
                f" use 'with' on it, return it, or finish() it in a"
                f" try/finally",
            )

    def _guarded(self, mod: SourceModule, call: ast.Call) -> bool:
        parent = mod.parent(call)
        # with span.child(...) as s:  — the with closes it on every path.
        if isinstance(parent, ast.withitem) and parent.context_expr is call:
            return True
        # return tracer.start_span(...) — ownership moves to the caller
        # (factories like Tracer.root_span itself, or DedupTier.tracer
        # accessors); the caller's use site is what this rule checks.
        if isinstance(parent, ast.Return):
            return True
        # s = span.child(...) followed by either `with s:` or a
        # try/finally that calls s.finish().
        if (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            name = parent.targets[0].id
            scope = self._enclosing_function(mod, parent)
            if scope is None:
                return False
            if _entered_later(scope, name, parent.lineno):
                return True
            # A try whose finally finishes the name guards the span
            # whether the assignment sits inside its body or just
            # before it (assign; try: ... finally: s.finish()).
            for node in ast.walk(scope):
                if (
                    isinstance(node, ast.Try)
                    and node.end_lineno is not None
                    and node.end_lineno >= parent.lineno
                    and any(
                        _finishes_name(stmt, name) for stmt in node.finalbody
                    )
                ):
                    return True
            return False
        return False

    @staticmethod
    def _enclosing_function(mod: SourceModule, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in mod.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None
