"""Reference-count pairing rule (REF001).

The paper's dedup metadata is *self-contained*: every chunk object
carries its own reference list, and correctness rests on every
reference-take having a reachable release path.  Khan et al.'s
cluster-wide dedup work (arXiv:1803.07722) documents how shared-nothing
designs drift into refcount leaks precisely when a component acquires
references without owning a release path.  This rule checks the pairing
*per component*: a component that calls ``chunk_ref`` must also contain
a ``chunk_deref`` or a ``commit_chunk_batch`` (the batched release
path) — otherwise every reference it takes is structurally unreleasable
from within that component.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Sequence, Tuple

from ..engine import Finding, Rule, SourceModule

__all__ = ["RefPairingRule"]

#: Calls that acquire a chunk reference.
_ACQUIRE = ("chunk_ref",)
#: Calls that release references (directly or via a batch commit, whose
#: transaction applies the batched ``deref`` ops).
_RELEASE = ("chunk_deref", "commit_chunk_batch")


def _component(module: str) -> str:
    parts = module.split(".")
    if parts[0] == "repro" and len(parts) > 1:
        return parts[1]
    return parts[0]


def _method_calls(tree: ast.AST, names: Tuple[str, ...]) -> List[ast.Call]:
    out = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in names
        ):
            out.append(node)
    return out


class RefPairingRule(Rule):
    """REF001: ``chunk_ref`` call sites need a release path nearby."""

    id = "REF001"
    title = "chunk_ref without a reachable release path in its component"

    def applies(self, module: str) -> bool:
        # The tier itself defines the primitives; pairing is a property
        # of the *consuming* components.
        return module.startswith("repro.") and not module.startswith(
            "repro.core.tier"
        )

    def finalize(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        acquires: Dict[str, List[Tuple[SourceModule, ast.Call]]] = {}
        releases: Dict[str, int] = {}
        for mod in modules:
            comp = _component(mod.module)
            for call in _method_calls(mod.tree, _ACQUIRE):
                acquires.setdefault(comp, []).append((mod, call))
            releases[comp] = releases.get(comp, 0) + len(
                _method_calls(mod.tree, _RELEASE)
            )
        for comp, sites in sorted(acquires.items()):
            if releases.get(comp, 0) > 0:
                continue
            for mod, call in sites:
                yield mod.finding(
                    self,
                    call,
                    f"chunk_ref call in component {comp!r} with no reachable"
                    f" chunk_deref/commit_chunk_batch in that component —"
                    f" references taken here are structurally unreleasable"
                    f" (refcount leak)",
                )
