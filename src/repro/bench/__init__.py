"""Shared experiment harness used by the `benchmarks/` suite."""

from .harness import (
    KiB,
    MiB,
    build_cluster,
    default_config,
    fmt_bytes,
    fmt_ms,
    inline,
    original,
    proposed,
    render_table,
    report,
    RESULTS,
)

__all__ = [
    "KiB",
    "MiB",
    "build_cluster",
    "default_config",
    "original",
    "proposed",
    "inline",
    "fmt_bytes",
    "fmt_ms",
    "render_table",
    "report",
    "RESULTS",
]
