"""Shared experiment harness for the paper-reproduction benchmarks.

Every bench in ``benchmarks/`` builds its storage configurations
("Original", "Proposed", EC variants...) through these helpers, so all
experiments run on the same testbed shape as the paper (§6.1): four
server hosts with four OSDs each, 10 GbE, three client hosts, 2-way
replication (EC 2+1 where called for), 32 KiB chunks.

Data sizes are scaled down ~1000x (MB instead of GB) so each experiment
finishes in seconds of wall time; every table printed by the benches
carries the scale note and the paper's reference values.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cluster import ErasureCoded, RadosCluster, Replicated
from ..core import DedupConfig, DedupedStorage, InlineDedupStorage, PlainStorage

__all__ = [
    "KiB",
    "MiB",
    "build_cluster",
    "original",
    "proposed",
    "inline",
    "default_config",
    "fmt_bytes",
    "fmt_ms",
    "render_table",
    "report",
    "RESULTS",
]

#: Tables registered by benches; the benchmark suite's conftest prints
#: them in the terminal summary (stdout inside tests is captured).
RESULTS: List[List[str]] = []


def report(lines: Sequence[str]) -> None:
    """Register a rendered table for the end-of-run summary and echo it
    to stdout (visible under ``pytest -s`` or on failures)."""
    RESULTS.append(list(lines))
    print()
    for line in lines:
        print(line)

KiB = 1024
MiB = 1024 * KiB

#: The paper's testbed: 4 servers x 4 OSDs.
PAPER_HOSTS = 4
PAPER_OSDS_PER_HOST = 4


def build_cluster(
    num_hosts: int = PAPER_HOSTS,
    osds_per_host: int = PAPER_OSDS_PER_HOST,
    pg_num: int = 64,
) -> RadosCluster:
    """A cluster shaped like the paper's testbed."""
    return RadosCluster(num_hosts=num_hosts, osds_per_host=osds_per_host, pg_num=pg_num)


def default_config(**overrides) -> DedupConfig:
    """The evaluation's dedup configuration (32 KiB chunks etc.)."""
    kwargs = dict(
        chunk_size=32 * KiB,
        dedup_interval=0.005,
        hitset_period=1.0,
        hitset_count=8,
        hit_count_threshold=2,
    )
    kwargs.update(overrides)
    return DedupConfig(**kwargs)


def original(cluster: Optional[RadosCluster] = None, ec: bool = False) -> PlainStorage:
    """The *Original* baseline: the cluster with no dedup."""
    cluster = cluster if cluster is not None else build_cluster()
    redundancy = ErasureCoded(2, 1) if ec else Replicated(2)
    return PlainStorage(cluster, redundancy)


def proposed(
    cluster: Optional[RadosCluster] = None,
    ec: bool = False,
    flush_on_write: bool = False,
    start_engine: bool = False,
    **config_overrides,
) -> DedupedStorage:
    """The *Proposed* system: post-processing dedup tier.

    ``ec=True`` puts both pools on EC 2+1 (the paper's Proposed-EC).
    ``flush_on_write=True`` is Proposed-flush (immediate dedup).
    """
    cluster = cluster if cluster is not None else build_cluster()
    redundancy = ErasureCoded(2, 1) if ec else Replicated(2)
    return DedupedStorage(
        cluster,
        default_config(**config_overrides),
        metadata_redundancy=redundancy,
        chunk_redundancy=redundancy,
        flush_on_write=flush_on_write,
        start_engine=start_engine,
    )


def inline(
    cluster: Optional[RadosCluster] = None, **config_overrides
) -> InlineDedupStorage:
    """The inline-dedup baseline (Figure 5-a)."""
    cluster = cluster if cluster is not None else build_cluster()
    return InlineDedupStorage(cluster, default_config(**config_overrides))


# -- formatting ----------------------------------------------------------------


def fmt_bytes(n: float) -> str:
    """Human-readable byte count."""
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{n:.0f}B"
        n /= 1024
    return f"{n:.1f}TiB"


def fmt_ms(seconds: float) -> str:
    """Seconds rendered as milliseconds."""
    return f"{seconds * 1e3:.2f}ms"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> List[str]:
    """Render an experiment result table as lines of text."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def line(row):
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    out = [f"== {title} =="]
    out.append(line(cells[0]))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in cells[1:])
    for note in notes:
        out.append(f"   {note}")
    return out
