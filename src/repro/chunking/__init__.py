"""Chunking algorithms: static (fixed-size) and content-defined."""

from .base import ChunkSpan, Chunker, validate_chunking
from .cdc import GearChunker
from .rabin import RabinChunker
from .static import StaticChunker

__all__ = ["ChunkSpan", "Chunker", "validate_chunking", "StaticChunker", "GearChunker", "RabinChunker"]
