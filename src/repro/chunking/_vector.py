"""NumPy machinery shared by the vectorized CDC boundary scanners.

Both rolling hashes used by the content-defined chunkers become
*windowed* functions of the input once truncated to the bits the
boundary test actually reads:

* Gear (:mod:`.cdc`): ``fp = (fp << 1) + GEAR[b]`` shifts every byte's
  contribution one bit further up per step, so ``fp mod 2**m`` depends
  only on the last ``m`` bytes consumed.  With per-distance tables
  ``T_d[b] = (GEAR[b] << d) mod 2**32`` the masked hash at every
  position is a plain sum of ``m`` table lookups (unsigned overflow is
  exactly the ``mod 2**32`` the truncation needs).
* Rabin (:mod:`.rabin`): the sliding-window subtraction makes the
  fingerprint windowed by construction, and GF(2) linearity decomposes
  it into per-distance contributions ``W_d[b] = b * x**(8 d) mod P``
  combined with XOR.

:func:`windowed_values` evaluates such a decomposition for *every*
candidate position in one vectorized pass — one fancy-indexed gather
per window depth instead of one interpreted loop iteration per byte —
which is where the chunking-stage speedup in ``repro perf`` comes from.

NumPy itself is an optional extra (``pip install repro[fast]``).  This
module is the single place the import is attempted; consumers branch on
:data:`HAVE_NUMPY` and fall back to the byte-at-a-time reference
scanners when it is ``False``.  Setting the ``REPRO_NO_NUMPY``
environment variable forces the fallback even when NumPy is installed
(the CI parity leg uses this to exercise the pure-Python paths).
"""

from __future__ import annotations

import os

try:
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("NumPy disabled via REPRO_NO_NUMPY")
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the no-NumPy CI leg
    np = None  # type: ignore[assignment]

__all__ = ["HAVE_NUMPY", "windowed_values", "first_match", "scan_first_match"]

#: True when the vectorized scan path is usable in this process.
HAVE_NUMPY = np is not None


def windowed_values(view, lo: int, hi: int, clamp: int, tables, xor: bool = False):
    """Rolling-hash values at every consumed-byte position in ``[lo, hi)``.

    ``tables`` is a ``(depth, 256)`` array whose row ``d`` holds the
    contribution of a byte ``d`` positions behind the current one; rows
    are combined with ``+`` (gear) or ``^`` (Rabin, ``xor=True``).
    ``clamp`` is the index of the first byte the hash may depend on —
    the point where the scan (re)started from zero — so positions fewer
    than ``depth`` bytes past ``clamp`` correctly see a partial window.
    """
    depth = len(tables)
    base = max(clamp, lo - depth + 1)
    buf = np.frombuffer(view[base:hi], dtype=np.uint8)
    # Row 0 gather allocates the accumulator; deeper rows add in place,
    # shifted so row d aligns with positions >= base + d.
    acc = tables[0][buf]
    limit = min(depth, len(buf))
    if xor:
        for d in range(1, limit):
            acc[d:] ^= tables[d][buf[:-d]]
    else:
        for d in range(1, limit):
            acc[d:] += tables[d][buf[:-d]]
    return acc[lo - base:]


def first_match(values, mask: int, magic: int = 0) -> int:
    """Index of the first ``values[i] & mask == magic``, or ``-1``."""
    hits = np.flatnonzero((values & mask) == magic)
    return int(hits[0]) if hits.size else -1


def scan_first_match(
    view, lo: int, hi: int, clamp: int, tables, mask: int, magic: int = 0,
    xor: bool = False,
) -> int:
    """First consumed-byte position in ``[lo, hi)`` whose windowed hash
    satisfies ``value & mask == magic``; ``-1`` if none.

    Evaluates block-wise rather than the whole range eagerly: boundaries
    land every ``mask + 1`` bytes in expectation, so computing the full
    range wastes most of the work whenever a hit comes early.  The block
    size is twice the expected gap — big enough that a typical scan
    finishes in one block, small enough to cap the overshoot.
    """
    block = max(512, 2 * (mask + 1))
    pos = lo
    while pos < hi:
        stop = min(pos + block, hi)
        hit = first_match(
            windowed_values(view, pos, stop, clamp, tables, xor=xor), mask, magic
        )
        if hit >= 0:
            return pos + hit
        pos = stop
    return -1
