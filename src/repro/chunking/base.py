"""Chunking primitives shared by all chunkers.

A chunker splits an object's payload into chunks — the unit of
redundancy detection (paper §4.4: "a chunk is a basic unit for detecting
redundancy of given data").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Union

__all__ = ["ChunkSpan", "Chunker"]

#: Chunk payloads are zero-copy views into the source buffer whenever
#: possible; anything that must outlive the buffer calls ``as_bytes``.
Buffer = Union[bytes, memoryview]


@dataclass(frozen=True, eq=False)
class ChunkSpan:
    """One chunk: its byte range within the object, and its bytes.

    ``data`` is usually a :class:`memoryview` into the payload being
    chunked — slicing it copies nothing.  Consumers that store the
    bytes (rather than hash or compare them) materialise via
    :meth:`as_bytes`.
    """

    offset: int
    length: int
    data: Buffer

    @property
    def end(self) -> int:
        """Exclusive end offset."""
        return self.offset + self.length

    def as_bytes(self) -> bytes:
        """The chunk's payload as real ``bytes`` (copies a view)."""
        return bytes(self.data)

    def __eq__(self, other):
        if not isinstance(other, ChunkSpan):
            return NotImplemented
        # bytes/memoryview compare by content either way.
        return (
            self.offset == other.offset
            and self.length == other.length
            and self.data == other.data
        )

    def __post_init__(self):
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")
        if self.length != len(self.data):
            raise ValueError(
                f"length {self.length} != data size {len(self.data)}"
            )


class Chunker(Protocol):
    """Anything that can split a payload into chunk spans."""

    def chunk(self, data: Buffer) -> List[ChunkSpan]:
        """Split ``data``; spans are contiguous and cover it exactly."""
        ...


def validate_chunking(data: Buffer, spans: List[ChunkSpan]) -> None:
    """Assert the spans tile ``data`` exactly (used by tests)."""
    pos = 0
    for span in spans:
        if span.offset != pos:
            raise AssertionError(f"gap/overlap at {pos}: span starts {span.offset}")
        if bytes(data[span.offset : span.end]) != bytes(span.data):
            raise AssertionError(f"span data mismatch at {span.offset}")
        pos = span.end
    if pos != len(data):
        raise AssertionError(f"spans cover {pos} of {len(data)} bytes")
