"""Chunking primitives shared by all chunkers.

A chunker splits an object's payload into chunks — the unit of
redundancy detection (paper §4.4: "a chunk is a basic unit for detecting
redundancy of given data").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol

__all__ = ["ChunkSpan", "Chunker"]


@dataclass(frozen=True)
class ChunkSpan:
    """One chunk: its byte range within the object, and its bytes."""

    offset: int
    length: int
    data: bytes

    @property
    def end(self) -> int:
        """Exclusive end offset."""
        return self.offset + self.length

    def __post_init__(self):
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")
        if self.length != len(self.data):
            raise ValueError(
                f"length {self.length} != data size {len(self.data)}"
            )


class Chunker(Protocol):
    """Anything that can split a payload into chunk spans."""

    def chunk(self, data: bytes) -> List[ChunkSpan]:
        """Split ``data``; spans are contiguous and cover it exactly."""
        ...


def validate_chunking(data: bytes, spans: List[ChunkSpan]) -> None:
    """Assert the spans tile ``data`` exactly (used by tests)."""
    pos = 0
    for span in spans:
        if span.offset != pos:
            raise AssertionError(f"gap/overlap at {pos}: span starts {span.offset}")
        if data[span.offset : span.end] != span.data:
            raise AssertionError(f"span data mismatch at {span.offset}")
        pos = span.end
    if pos != len(data):
        raise AssertionError(f"spans cover {pos} of {len(data)} bytes")
