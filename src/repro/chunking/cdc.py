"""Content-defined chunking (FastCDC-style gear hash).

The paper chose static chunking for CPU reasons (§5) but cites
content-defined chunking (CDC) as the alternative; we implement a
FastCDC-style chunker so the trade-off can be measured (ablation
benches) and so the library is usable on backup-style streams where CDC
is the norm.

The algorithm rolls a "gear" hash (one table lookup + shift per byte)
and declares a boundary when masked bits are zero.  Following FastCDC,
a stricter mask is used before the target size and a looser one after,
concentrating the chunk-size distribution around the target.
"""

from __future__ import annotations

import random
from typing import List

from .base import ChunkSpan

__all__ = ["GearChunker"]

_GEAR_SEED = 0x1D2D3D4D


def _gear_table(seed: int) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(64) for _ in range(256)]


_GEAR = _gear_table(_GEAR_SEED)
_MASK64 = (1 << 64) - 1


class GearChunker:
    """FastCDC-style content-defined chunker.

    Boundaries depend only on content, so an insertion early in a stream
    shifts boundaries only locally — the property that lets CDC find
    duplicates at unaligned offsets, which static chunking cannot.
    """

    def __init__(
        self,
        avg_size: int = 32 * 1024,
        min_size: int | None = None,
        max_size: int | None = None,
    ):
        if avg_size < 64:
            raise ValueError(f"avg_size too small: {avg_size}")
        if avg_size & (avg_size - 1):
            raise ValueError(f"avg_size must be a power of two, got {avg_size}")
        self.avg_size = avg_size
        self.min_size = min_size if min_size is not None else avg_size // 4
        self.max_size = max_size if max_size is not None else avg_size * 4
        if not (0 < self.min_size <= avg_size <= self.max_size):
            raise ValueError(
                f"need 0 < min ({self.min_size}) <= avg ({avg_size}) "
                f"<= max ({self.max_size})"
            )
        bits = avg_size.bit_length() - 1
        # FastCDC normalised chunking: harder mask before the target
        # size, easier after.
        self._mask_hard = (1 << (bits + 2)) - 1
        self._mask_easy = (1 << (bits - 2)) - 1

    def _find_boundary(self, data: bytes, start: int) -> int:
        n = len(data)
        end = min(start + self.max_size, n)
        if n - start <= self.min_size:
            return n
        fp = 0
        target = min(start + self.avg_size, end)
        i = start + self.min_size
        while i < target:
            fp = ((fp << 1) + _GEAR[data[i]]) & _MASK64
            if fp & self._mask_hard == 0:
                return i + 1
            i += 1
        while i < end:
            fp = ((fp << 1) + _GEAR[data[i]]) & _MASK64
            if fp & self._mask_easy == 0:
                return i + 1
            i += 1
        return end

    def chunk(self, data) -> List[ChunkSpan]:
        """Split ``data`` at content-defined boundaries (zero-copy spans)."""
        view = memoryview(data)
        spans = []
        pos = 0
        while pos < len(view):
            cut = self._find_boundary(view, pos)
            spans.append(ChunkSpan(offset=pos, length=cut - pos, data=view[pos:cut]))
            pos = cut
        return spans
