"""Content-defined chunking (FastCDC-style gear hash).

The paper chose static chunking for CPU reasons (§5) but cites
content-defined chunking (CDC) as the alternative; we implement a
FastCDC-style chunker so the trade-off can be measured (ablation
benches) and so the library is usable on backup-style streams where CDC
is the norm.

The algorithm rolls a "gear" hash (one table lookup + shift per byte)
and declares a boundary when masked bits are zero.  Following FastCDC,
a stricter mask is used before the target size and a looser one after,
concentrating the chunk-size distribution around the target.

Two scanners implement the identical boundary function:

* the byte-at-a-time reference scanner (:meth:`GearChunker._find_boundary`),
  always available, and
* a NumPy-vectorized scan that exploits the windowed nature of the
  masked gear hash (see :mod:`repro.chunking._vector`), used
  automatically when NumPy is importable.

Byte-identical output is a hard invariant, enforced by the Hypothesis
cross-validation suite in ``tests/chunking/test_vectorized_equiv.py``
and re-checked end-to-end by the perf harness verification step.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from . import _vector
from ._vector import HAVE_NUMPY, scan_first_match
from .base import ChunkSpan

__all__ = ["GearChunker", "HAVE_NUMPY"]

_GEAR_SEED = 0x1D2D3D4D


def _gear_table(seed: int) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(64) for _ in range(256)]


_GEAR = _gear_table(_GEAR_SEED)
_MASK64 = (1 << 64) - 1

# Shifted gear tables keyed by window width (= hard-mask bit count):
# row d holds (GEAR[b] << d) truncated to the accumulator dtype.  Low
# ``width`` bits of the rolling hash depend only on the last ``width``
# bytes, so these rows are everything the vectorized scan needs.
_SHIFT_TABLES: Dict[int, object] = {}


def _shift_tables(width: int):
    tables = _SHIFT_TABLES.get(width)
    if tables is None:
        np = _vector.np
        if width <= 16:
            dtype, dmask = np.uint16, (1 << 16) - 1
        elif width <= 32:
            dtype, dmask = np.uint32, (1 << 32) - 1
        else:
            dtype, dmask = np.uint64, _MASK64
        rows = [[(g << d) & dmask for g in _GEAR] for d in range(width)]
        tables = np.array(rows, dtype=dtype)
        _SHIFT_TABLES[width] = tables
    return tables


class GearChunker:
    """FastCDC-style content-defined chunker.

    Boundaries depend only on content, so an insertion early in a stream
    shifts boundaries only locally — the property that lets CDC find
    duplicates at unaligned offsets, which static chunking cannot.

    ``vectorized`` selects the boundary scanner: ``None`` (default)
    auto-selects the NumPy scan when available, ``True`` requires it,
    ``False`` forces the pure-Python reference scanner.  Both emit
    byte-identical :class:`ChunkSpan` lists.
    """

    def __init__(
        self,
        avg_size: int = 32 * 1024,
        min_size: int | None = None,
        max_size: int | None = None,
        vectorized: Optional[bool] = None,
    ):
        if avg_size < 64:
            raise ValueError(f"avg_size too small: {avg_size}")
        if avg_size & (avg_size - 1):
            raise ValueError(f"avg_size must be a power of two, got {avg_size}")
        self.avg_size = avg_size
        self.min_size = min_size if min_size is not None else avg_size // 4
        self.max_size = max_size if max_size is not None else avg_size * 4
        if not (0 < self.min_size <= avg_size <= self.max_size):
            raise ValueError(
                f"need 0 < min ({self.min_size}) <= avg ({avg_size}) "
                f"<= max ({self.max_size})"
            )
        bits = avg_size.bit_length() - 1
        # FastCDC normalised chunking: harder mask before the target
        # size, easier after.
        self._mask_hard = (1 << (bits + 2)) - 1
        self._mask_easy = (1 << (bits - 2)) - 1
        if vectorized is None:
            vectorized = HAVE_NUMPY
        elif vectorized and not HAVE_NUMPY:
            raise RuntimeError(
                "vectorized chunking requires NumPy (pip install repro[fast])"
            )
        self.vectorized = vectorized
        self._tables = _shift_tables(bits + 2) if vectorized else None

    def _find_boundary(self, data: bytes, start: int) -> int:
        """Reference scanner: one interpreted step per byte."""
        n = len(data)
        end = min(start + self.max_size, n)
        if n - start <= self.min_size:
            return n
        fp = 0
        target = min(start + self.avg_size, end)
        i = start + self.min_size
        while i < target:
            fp = ((fp << 1) + _GEAR[data[i]]) & _MASK64
            if fp & self._mask_hard == 0:
                return i + 1
            i += 1
        while i < end:
            fp = ((fp << 1) + _GEAR[data[i]]) & _MASK64
            if fp & self._mask_easy == 0:
                return i + 1
            i += 1
        return end

    def _find_boundary_vectorized(self, view: memoryview, start: int) -> int:
        """NumPy scan; emits the same cut points as :meth:`_find_boundary`.

        The hash restarts from zero at ``start + min_size`` (where the
        reference scanner begins rolling), so both segments clamp their
        window there; the hard- then easy-mask segments mirror the two
        reference loops exactly.
        """
        n = len(view)
        end = min(start + self.max_size, n)
        if n - start <= self.min_size:
            return n
        scan_from = start + self.min_size
        target = min(start + self.avg_size, end)
        if scan_from < target:
            hit = scan_first_match(
                view, scan_from, target, scan_from, self._tables, self._mask_hard
            )
            if hit >= 0:
                return hit + 1
        if target < end:
            hit = scan_first_match(
                view, target, end, scan_from, self._tables, self._mask_easy
            )
            if hit >= 0:
                return hit + 1
        return end

    def chunk(self, data) -> List[ChunkSpan]:
        """Split ``data`` at content-defined boundaries (zero-copy spans)."""
        view = memoryview(data)
        find = self._find_boundary_vectorized if self.vectorized else self._find_boundary
        spans = []
        pos = 0
        while pos < len(view):
            cut = find(view, pos)
            spans.append(ChunkSpan(offset=pos, length=cut - pos, data=view[pos:cut]))
            pos = cut
        return spans
