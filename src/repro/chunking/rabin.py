"""Rabin-fingerprint content-defined chunking.

The classic CDC algorithm (used by LBFS and most backup dedup systems,
and the one the paper's CDC citations build on): a degree-63 polynomial
rolling hash over a sliding window; a boundary is declared when the
fingerprint's low bits hit a fixed pattern.  Unlike the gear hash
(:class:`~repro.chunking.GearChunker`), the window contribution of the
byte leaving the window is subtracted exactly, so the hash is a true
function of the last ``window_size`` bytes.

Slower than gear (two table lookups per byte) but the reference
algorithm — kept alongside it for the chunking ablation.

Like the gear chunker, this has both a byte-at-a-time reference scanner
and a NumPy-vectorized one.  The fingerprint is GF(2)-linear, so the
window value at any position decomposes into per-distance contributions
``W_d[b] = b * x**(8 d) mod P`` combined with XOR — exactly the shape
:func:`repro.chunking._vector.windowed_values` evaluates in bulk.  Both
scanners emit byte-identical :class:`ChunkSpan` lists (cross-validated
in ``tests/chunking/test_vectorized_equiv.py``).
"""

from __future__ import annotations

from typing import List, Optional

from . import _vector
from ._vector import HAVE_NUMPY, scan_first_match
from .base import ChunkSpan

__all__ = ["RabinChunker"]

#: A fixed irreducible polynomial over GF(2) of degree 53.
_POLY = 0x3DA3358B4DC173
_POLY_DEGREE = 53
_WINDOW_SIZE = 48


def _poly_mod(value: int) -> int:
    while value.bit_length() > _POLY_DEGREE:
        value ^= _POLY << (value.bit_length() - _POLY_DEGREE - 1)
    return value


def _build_tables():
    # mod_table[b]: contribution of byte b shifted past the degree.
    mod_table = []
    for b in range(256):
        mod_table.append(_poly_mod(b << _POLY_DEGREE))
    # out_table[b]: contribution of byte b once it leaves a WINDOW_SIZE
    # window, i.e. b * x^(8 * WINDOW_SIZE) mod P (the append of the new
    # byte has already shifted the window by one more position).
    out_table = []
    for b in range(256):
        value = b
        for _ in range(_WINDOW_SIZE):
            value = _append_byte_raw(value, 0, mod_table)
        out_table.append(value)
    return mod_table, out_table


def _append_byte_raw(fp: int, byte: int, mod_table) -> int:
    top = (fp >> (_POLY_DEGREE - 8)) & 0xFF
    return ((fp << 8) & ((1 << _POLY_DEGREE) - 1)) ^ byte ^ mod_table[top]


_MOD_TABLE, _OUT_TABLE = _build_tables()

# Per-distance window tables for the vectorized scan: row d holds
# b * x^(8 d) mod P, the contribution of the byte d positions behind
# the scan head.  XORing one gather per row reproduces the rolling
# fingerprint at every position at once.
_WINDOW_TABLES = None


def _window_tables():
    global _WINDOW_TABLES
    if _WINDOW_TABLES is None:
        np = _vector.np
        rows = []
        row = list(range(256))
        for _ in range(_WINDOW_SIZE):
            rows.append(row)
            row = [_append_byte_raw(v, 0, _MOD_TABLE) for v in row]
        _WINDOW_TABLES = np.array(rows, dtype=np.uint64)
    return _WINDOW_TABLES


class RabinChunker:
    """Content-defined chunker using a Rabin rolling fingerprint.

    ``vectorized`` selects the boundary scanner exactly as in
    :class:`~repro.chunking.GearChunker`: ``None`` auto-detects NumPy,
    ``True`` requires it, ``False`` forces the reference scanner.
    """

    def __init__(
        self,
        avg_size: int = 32 * 1024,
        min_size: int | None = None,
        max_size: int | None = None,
        vectorized: Optional[bool] = None,
    ):
        if avg_size < 256:
            raise ValueError(f"avg_size too small: {avg_size}")
        if avg_size & (avg_size - 1):
            raise ValueError(f"avg_size must be a power of two, got {avg_size}")
        self.avg_size = avg_size
        self.min_size = min_size if min_size is not None else avg_size // 4
        self.max_size = max_size if max_size is not None else avg_size * 4
        if not (0 < self.min_size <= avg_size <= self.max_size):
            raise ValueError(
                f"need 0 < min ({self.min_size}) <= avg ({avg_size}) "
                f"<= max ({self.max_size})"
            )
        self._mask = avg_size - 1
        #: Boundary pattern: fp & mask == magic.
        self._magic = self._mask & 0x78F5C2A1
        if vectorized is None:
            vectorized = HAVE_NUMPY
        elif vectorized and not HAVE_NUMPY:
            raise RuntimeError(
                "vectorized chunking requires NumPy (pip install repro[fast])"
            )
        self.vectorized = vectorized
        self._tables = _window_tables() if vectorized else None

    def _find_boundary(self, data: bytes, start: int) -> int:
        """Reference scanner: one interpreted step per byte."""
        n = len(data)
        end = min(start + self.max_size, n)
        if n - start <= self.min_size:
            return n
        fp = 0
        window = bytearray(_WINDOW_SIZE)
        wpos = 0
        i = start + max(0, self.min_size - _WINDOW_SIZE)
        # Warm the window up to min_size, then start testing boundaries.
        while i < end:
            byte = data[i]
            fp = _append_byte_raw(fp, byte, _MOD_TABLE) ^ _OUT_TABLE[window[wpos]]
            window[wpos] = byte
            wpos = (wpos + 1) % _WINDOW_SIZE
            i += 1
            if i - start >= self.min_size and (fp & self._mask) == self._magic:
                return i
        return end

    def _find_boundary_vectorized(self, view: memoryview, start: int) -> int:
        """NumPy scan; emits the same cut points as :meth:`_find_boundary`.

        The reference scanner starts rolling ``WINDOW_SIZE`` bytes
        before ``min_size`` (the warm-up) and first tests the boundary
        pattern once ``min_size`` bytes are consumed; ``clamp`` marks
        the warm-up start so early positions see the same partially
        filled window.
        """
        n = len(view)
        end = min(start + self.max_size, n)
        if n - start <= self.min_size:
            return n
        clamp = start + max(0, self.min_size - _WINDOW_SIZE)
        first_tested = start + self.min_size - 1
        hit = scan_first_match(
            view, first_tested, end, clamp, self._tables, self._mask, self._magic,
            xor=True,
        )
        return hit + 1 if hit >= 0 else end

    def chunk(self, data) -> List[ChunkSpan]:
        """Split ``data`` at Rabin-fingerprint boundaries (zero-copy spans)."""
        view = memoryview(data)
        find = self._find_boundary_vectorized if self.vectorized else self._find_boundary
        spans = []
        pos = 0
        while pos < len(view):
            cut = find(view, pos)
            spans.append(ChunkSpan(offset=pos, length=cut - pos, data=view[pos:cut]))
            pos = cut
        return spans
