"""Rabin-fingerprint content-defined chunking.

The classic CDC algorithm (used by LBFS and most backup dedup systems,
and the one the paper's CDC citations build on): a degree-63 polynomial
rolling hash over a sliding window; a boundary is declared when the
fingerprint's low bits hit a fixed pattern.  Unlike the gear hash
(:class:`~repro.chunking.GearChunker`), the window contribution of the
byte leaving the window is subtracted exactly, so the hash is a true
function of the last ``window_size`` bytes.

Slower than gear (two table lookups per byte) but the reference
algorithm — kept alongside it for the chunking ablation.
"""

from __future__ import annotations

from typing import List

from .base import ChunkSpan

__all__ = ["RabinChunker"]

#: A fixed irreducible polynomial over GF(2) of degree 53.
_POLY = 0x3DA3358B4DC173
_POLY_DEGREE = 53
_WINDOW_SIZE = 48


def _poly_mod(value: int) -> int:
    while value.bit_length() > _POLY_DEGREE:
        value ^= _POLY << (value.bit_length() - _POLY_DEGREE - 1)
    return value


def _build_tables():
    # mod_table[b]: contribution of byte b shifted past the degree.
    mod_table = []
    for b in range(256):
        mod_table.append(_poly_mod(b << _POLY_DEGREE))
    # out_table[b]: contribution of byte b once it leaves a WINDOW_SIZE
    # window, i.e. b * x^(8 * WINDOW_SIZE) mod P (the append of the new
    # byte has already shifted the window by one more position).
    out_table = []
    for b in range(256):
        value = b
        for _ in range(_WINDOW_SIZE):
            value = _append_byte_raw(value, 0, mod_table)
        out_table.append(value)
    return mod_table, out_table


def _append_byte_raw(fp: int, byte: int, mod_table) -> int:
    top = (fp >> (_POLY_DEGREE - 8)) & 0xFF
    return ((fp << 8) & ((1 << _POLY_DEGREE) - 1)) ^ byte ^ mod_table[top]


_MOD_TABLE, _OUT_TABLE = _build_tables()


class RabinChunker:
    """Content-defined chunker using a Rabin rolling fingerprint."""

    def __init__(
        self,
        avg_size: int = 32 * 1024,
        min_size: int | None = None,
        max_size: int | None = None,
    ):
        if avg_size < 256:
            raise ValueError(f"avg_size too small: {avg_size}")
        if avg_size & (avg_size - 1):
            raise ValueError(f"avg_size must be a power of two, got {avg_size}")
        self.avg_size = avg_size
        self.min_size = min_size if min_size is not None else avg_size // 4
        self.max_size = max_size if max_size is not None else avg_size * 4
        if not (0 < self.min_size <= avg_size <= self.max_size):
            raise ValueError(
                f"need 0 < min ({self.min_size}) <= avg ({avg_size}) "
                f"<= max ({self.max_size})"
            )
        self._mask = avg_size - 1
        #: Boundary pattern: fp & mask == magic.
        self._magic = self._mask & 0x78F5C2A1

    def _find_boundary(self, data: bytes, start: int) -> int:
        n = len(data)
        end = min(start + self.max_size, n)
        if n - start <= self.min_size:
            return n
        fp = 0
        window = bytearray(_WINDOW_SIZE)
        wpos = 0
        i = start + max(0, self.min_size - _WINDOW_SIZE)
        # Warm the window up to min_size, then start testing boundaries.
        while i < end:
            byte = data[i]
            fp = _append_byte_raw(fp, byte, _MOD_TABLE) ^ _OUT_TABLE[window[wpos]]
            window[wpos] = byte
            wpos = (wpos + 1) % _WINDOW_SIZE
            i += 1
            if i - start >= self.min_size and (fp & self._mask) == self._magic:
                return i
        return end

    def chunk(self, data) -> List[ChunkSpan]:
        """Split ``data`` at Rabin-fingerprint boundaries (zero-copy spans)."""
        view = memoryview(data)
        spans = []
        pos = 0
        while pos < len(view):
            cut = self._find_boundary(view, pos)
            spans.append(ChunkSpan(offset=pos, length=cut - pos, data=view[pos:cut]))
            pos = cut
        return spans
