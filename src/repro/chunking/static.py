"""Fixed-size (static) chunking.

The paper deliberately uses static chunking (§5, "Chunking algorithm"):
it is cheap on CPU, and on Ceph the CPU is already the bottleneck for
small random writes, so a content-defined algorithm would hurt overall
throughput.  The evaluation uses 32 KiB chunks (16/32/64 KiB in
Table 2).
"""

from __future__ import annotations

from typing import List

from .base import ChunkSpan

__all__ = ["StaticChunker"]


class StaticChunker:
    """Split payloads into aligned, fixed-size chunks.

    Chunk boundaries are aligned to multiples of ``chunk_size`` from the
    start of the object, so the same offset always maps to the same
    chunk index — the property the chunk map (offset range -> chunk)
    relies on for partial writes.
    """

    def __init__(self, chunk_size: int):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size

    def chunk(self, data) -> List[ChunkSpan]:
        """Split ``data``; the final chunk may be short.

        Spans hold zero-copy :class:`memoryview` slices of ``data``.
        """
        view = memoryview(data)
        spans = []
        for offset in range(0, len(view), self.chunk_size):
            piece = view[offset : offset + self.chunk_size]
            spans.append(ChunkSpan(offset=offset, length=len(piece), data=piece))
        return spans

    def index_of(self, offset: int) -> int:
        """Chunk index containing byte ``offset``."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        return offset // self.chunk_size

    def aligned_range(self, offset: int, length: int) -> range:
        """Chunk indices overlapping ``[offset, offset + length)``."""
        if length <= 0:
            return range(0)
        first = self.index_of(offset)
        last = self.index_of(offset + length - 1)
        return range(first, last + 1)
