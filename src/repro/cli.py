"""Command-line interface: quick demos of the deduplicated store.

Usage::

    python -m repro info            # package inventory and versions
    python -m repro demo            # write/dedup/read roundtrip + savings
    python -m repro status          # demo cluster + operational snapshot
    python -m repro scrub           # demo cluster + integrity scrub
    python -m repro faults          # seeded fault-injection run + verdict
    python -m repro rebalance       # online expand/decommission + verdict
    python -m repro perf --fast     # hot-path wall-clock benchmark
    python -m repro obs trace       # traced workload -> span JSONL + checks
    python -m repro obs report      # per-stage span rollup + coverage
    python -m repro lint            # AST invariant checks on the source tree

Full experiments live in ``benchmarks/`` (run with
``pytest benchmarks/ --benchmark-only``); the CLI is a zero-setup tour.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]

KiB = 1024


def _build_demo_storage(seed: int = 0):
    from .cluster import RadosCluster
    from .core import DedupConfig, DedupedStorage

    cluster = RadosCluster(num_hosts=4, osds_per_host=4, pg_num=64)
    storage = DedupedStorage(
        cluster, DedupConfig(chunk_size=32 * KiB), start_engine=False
    )
    from .workloads import ContentGenerator

    gen = ContentGenerator(seed=seed, dedupe_ratio=0.75)
    for i in range(24):
        storage.write_sync(f"demo-{i}", gen.block(64 * KiB))
    storage.drain()
    return storage


def _cmd_info(_args) -> int:
    import repro

    print("repro — reproduction of 'Design of Global Data Deduplication for")
    print("a Scale-out Distributed Storage System' (ICDCS 2018)")
    print(f"version: {getattr(repro, '__version__', 'dev')}")
    print()
    print("packages: sim, cluster, chunking, fingerprint, compression,")
    print("          core (the paper's contribution), workloads, metrics,")
    print("          bench, analysis (the repro-lint invariant checker)")
    print("docs:     README.md, DESIGN.md, EXPERIMENTS.md")
    print("tests:    pytest tests/")
    print("figures:  pytest benchmarks/ --benchmark-only")
    return 0


def _cmd_demo(args) -> int:
    storage = _build_demo_storage(seed=args.seed)
    report = storage.space_report()
    print(f"wrote 24 x 64KiB objects (75% duplicate content), drained dedup")
    print(f"logical data:       {report.logical_bytes / 1024:.0f} KiB")
    print(f"unique chunk data:  {report.chunk_data_bytes / 1024:.0f} KiB"
          f" in {report.chunk_objects} chunk objects")
    print(f"ideal dedup ratio:  {100 * report.ideal_dedup_ratio:.1f}%")
    print(f"actual dedup ratio: {100 * report.actual_dedup_ratio:.1f}%"
          f" (chunk maps at 150B/entry, refs at 64B)")
    return 0


def _cmd_status(args) -> int:
    storage = _build_demo_storage(seed=args.seed)
    for line in storage.status().summary_lines():
        print(line)
    return 0


def _cmd_scrub(args) -> int:
    from .core import scrub_sync

    storage = _build_demo_storage(seed=args.seed)
    report = scrub_sync(storage.tier)
    print(f"chunks checked:      {report.chunks_checked}")
    print(f"corrupt chunks:      {len(report.corrupt_chunks)}")
    print(f"dangling map entries:{len(report.dangling_map_entries):2d}")
    print(f"stale references:    {len(report.stale_references)}")
    print(f"verdict:             {'CLEAN' if report.clean else 'DAMAGED'}")
    return 0 if report.clean else 1


def _cmd_faults(args) -> int:
    from .faults import FaultPlan, run_faulted_workload
    from .metrics import fault_report

    if args.horizon <= 0:
        print(f"error: --horizon must be positive, got {args.horizon}",
              file=sys.stderr)
        return 2
    num_osds = 8  # the scenario's fixed topology: 4 hosts x 2 OSDs
    if args.kill_osd is not None and not 0 <= args.kill_osd < num_osds:
        print(f"error: --kill-osd must be an OSD id in 0..{num_osds - 1},"
              f" got {args.kill_osd}", file=sys.stderr)
        return 2
    plan = None
    if args.kill_osd is not None:
        # Targeted mode: kill one OSD mid-workload (mid-flush — the
        # background engine runs throughout) and restart it later.
        plan = FaultPlan.single_osd_kill(
            args.kill_osd,
            at=args.horizon * 0.3,
            restart_after=args.horizon * 0.25,
            seed=args.seed,
        )
    result = run_faulted_workload(
        seed=args.seed,
        plan=plan,
        num_objects=args.objects,
        horizon=args.horizon,
    )
    print(f"fault plan (seed {args.seed}, {len(result.plan)} events):")
    for line in result.plan.describe() or ["  (empty plan)"]:
        print(f"  {line}")
    print()
    for line in fault_report(result.storage).summary_lines():
        print(line)
    print()
    scrub = result.scrub
    print(f"objects written    {result.objects_written}"
          f" ({len(result.corrupted_objects)} lost/corrupted)")
    print(f"scrub              {scrub.chunks_checked} chunks checked,"
          f" {len(scrub.corrupt_chunks)} corrupt,"
          f" {len(scrub.dangling_map_entries)} dangling entries,"
          f" {len(scrub.stale_references)} stale refs,"
          f" {len(scrub.unreferenced_chunks)} unreferenced")
    print(f"verdict:           {'CLEAN' if result.ok else 'DAMAGED'}")
    return 0 if result.ok else 1


def _cmd_rebalance(args) -> int:
    from .faults import run_elastic_workload

    if args.horizon <= 0:
        print(f"error: --horizon must be positive, got {args.horizon}",
              file=sys.stderr)
        return 2
    result = run_elastic_workload(
        seed=args.seed,
        num_objects=args.objects,
        horizon=args.horizon,
        rate_limit_bps=args.rate * KiB * KiB if args.rate else None,
        with_faults=not args.no_faults,
    )
    if result.plan is not None:
        print(f"fault plan (seed {args.seed}, {len(result.plan)} events):")
        for line in result.plan.describe() or ["  (empty plan)"]:
            print(f"  {line}")
        print()
    print("topology changes:")
    for diff in result.expand_diffs:
        print(f"  expand:       {diff.pgs_remapped} PGs remapped"
              f" (epoch {diff.epoch})")
    if result.decommission_diff is not None:
        print(f"  decommission: osd {result.decommissioned_osd},"
              f" {result.decommission_diff.pgs_remapped} PGs remapped"
              f" (epoch {result.decommission_diff.epoch})")
    print()
    print("rebalance:")
    for line in result.rebalance_stats.summary_lines():
        print(f"  {line}")
    print()
    scrub = result.scrub
    print(f"objects written    {result.objects_written}"
          f" ({len(result.corrupted_objects)} lost/corrupted)")
    print(f"dedup scrub        {scrub.chunks_checked} chunks checked,"
          f" {len(scrub.corrupt_chunks)} corrupt,"
          f" {len(scrub.dangling_map_entries)} dangling entries,"
          f" {len(scrub.stale_references)} stale refs")
    for report, name in zip(result.replica_reports, ("metadata", "chunk")):
        print(f"{name + ' pool scrub':<18} "
              f"{'CLEAN' if report.clean else 'DAMAGED'}")
    print(f"placement          {len(result.placement_violations)} violation(s)")
    for line in result.placement_violations[:10]:
        print(f"  {line}")
    print(f"trace              {len(result.trace_problems)} problem(s)")
    for line in result.trace_problems[:10]:
        print(f"  {line}")
    print(f"decommission       "
          f"{'finalized' if result.finalized else 'NOT finalized'}")
    print(f"verdict:           {'CLEAN' if result.ok else 'DAMAGED'}")
    return 0 if result.ok else 1


def _cmd_perf(args) -> int:
    import json

    from .perf import harness

    report = harness.run_perf(
        fast=True if args.fast else None,
        seed=args.seed,
        workers=args.workers,
        trace=args.trace,
    )
    if args.profile:
        # Profile a separate single-repeat pass: cProfile's per-call
        # overhead would skew the gated numbers (and the machine-score
        # calibration) if it wrapped the measured run above.
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        harness.run_perf(
            fast=True if args.fast else None,
            seed=args.seed,
            repeats=1,
            workers=args.workers,
        )
        profiler.disable()
        from .perf.profile import profile_to_dict, write_profile

        prof = profile_to_dict(profiler, top=args.profile_top)
        write_profile(prof, args.profile)
        print(f"profile written to {args.profile} (top {args.profile_top} by cumtime)")
    for line in harness.render_report(report):
        print(line)
    if args.out:
        harness.write_report(report, args.out)
        print(f"report written to {args.out}")
    if not report["summary"]["all_verified"]:
        print("FAIL: batched and unbatched modes disagree", file=sys.stderr)
        return 1
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        failures = harness.compare_to_baseline(
            report, baseline, max_regression=args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"baseline gate passed ({args.baseline})")
    return 0


def _cmd_obs(args) -> int:
    from .obs import cli as obs_cli

    handler = {
        "trace": obs_cli.cmd_trace,
        "report": obs_cli.cmd_report,
        "top-spans": obs_cli.cmd_top_spans,
    }[args.obs_command]
    return handler(args)


def _cmd_lint(args) -> int:
    from pathlib import Path

    from .analysis import (
        Baseline,
        Linter,
        default_rules,
        format_human,
        format_json,
        rules_by_id,
    )

    if args.paths:
        paths = args.paths
    else:
        # Default target: the installed/source package tree itself.
        paths = [str(Path(__file__).resolve().parent)]
    rules = default_rules()
    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",") if r.strip()}
        known = rules_by_id()
        unknown = sorted(wanted - set(known))
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        rules = [known[rid] for rid in sorted(wanted)]
    if args.changed_only is not None:
        from .analysis.changed import GitUnavailable, changed_python_files
        from .analysis.engine import Rule

        try:
            changed = changed_python_files(args.changed_only)
        except GitUnavailable as exc:
            print(f"error: --changed-only: {exc}", file=sys.stderr)
            return 2
        roots = [Path(p).resolve() for p in paths]
        paths = [
            str(f)
            for f in changed
            if any(root == f or root in f.parents for root in roots)
        ]
        # Cross-module rules (those overriding finalize) reason about the
        # whole tree; running them on a file subset would both miss real
        # findings and invent spurious ones, so they sit this mode out.
        cross = sorted(
            r.id for r in rules if type(r).finalize is not Rule.finalize
        )
        if cross:
            print(
                f"--changed-only: skipping cross-module rule(s)"
                f" {', '.join(cross)} (they need the full tree)"
            )
            rules = [r for r in rules if type(r).finalize is Rule.finalize]
        print(
            f"--changed-only: {len(paths)} changed file(s)"
            f" vs {args.changed_only} under the lint paths"
        )
    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except FileNotFoundError:
            if not args.write_baseline:
                print(f"error: baseline file not found: {args.baseline}",
                      file=sys.stderr)
                return 2
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
    linter = Linter(rules, baseline=baseline)
    result = linter.run_paths(paths)
    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline PATH",
                  file=sys.stderr)
            return 2
        Baseline.from_findings(result.findings + result.baselined).save(
            args.baseline
        )
        print(
            f"baseline written to {args.baseline}"
            f" ({len(result.findings) + len(result.baselined)} finding(s))"
        )
        return 0
    if args.format == "json":
        output = format_json(result)
        sys.stdout.write(output)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(output)
    else:
        for line in format_human(result):
            print(line)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(format_json(result))
    return 0 if result.ok else 1


def _cmd_sanitize(args) -> int:
    import json

    from .analysis import LockSanitizer
    from .faults import run_elastic_workload, run_faulted_workload

    scenarios = {}
    clean = True
    runners = (
        ("faults", run_faulted_workload),
        ("elasticity", run_elastic_workload),
    )
    for name, runner in runners:
        sanitizer = LockSanitizer()
        result = runner(seed=args.seed, sanitizer=sanitizer)
        report = sanitizer.report()
        ok = bool(result.ok)
        scenarios[name] = {"scenario_ok": ok, "sanitizer": report}
        clean = clean and ok and report["clean"]
        verdict = "clean" if (ok and report["clean"]) else "VIOLATIONS"
        print(
            f"{name:<10} scenario {'ok' if ok else 'FAILED'};"
            f" {report['acquires']} acquires by {report['tasks']} task(s)"
            f" over {len(report['lock_classes'])} lock class(es)"
            f" — {verdict}"
        )
        for violation in report["violations"]:
            print(f"  violation: {json.dumps(violation, sort_keys=True)}")
    doc = {
        "version": 1,
        "seed": args.seed,
        "clean": clean,
        "scenarios": scenarios,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.out}")
    if args.format == "json":
        print(json.dumps(doc, indent=2, sort_keys=True))
    print(f"verdict: {'CLEAN' if clean else 'LOCK VIOLATIONS'}")
    return 0 if clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="package inventory")
    sub.add_parser("demo", help="dedup roundtrip + space savings")
    sub.add_parser("status", help="operational snapshot of a demo cluster")
    sub.add_parser("scrub", help="integrity scrub of a demo cluster")
    faults = sub.add_parser(
        "faults", help="faulted workload: inject, heal, recover, verify"
    )
    faults.add_argument(
        "--kill-osd",
        type=int,
        default=None,
        metavar="ID",
        help="targeted plan: crash this OSD mid-workload (default: "
        "generate a schedule from --seed)",
    )
    faults.add_argument(
        "--objects", type=int, default=24, help="objects to write (default 24)"
    )
    faults.add_argument(
        "--horizon",
        type=float,
        default=4.0,
        help="fault-schedule length in simulated seconds (default 4.0)",
    )
    rebalance = sub.add_parser(
        "rebalance",
        help="online elasticity: expand + decommission under load, rebalance,"
        " verify",
    )
    rebalance.add_argument(
        "--objects", type=int, default=32, help="objects to write (default 32)"
    )
    rebalance.add_argument(
        "--horizon",
        type=float,
        default=6.0,
        help="scenario length in simulated seconds (default 6.0)",
    )
    rebalance.add_argument(
        "--rate",
        type=float,
        default=64.0,
        metavar="MIB_PER_S",
        help="background rebalance rate limit in MiB/s while the workload"
        " runs (default 64; 0 = unthrottled)",
    )
    rebalance.add_argument(
        "--no-faults",
        action="store_true",
        help="run the elasticity scenario without the seeded fault plan",
    )
    perf = sub.add_parser(
        "perf",
        help="wall-clock hot-path benchmark: batched vs per-op, verified",
    )
    perf.add_argument(
        "--fast",
        action="store_true",
        help="small workloads (also via REPRO_BENCH_FAST=1)",
    )
    perf.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fingerprint pool threads for the dedup pipeline "
        "(default: os.cpu_count(); 1 = serial inline hashing)",
    )
    perf.add_argument(
        "--trace",
        action="store_true",
        help="run the simulated workloads with op tracing enabled and "
        "attach per-stage span rollups to the report",
    )
    perf.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON report here (e.g. BENCH_perf.json)",
    )
    perf.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="gate against a committed baseline JSON; non-zero exit on "
        "regression",
    )
    perf.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed calibrated ops/s regression vs baseline (default 0.25)",
    )
    perf.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="run under cProfile and write the top functions by "
        "cumulative time as JSON here",
    )
    perf.add_argument(
        "--profile-top",
        type=int,
        default=40,
        metavar="N",
        help="how many functions the --profile artifact keeps (default 40)",
    )
    obs = sub.add_parser(
        "obs",
        help="observability: trace a seeded workload, rollups, top spans",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_trace = obs_sub.add_parser(
        "trace",
        help="run a traced seeded workload, emit span JSONL, verify integrity",
    )
    obs_trace.add_argument(
        "--objects", type=int, default=24, help="objects to write (default 24)"
    )
    obs_trace.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the trace JSONL here (default: stdout)",
    )
    obs_trace.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="also write a Prometheus-text metrics snapshot here",
    )
    obs_trace.add_argument(
        "--coverage",
        type=float,
        default=0.95,
        help="required fraction of each root op covered by child spans "
        "(default 0.95)",
    )
    obs_report = obs_sub.add_parser(
        "report", help="per-stage span rollup + root coverage"
    )
    obs_top = obs_sub.add_parser("top-spans", help="slowest individual spans")
    for p in (obs_report, obs_top):
        p.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="analyse this JSONL trace dump instead of running the "
            "seeded workload",
        )
        p.add_argument(
            "--objects",
            type=int,
            default=24,
            help="objects to write when running the workload (default 24)",
        )
    obs_top.add_argument(
        "--limit", "-n", type=int, default=10, help="spans to show (default 10)"
    )
    obs_top.add_argument(
        "--stage",
        default=None,
        metavar="PREFIX",
        help="only consider stages with this prefix (e.g. rados.)",
    )
    lint = sub.add_parser(
        "lint",
        help="AST-based invariant checks (determinism, refcounts, fault"
        " scopes, layering)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format",
        choices=["human", "json"],
        default="human",
        help="output format (default human)",
    )
    lint.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the JSON report here (for CI artifacts)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="JSON baseline of grandfathered findings",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into --baseline and exit 0",
    )
    lint.add_argument(
        "--changed-only",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="lint only Python files changed vs REF (default HEAD);"
        " cross-module rules are skipped",
    )
    sanitize = sub.add_parser(
        "sanitize",
        help="runtime lock sanitizer: run the fault + elasticity scenarios"
        " under lock-order instrumentation and report violations",
    )
    sanitize.add_argument(
        "--format",
        choices=["human", "json"],
        default="human",
        help="output format (default human)",
    )
    sanitize.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the JSON report here (for CI artifacts)",
    )
    args = parser.parse_args(argv)
    handler = {
        "info": _cmd_info,
        "demo": _cmd_demo,
        "status": _cmd_status,
        "scrub": _cmd_scrub,
        "faults": _cmd_faults,
        "rebalance": _cmd_rebalance,
        "perf": _cmd_perf,
        "obs": _cmd_obs,
        "lint": _cmd_lint,
        "sanitize": _cmd_sanitize,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
