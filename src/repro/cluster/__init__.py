"""Simulated scale-out distributed storage substrate (RADOS-like).

The decentralised, shared-nothing storage system of the paper's §2.1:
CRUSH-style hash placement over hosts and OSDs, replicated and
erasure-coded pools, per-object transactions with xattr/omap metadata,
failure handling, and recovery — all running on modelled hardware under
a discrete-event clock.
"""

from .clustermap import ClusterMap, OsdInfo
from .crush import CrushMap, stable_hash64, straw2_select
from .ec import GF256, ReedSolomon
from .hardware import (
    Cpu,
    CpuSpec,
    Disk,
    DiskSpec,
    HardwareProfile,
    Nic,
    NicSpec,
)
from .objectstore import (
    NoSuchObject,
    ObjectExists,
    ObjectKey,
    ObjectStore,
    StoredObject,
    Transaction,
    PER_OBJECT_OVERHEAD,
)
from .osd import Node, OSD, OsdDownError, OsdError, OsdFullError
from .pool import ErasureCoded, Pool, Replicated
from .rados import Client, NotEnoughReplicas, RadosCluster
from .rebalance import (
    PgRemap,
    RebalanceStats,
    Rebalancer,
    RemapDiff,
    compute_remap,
    placement_report,
    rebalance_sync,
)
from .recovery import RecoveryStats, plan_recovery, recover, recover_sync
from .scrub import (
    ReplicaScrubReport,
    repair_pool,
    repair_pool_sync,
    scrub_pool,
    scrub_pool_sync,
)

__all__ = [
    "ClusterMap",
    "OsdInfo",
    "CrushMap",
    "stable_hash64",
    "straw2_select",
    "GF256",
    "ReedSolomon",
    "HardwareProfile",
    "DiskSpec",
    "NicSpec",
    "CpuSpec",
    "Disk",
    "Nic",
    "Cpu",
    "ObjectKey",
    "StoredObject",
    "Transaction",
    "ObjectStore",
    "NoSuchObject",
    "ObjectExists",
    "PER_OBJECT_OVERHEAD",
    "Node",
    "OSD",
    "OsdError",
    "OsdDownError",
    "OsdFullError",
    "Pool",
    "Replicated",
    "ErasureCoded",
    "Client",
    "RadosCluster",
    "NotEnoughReplicas",
    "PgRemap",
    "RemapDiff",
    "Rebalancer",
    "RebalanceStats",
    "compute_remap",
    "placement_report",
    "rebalance_sync",
    "RecoveryStats",
    "plan_recovery",
    "recover",
    "recover_sync",
    "ReplicaScrubReport",
    "scrub_pool",
    "scrub_pool_sync",
    "repair_pool",
    "repair_pool_sync",
]
