"""Cluster membership map (the analogue of Ceph's OSDMap).

Tracks every OSD's host, weight, and liveness.  Placement (CRUSH) reads
this map; failure injection and recovery mutate it.  Every mutation bumps
``epoch`` so cached placements can be invalidated.

An OSD has two independent flags, mirroring Ceph:

* ``up`` — the daemon is running and can serve I/O.
* ``in_cluster`` — the OSD participates in placement.  A down OSD stays
  ``in`` (degraded PGs) until it is marked out, which triggers remapping
  and recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["OsdInfo", "ClusterMap"]


@dataclass
class OsdInfo:
    """Static description plus liveness of one OSD."""

    osd_id: int
    host: str
    weight: float = 1.0
    up: bool = True
    in_cluster: bool = True
    rack: str = "default"
    #: Administratively out (being drained for removal), as opposed to
    #: auto-out after a failure.  A daemon restart must NOT bring a
    #: decommissioned OSD back into placement.
    decommissioned: bool = False

    @property
    def active(self) -> bool:
        """Whether the OSD both serves I/O and participates in placement."""
        return self.up and self.in_cluster


@dataclass
class ClusterMap:
    """The set of OSDs, organised by host, with an epoch counter."""

    osds: Dict[int, OsdInfo] = field(default_factory=dict)
    epoch: int = 0
    _next_id: int = 0

    def add_osd(self, host: str, weight: float = 1.0, rack: str = "default") -> int:
        """Register a new OSD on ``host`` (in ``rack``); returns its id."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        osd_id = self._next_id
        self._next_id += 1
        self.osds[osd_id] = OsdInfo(
            osd_id=osd_id, host=host, weight=weight, rack=rack
        )
        self.epoch += 1
        return osd_id

    def rack_of_host(self, host: str) -> str:
        """The rack a host lives in."""
        for info in self.osds.values():
            if info.host == host:
                return info.rack
        raise KeyError(f"unknown host {host!r}")

    def _get(self, osd_id: int) -> OsdInfo:
        try:
            return self.osds[osd_id]
        except KeyError:
            raise KeyError(f"unknown osd id {osd_id}") from None

    def mark_down(self, osd_id: int) -> None:
        """The OSD daemon stopped; data it holds is inaccessible."""
        self._get(osd_id).up = False
        self.epoch += 1

    def mark_up(self, osd_id: int) -> None:
        """The OSD daemon is serving again."""
        self._get(osd_id).up = True
        self.epoch += 1

    def mark_out(self, osd_id: int) -> None:
        """Remove the OSD from placement (triggers remapping)."""
        self._get(osd_id).in_cluster = False
        self.epoch += 1

    def mark_in(self, osd_id: int) -> None:
        """Return the OSD to placement (cancels a pending decommission)."""
        info = self._get(osd_id)
        info.in_cluster = True
        info.decommissioned = False
        self.epoch += 1

    def remove_osd(self, osd_id: int) -> None:
        """Forget a decommissioned OSD entirely.

        Only valid once the OSD is out of placement and drained; the
        cluster facade (:meth:`RadosCluster.finalize_decommission`)
        enforces that.
        """
        info = self._get(osd_id)
        if info.in_cluster:
            raise ValueError(f"osd.{osd_id} is still in placement; mark it out first")
        del self.osds[osd_id]
        self.epoch += 1

    def hosts(self) -> Dict[str, List[int]]:
        """Mapping host name -> ids of OSDs that are ``in`` placement."""
        by_host: Dict[str, List[int]] = {}
        for info in self.osds.values():
            if info.in_cluster and info.weight > 0:
                by_host.setdefault(info.host, []).append(info.osd_id)
        return by_host

    def active_osds(self) -> List[int]:
        """Ids of OSDs that are both up and in."""
        return [i for i, info in self.osds.items() if info.active]

    def in_osds(self) -> List[int]:
        """Ids of OSDs that are in placement (up or not)."""
        return [i for i, info in self.osds.items() if info.in_cluster]
