"""CRUSH-style pseudo-random placement.

This is the "hash algorithm" of Figure 2-(b) in the paper: a
decentralised, deterministic function from an identifier to a set of
OSDs, computed independently by every client without a metadata server.
It is also one half of the paper's *double hashing* idea — the dedup tier
feeds content fingerprints into this same function to place chunk
objects, which is what lets the design drop the fingerprint index.

We implement straw2 selection (the algorithm in modern Ceph) over a
two-level hierarchy (hosts containing OSDs), with host-level failure
domains: replicas/shards of a placement group land on distinct hosts
whenever enough hosts exist.

Key straw2 property (and the reason Ceph adopted it): when one device's
weight changes, only mappings involving that device can change, so data
movement on reweight/out is proportional to the weight change.
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Dict, List, Sequence, Tuple

from .clustermap import ClusterMap

__all__ = ["stable_hash64", "straw2_select", "CrushMap"]

_U64_MAX = 2**64 - 1


def stable_hash64(*parts: object) -> int:
    """A stable 64-bit hash of the parts, identical across processes.

    Python's builtin ``hash`` is salted per-process, so placement would
    not be reproducible with it; we use BLAKE2b instead.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        if isinstance(part, bytes):
            h.update(b"b")
            h.update(part)
        else:
            h.update(b"s")
            h.update(str(part).encode("utf-8"))
        h.update(b"\x00")
    return struct.unpack(">Q", h.digest())[0]


def _draw(key: int, item: str, weight: float) -> float:
    """The straw2 draw: ``ln(u) / w`` with ``u`` uniform in (0, 1]."""
    u = (stable_hash64(key, item) + 1) / (_U64_MAX + 2)  # in (0, 1)
    return math.log(u) / weight


def straw2_select(key: int, items: Sequence[Tuple[str, float]], n: int) -> List[str]:
    """Select ``n`` distinct items, weight-proportionally, deterministically.

    ``items`` is a sequence of ``(name, weight)``.  Items with larger
    draws win; the draw for an item depends only on ``(key, item,
    weight)``, giving straw2's minimal-movement property.
    """
    if n <= 0:
        return []
    scored = sorted(
        ((_draw(key, name, weight), name) for name, weight in items if weight > 0),
        reverse=True,
    )
    return [name for _score, name in scored[:n]]


class CrushMap:
    """Placement over a host/OSD hierarchy derived from a ClusterMap."""

    def __init__(self, cluster_map: ClusterMap):
        self.cluster_map = cluster_map
        self._cache_epoch = -1
        self._cache: Dict[Tuple[int, int], List[int]] = {}

    def _invalidate_if_stale(self) -> None:
        if self._cache_epoch != self.cluster_map.epoch:
            self._cache.clear()
            self._cache_epoch = self.cluster_map.epoch

    def select(self, key: int, n: int, failure_domain: str = "host") -> List[int]:
        """Map ``key`` to ``n`` OSD ids with the given failure domain.

        ``failure_domain``:

        * ``"host"`` (default) — replicas/shards land on distinct hosts;
        * ``"rack"`` — distinct racks (one rack is chosen per slot, then
          one host inside it, then one OSD);
        * ``"osd"`` — only distinct devices, no topology constraint.

        Domains are chosen first (straw2 over summed OSD weights), then
        narrowed level by level.  If the cluster has fewer domains than
        ``n``, the remaining slots are filled by straw2 over all
        not-yet-chosen OSDs, relaxing the constraint rather than failing.
        """
        if failure_domain not in ("host", "rack", "osd"):
            raise ValueError(
                f"failure_domain must be 'host', 'rack' or 'osd', "
                f"got {failure_domain!r}"
            )
        self._invalidate_if_stale()
        cache_key = (key, n, failure_domain)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return list(cached)

        by_host = self.cluster_map.hosts()
        osd_weight = {
            osd_id: self.cluster_map.osds[osd_id].weight
            for ids in by_host.values()
            for osd_id in ids
        }
        chosen: List[int] = []
        if failure_domain == "osd":
            picked = straw2_select(
                key, [(str(i), w) for i, w in sorted(osd_weight.items())], n
            )
            chosen = [int(i) for i in picked]
        elif failure_domain == "host":
            host_weights = [
                (host, sum(osd_weight[i] for i in ids))
                for host, ids in sorted(by_host.items())
            ]
            hosts = straw2_select(key, host_weights, min(n, len(host_weights)))
            for host in hosts:
                chosen.extend(self._pick_in_host(key, host, by_host, osd_weight))
        else:  # rack
            by_rack: Dict[str, List[str]] = {}
            for host in by_host:
                by_rack.setdefault(self.cluster_map.rack_of_host(host), []).append(host)
            rack_weights = [
                (
                    rack,
                    sum(osd_weight[i] for h in hosts_ for i in by_host[h]),
                )
                for rack, hosts_ in sorted(by_rack.items())
            ]
            racks = straw2_select(key, rack_weights, min(n, len(rack_weights)))
            for rack in racks:
                host_weights = [
                    (h, sum(osd_weight[i] for i in by_host[h]))
                    for h in sorted(by_rack[rack])
                ]
                hosts = straw2_select(
                    stable_hash64(key, "rack", rack), host_weights, 1
                )
                if hosts:
                    chosen.extend(
                        self._pick_in_host(key, hosts[0], by_host, osd_weight)
                    )
        if len(chosen) < n:
            remaining = [
                (str(i), w) for i, w in sorted(osd_weight.items()) if i not in chosen
            ]
            extra = straw2_select(
                stable_hash64(key, "overflow"), remaining, n - len(chosen)
            )
            chosen.extend(int(i) for i in extra)
        self._cache[cache_key] = list(chosen)
        return chosen

    def _pick_in_host(self, key, host, by_host, osd_weight):
        candidates = [(str(i), osd_weight[i]) for i in by_host[host]]
        picked = straw2_select(stable_hash64(key, "host", host), candidates, 1)
        return [int(picked[0])] if picked else []

    def pg_seed(self, pool_id: int, pg: int) -> int:
        """The placement key for a placement group."""
        return stable_hash64("pg", pool_id, pg)

    def map_pg(
        self, pool_id: int, pg: int, n: int, failure_domain: str = "host"
    ) -> List[int]:
        """Acting set (primary first) for placement group ``pg``."""
        return self.select(self.pg_seed(pool_id, pg), n, failure_domain)
