"""Reed-Solomon erasure coding over GF(2^8).

The paper evaluates the dedup design on both replicated and erasure-coded
pools (EC ``k=2, m=1``, §6.4.1).  This module is a from-scratch, real
codec — not a size-only model: shards are actual bytes, any ``m`` lost
shards can be reconstructed, and decode failures raise.

The code is systematic: the first ``k`` shards are the data split
column-wise, the last ``m`` are parity.  The generator matrix is a
Vandermonde matrix normalised so its top ``k`` rows are the identity,
which guarantees the MDS property (any ``k`` of the ``k+m`` rows are
invertible).

NumPy is an optional extra (``pip install repro[fast]``): with it, shard
arithmetic runs on uint8 arrays; without it (or with ``REPRO_NO_NUMPY``
set), the same scalar-times-shard products run through cached 256-byte
``bytes.translate`` tables and bigint XOR — slower, but byte-identical.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

try:
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("NumPy disabled via REPRO_NO_NUMPY")
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the no-NumPy CI leg
    np = None  # type: ignore[assignment]

__all__ = ["GF256", "ReedSolomon"]


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings (bigint trick: one C-level op)."""
    return (
        int.from_bytes(a, "little") ^ int.from_bytes(b, "little")
    ).to_bytes(len(a), "little")


class GF256:
    """Arithmetic in GF(2^8) with the polynomial 0x11D.

    0x11D (x^8 + x^4 + x^3 + x^2 + 1) is the conventional Reed-Solomon
    field polynomial because 2 is a primitive element under it, which
    lets exp/log tables be built from powers of 2.
    """

    _EXP: Optional[List[int]] = None
    _LOG: Optional[List[int]] = None
    #: Row ``a`` is the 256-byte product table ``a * b`` for every byte
    #: ``b`` — directly usable with ``bytes.translate``.
    _MUL_ROWS: Optional[List[bytes]] = None
    _MUL_NP = None  # (256, 256) uint8 array when NumPy is available

    @classmethod
    def _tables(cls):
        if cls._EXP is None:
            exp = [0] * 512
            log = [0] * 256
            x = 1
            for i in range(255):
                exp[i] = x
                log[x] = i
                x <<= 1
                if x & 0x100:
                    x ^= 0x11D
            exp[255:510] = exp[:255]
            rows = [bytes(256)]
            for a in range(1, 256):
                rows.append(
                    bytes([0] + [exp[(log[a] + log[b]) % 255] for b in range(1, 256)])
                )
            cls._EXP, cls._LOG, cls._MUL_ROWS = exp, log, rows
            if np is not None:
                cls._MUL_NP = np.frombuffer(b"".join(rows), dtype=np.uint8).reshape(
                    256, 256
                )
        return cls._EXP, cls._LOG, cls._MUL_ROWS

    @classmethod
    def mul(cls, a: int, b: int) -> int:
        """Multiply two field elements."""
        _, _, rows = cls._tables()
        return rows[a][b]

    @classmethod
    def mul_row(cls, a: int) -> bytes:
        """The 256-entry ``translate`` table multiplying every byte by ``a``."""
        _, _, rows = cls._tables()
        return rows[a]

    @classmethod
    def inv(cls, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        if a == 0:
            raise ZeroDivisionError("GF(256) inverse of zero")
        exp, log, _ = cls._tables()
        return exp[255 - log[a]]

    @classmethod
    def pow(cls, a: int, n: int) -> int:
        """``a ** n`` in the field."""
        if n == 0:
            return 1
        if a == 0:
            return 0
        exp, log, _ = cls._tables()
        return exp[(log[a] * n) % 255]

    @classmethod
    def mul_bytes(cls, coef: int, data):
        """Multiply every byte of ``data`` (uint8 array) by ``coef``."""
        cls._tables()
        return cls._MUL_NP[coef][data]

    @classmethod
    def mat_mul(cls, a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> List[List[int]]:
        """Matrix product over the field (small matrices, pure Python)."""
        rows, inner, cols = len(a), len(b), len(b[0])
        out = [[0] * cols for _ in range(rows)]
        for i in range(rows):
            for j in range(cols):
                acc = 0
                for t in range(inner):
                    acc ^= cls.mul(a[i][t], b[t][j])
                out[i][j] = acc
        return out

    @classmethod
    def mat_inv(cls, m: Sequence[Sequence[int]]) -> List[List[int]]:
        """Invert a square matrix over the field (Gauss-Jordan).

        Raises ``ValueError`` if the matrix is singular.
        """
        n = len(m)
        aug = [list(row) + [1 if i == j else 0 for j in range(n)] for i, row in enumerate(m)]
        for col in range(n):
            pivot = next((r for r in range(col, n) if aug[r][col] != 0), None)
            if pivot is None:
                raise ValueError("singular matrix over GF(256)")
            aug[col], aug[pivot] = aug[pivot], aug[col]
            inv_p = cls.inv(aug[col][col])
            aug[col] = [cls.mul(v, inv_p) for v in aug[col]]
            for r in range(n):
                if r != col and aug[r][col] != 0:
                    factor = aug[r][col]
                    aug[r] = [
                        aug[r][c] ^ cls.mul(factor, aug[col][c])
                        for c in range(2 * n)
                    ]
        return [row[n:] for row in aug]


class ReedSolomon:
    """A systematic ``k + m`` Reed-Solomon codec.

    >>> rs = ReedSolomon(k=2, m=1)
    >>> shards = rs.encode(b"hello world!")
    >>> rs.decode([shards[0], None, shards[2]], length=12)
    b'hello world!'
    """

    def __init__(self, k: int, m: int):
        if k < 1 or m < 0:
            raise ValueError(f"invalid EC profile k={k} m={m}")
        if k + m > 255:
            raise ValueError("k + m must be <= 255 for GF(256)")
        self.k = k
        self.m = m
        self.n = k + m
        self._matrix = self._systematic_vandermonde(k, self.n)

    @staticmethod
    def _systematic_vandermonde(k: int, n: int) -> List[List[int]]:
        vandermonde = [[GF256.pow(i, j) for j in range(k)] for i in range(n)]
        top_inv = GF256.mat_inv([row[:] for row in vandermonde[:k]])
        return GF256.mat_mul(vandermonde, top_inv)

    def shard_size(self, length: int) -> int:
        """Bytes per shard for a payload of ``length`` bytes."""
        return (length + self.k - 1) // self.k

    def encode(self, data: bytes) -> List[bytes]:
        """Split ``data`` into ``k`` data shards and compute ``m`` parity.

        The payload is zero-padded to a multiple of ``k``; callers must
        remember the original length to :meth:`decode`.
        """
        size = self.shard_size(len(data)) if data else 1
        if np is None:
            return self._encode_py(data, size)
        if data and len(data) % self.k == 0:
            # Aligned payload: view the caller's buffer directly instead
            # of allocating + copying a padded array (read-only is fine —
            # encode only reads the data shards).
            data_shards = np.frombuffer(data, dtype=np.uint8).reshape(self.k, size)
        else:
            padded = np.zeros(size * self.k, dtype=np.uint8)
            if data:
                padded[: len(data)] = np.frombuffer(data, dtype=np.uint8)
            data_shards = padded.reshape(self.k, size)
        shards = [bytes(data_shards[i]) for i in range(self.k)]
        for row in range(self.m):
            acc = np.zeros(size, dtype=np.uint8)
            for col in range(self.k):
                coef = self._matrix[self.k + row][col]
                if coef:
                    acc ^= GF256.mul_bytes(coef, data_shards[col])
            shards.append(bytes(acc))
        return shards

    def _encode_py(self, data: bytes, size: int) -> List[bytes]:
        padded = bytes(data).ljust(size * self.k, b"\x00")
        shards = [padded[i * size : (i + 1) * size] for i in range(self.k)]
        for row in range(self.m):
            acc = bytes(size)
            for col in range(self.k):
                coef = self._matrix[self.k + row][col]
                if coef:
                    acc = _xor_bytes(acc, shards[col].translate(GF256.mul_row(coef)))
            shards.append(acc)
        return shards

    def decode(self, shards: Sequence[Optional[bytes]], length: int) -> bytes:
        """Reconstruct the payload from any ``k`` surviving shards.

        ``shards`` has ``k + m`` slots; lost shards are ``None``.  Raises
        ``ValueError`` when fewer than ``k`` survive.
        """
        if len(shards) != self.n:
            raise ValueError(f"expected {self.n} shard slots, got {len(shards)}")
        present = [i for i, s in enumerate(shards) if s is not None]
        if len(present) < self.k:
            raise ValueError(
                f"unrecoverable: {len(present)} shards present, need {self.k}"
            )
        use = present[: self.k]
        if use == list(range(self.k)):
            payload = b"".join(shards[i] for i in range(self.k))
            return payload[:length]
        sub = [self._matrix[i] for i in use]
        inv = GF256.mat_inv(sub)
        size = len(shards[use[0]])
        if np is None:
            return self._decode_py(shards, use, inv, size, length)
        survivors = [
            np.frombuffer(shards[i], dtype=np.uint8) for i in use
        ]
        out = []
        for row in range(self.k):
            acc = np.zeros(size, dtype=np.uint8)
            for col in range(self.k):
                coef = inv[row][col]
                if coef:
                    acc ^= GF256.mul_bytes(coef, survivors[col])
            out.append(acc)
        payload = b"".join(bytes(chunk) for chunk in out)
        return payload[:length]

    def _decode_py(self, shards, use, inv, size, length) -> bytes:
        survivors = [bytes(shards[i]) for i in use]
        out = []
        for row in range(self.k):
            acc = bytes(size)
            for col in range(self.k):
                coef = inv[row][col]
                if coef:
                    acc = _xor_bytes(
                        acc, survivors[col].translate(GF256.mul_row(coef))
                    )
            out.append(acc)
        return b"".join(out)[:length]

    def reconstruct_shard(self, shards: Sequence[Optional[bytes]], index: int, length: int) -> bytes:
        """Recompute the single shard ``index`` from the survivors."""
        data = self.decode(shards, length)
        return self.encode(data)[index]
