"""Hardware device models: SSD, NIC, and CPU.

The paper's testbed is four servers, each with an Intel Xeon E5-2690
(12 cores), 128 GB RAM, four SATA SSDs (SK Hynix 480 GB), connected by
10 GbE, with three client nodes (§6.1).  These classes model the time
cost of the operations that testbed would perform; the discrete-event
kernel (:mod:`repro.sim`) turns those costs into queueing behaviour —
contention, interference, and utilisation — which is what the paper's
performance figures are about.

All rates are bytes/second and all times are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import Resource, Simulator

__all__ = [
    "DiskSpec",
    "NicSpec",
    "CpuSpec",
    "HardwareProfile",
    "Disk",
    "Nic",
    "Cpu",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


@dataclass(frozen=True)
class DiskSpec:
    """Performance envelope of one SSD.

    Defaults approximate a SATA-class data-centre SSD (the paper's
    SK Hynix 480 GB): ~500 MB/s sequential, ~80k random-read IOPS,
    ~30k random-write IOPS.
    """

    seq_bandwidth: float = 500 * MiB
    read_iops: float = 80_000.0
    write_iops: float = 30_000.0
    capacity_bytes: int = 480 * GiB
    #: Writes are refused once usage passes this fraction of capacity
    #: (Ceph's full_ratio default is 0.95).
    full_ratio: float = 0.95

    def read_time(self, nbytes: int) -> float:
        """Service time for a single read of ``nbytes``."""
        return 1.0 / self.read_iops + nbytes / self.seq_bandwidth

    def write_time(self, nbytes: int) -> float:
        """Service time for a single (journaled) write of ``nbytes``."""
        return 1.0 / self.write_iops + nbytes / self.seq_bandwidth


@dataclass(frozen=True)
class NicSpec:
    """A network interface: 10 GbE by default."""

    bandwidth: float = 1.25 * GiB  # 10 Gbit/s
    latency: float = 50e-6  # one-way propagation + stack latency
    per_message_overhead: int = 256  # headers etc., bytes

    def transfer_time(self, nbytes: int) -> float:
        """Wire time (excluding propagation) for one message."""
        return (nbytes + self.per_message_overhead) / self.bandwidth


@dataclass(frozen=True)
class CpuSpec:
    """Per-node CPU envelope and per-byte costs of compute-heavy kernels.

    ``fingerprint_bandwidth`` models SHA-1-class hashing, ``ec_bandwidth``
    the Reed-Solomon encode path, ``compress_bandwidth`` a zlib-class
    codec.  Small fixed per-op costs model dispatch overhead; the paper
    notes small random writes already consume 60-80 % CPU on Ceph (§5).
    """

    cores: int = 12
    fingerprint_bandwidth: float = 1.0 * GiB
    ec_bandwidth: float = 3.0 * GiB
    compress_bandwidth: float = 200 * MiB
    per_io_cost: float = 25e-6  # CPU seconds consumed by one I/O op

    def fingerprint_time(self, nbytes: int) -> float:
        """CPU time to fingerprint ``nbytes``."""
        return nbytes / self.fingerprint_bandwidth

    def ec_time(self, nbytes: int) -> float:
        """CPU time to erasure-encode/decode ``nbytes``."""
        return nbytes / self.ec_bandwidth

    def compress_time(self, nbytes: int) -> float:
        """CPU time to compress ``nbytes``."""
        return nbytes / self.compress_bandwidth


@dataclass(frozen=True)
class HardwareProfile:
    """The full hardware description used to build a simulated cluster."""

    disk: DiskSpec = field(default_factory=DiskSpec)
    nic: NicSpec = field(default_factory=NicSpec)
    cpu: CpuSpec = field(default_factory=CpuSpec)


class Disk:
    """A simulated SSD: a unit-capacity FIFO server over :class:`DiskSpec`.

    Rated IOPS emerge naturally: with service time ``1/IOPS + size/bw``
    and one request in service at a time, a saturating 4 KiB random-write
    stream completes at roughly ``write_iops`` per second.
    """

    def __init__(self, sim: Simulator, spec: DiskSpec):
        self.sim = sim
        self.spec = spec
        self._server = Resource(sim, capacity=1)
        #: Totals for metrics: (ops, bytes) per direction.
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def read(self, nbytes: int):
        """Process generator performing one device read."""
        self.reads += 1
        self.bytes_read += nbytes
        yield from self._server.serve(self.spec.read_time(nbytes))

    def write(self, nbytes: int):
        """Process generator performing one device write."""
        self.writes += 1
        self.bytes_written += nbytes
        yield from self._server.serve(self.spec.write_time(nbytes))

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of time the device was busy since ``since``."""
        return self._server.utilization(since)


class Nic:
    """A simulated NIC with separate egress and ingress FIFO queues."""

    def __init__(self, sim: Simulator, spec: NicSpec):
        self.sim = sim
        self.spec = spec
        self._egress = Resource(sim, capacity=1)
        self._ingress = Resource(sim, capacity=1)
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, nbytes: int):
        """Process generator: occupy the egress queue for the wire time."""
        self.bytes_sent += nbytes
        yield from self._egress.serve(self.spec.transfer_time(nbytes))

    def receive(self, nbytes: int):
        """Process generator: occupy the ingress queue for the wire time."""
        self.bytes_received += nbytes
        yield from self._ingress.serve(self.spec.transfer_time(nbytes))


class Cpu:
    """A simulated multi-core CPU with utilisation accounting."""

    def __init__(self, sim: Simulator, spec: CpuSpec):
        self.sim = sim
        self.spec = spec
        self._cores = Resource(sim, capacity=spec.cores)
        self.busy_seconds = 0.0

    def execute(self, cpu_seconds: float):
        """Process generator: burn ``cpu_seconds`` on one core."""
        if cpu_seconds <= 0:
            return
        self.busy_seconds += cpu_seconds
        yield from self._cores.serve(cpu_seconds)

    def fingerprint(self, nbytes: int):
        """Process generator: hash ``nbytes`` (e.g. chunk fingerprinting)."""
        yield from self.execute(self.spec.fingerprint_time(nbytes))

    def utilization(self, since: float = 0.0) -> float:
        """Average fraction of all cores busy since ``since``.

        Matches the "CPU Usage (%)" axis of the paper's Figure 10 when
        multiplied by 100.
        """
        return self._cores.utilization(since)
