"""Per-OSD object store: objects with data, xattrs, and omap.

This is the analogue of Ceph's ObjectStore (FileStore/BlueStore): a flat
namespace of named objects, each carrying

* a byte payload (``data``),
* small extended attributes (``xattrs``) — where the paper keeps the
  chunk map of metadata objects and reference info of chunk objects
  ("self-contained object", §4.1/§5), and
* a key-value map (``omap``) for larger metadata such as dirty lists.

Mutations are applied through :class:`Transaction`, the atomic multi-op
unit the paper's consistency model (§4.6) relies on: either every op in
the transaction applies or none does.

Space accounting matches the paper's §5 notes: every object pays a fixed
metadata overhead (512 bytes in Ceph) plus the bytes of its payload,
xattrs, and omap.  Table 2's "actual deduplication ratio" falls out of
this accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from ..util.intervals import IntervalSet

__all__ = [
    "ObjectKey",
    "StoredObject",
    "Transaction",
    "ObjectStore",
    "NoSuchObject",
    "ObjectExists",
]

#: Fixed per-object metadata footprint (paper §5: "Ceph's object has its
#: own metadata at least 512 bytes").
PER_OBJECT_OVERHEAD = 512


class NoSuchObject(KeyError):
    """Raised when an operation targets a non-existent object."""


class ObjectExists(ValueError):
    """Raised by exclusive create when the object already exists."""


class ObjectKey(NamedTuple):
    """Globally unique object identity: pool, placement group, name."""

    pool_id: int
    pg: int
    name: str


@dataclass
class StoredObject:
    """One stored object: payload plus metadata maps.

    ``holes`` tracks punched (deallocated) ranges of the payload — the
    dedup tier punches a cached chunk out of a metadata object once the
    chunk lives in the chunk pool, and the freed space must show up in
    space accounting even though the payload length is unchanged.
    """

    data: bytearray = field(default_factory=bytearray)
    xattrs: Dict[str, bytes] = field(default_factory=dict)
    omap: Dict[str, bytes] = field(default_factory=dict)
    holes: IntervalSet = field(default_factory=IntervalSet)

    def allocated_bytes(self) -> int:
        """Payload bytes actually occupying disk (length minus holes)."""
        return len(self.data) - self.holes.total_within(0, len(self.data))

    def footprint(self) -> int:
        """Bytes this object occupies, including metadata overhead."""
        meta = sum(len(k) + len(v) for k, v in self.xattrs.items())
        meta += sum(len(k) + len(v) for k, v in self.omap.items())
        return PER_OBJECT_OVERHEAD + self.allocated_bytes() + meta

    def clone(self) -> "StoredObject":
        """Deep copy (used when replicating/recovering an object)."""
        return StoredObject(
            data=bytearray(self.data),
            xattrs=dict(self.xattrs),
            omap=dict(self.omap),
            holes=self.holes.copy(),
        )


class Transaction:
    """An ordered list of mutations applied atomically to one store.

    Supported ops mirror the subset of Ceph's ObjectStore transactions
    the dedup design needs.  ``io_bytes`` approximates the device write
    cost of the transaction for the simulation's disk model.
    """

    def __init__(self):
        self.ops: List[Tuple] = []

    # -- op constructors ---------------------------------------------------

    def create(self, key: ObjectKey, exclusive: bool = False) -> "Transaction":
        """Create an empty object (optionally failing if it exists)."""
        self.ops.append(("create", key, exclusive))
        return self

    def write(self, key: ObjectKey, offset: int, data: bytes) -> "Transaction":
        """Write ``data`` at ``offset``, extending/creating as needed."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        self.ops.append(("write", key, offset, bytes(data)))
        return self

    def write_full(self, key: ObjectKey, data: bytes) -> "Transaction":
        """Replace the whole payload."""
        self.ops.append(("write_full", key, bytes(data)))
        return self

    def truncate(self, key: ObjectKey, size: int) -> "Transaction":
        """Truncate (or zero-extend) the payload to ``size`` bytes."""
        if size < 0:
            raise ValueError(f"negative truncate size {size}")
        self.ops.append(("truncate", key, size))
        return self

    def remove(self, key: ObjectKey) -> "Transaction":
        """Delete the object."""
        self.ops.append(("remove", key))
        return self

    def zero(self, key: ObjectKey, offset: int, length: int) -> "Transaction":
        """Punch a hole: zero ``[offset, offset + length)`` and deallocate it.

        The payload length is unchanged (reads of the range return
        zeros), but the range stops counting toward the object's
        footprint.
        """
        if offset < 0 or length < 0:
            raise ValueError(f"invalid zero range ({offset}, {length})")
        self.ops.append(("zero", key, offset, length))
        return self

    def setxattr(self, key: ObjectKey, name: str, value: bytes) -> "Transaction":
        """Set one extended attribute."""
        self.ops.append(("setxattr", key, name, bytes(value)))
        return self

    def rmxattr(self, key: ObjectKey, name: str) -> "Transaction":
        """Remove one extended attribute (must exist)."""
        self.ops.append(("rmxattr", key, name))
        return self

    def omap_set(self, key: ObjectKey, entries: Dict[str, bytes]) -> "Transaction":
        """Insert/overwrite omap entries."""
        self.ops.append(("omap_set", key, {k: bytes(v) for k, v in entries.items()}))
        return self

    def omap_rm(self, key: ObjectKey, names: List[str]) -> "Transaction":
        """Remove omap entries (missing names are ignored)."""
        self.ops.append(("omap_rm", key, list(names)))
        return self

    # -- costing -----------------------------------------------------------

    @property
    def io_bytes(self) -> int:
        """Approximate device bytes written by this transaction."""
        total = 0
        for op in self.ops:
            kind = op[0]
            if kind == "write":
                total += len(op[3])
            elif kind == "write_full":
                total += len(op[2])
            elif kind == "setxattr":
                total += len(op[3])
            elif kind == "omap_set":
                total += sum(len(k) + len(v) for k, v in op[2].items())
            else:
                total += 64  # metadata-only mutation
        return total

    def __len__(self) -> int:
        return len(self.ops)


class ObjectStore:
    """The object namespace of one OSD, with atomic transactions."""

    def __init__(self):
        self._objects: Dict[ObjectKey, StoredObject] = {}
        # Incrementally maintained sum of footprints: used_bytes() is on
        # the per-write capacity-check path and must be O(1).
        self._used_bytes = 0

    # -- reads ---------------------------------------------------------------

    def exists(self, key: ObjectKey) -> bool:
        """Whether ``key`` is stored here."""
        return key in self._objects

    def get(self, key: ObjectKey) -> StoredObject:
        """The stored object, or raise :class:`NoSuchObject`."""
        try:
            return self._objects[key]
        except KeyError:
            raise NoSuchObject(key) from None

    def read(self, key: ObjectKey, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Read ``length`` bytes at ``offset`` (short reads past EOF)."""
        obj = self.get(key)
        if length is None:
            return bytes(obj.data[offset:])
        return bytes(obj.data[offset : offset + length])

    def getxattr(self, key: ObjectKey, name: str) -> bytes:
        """One xattr value; raises ``KeyError`` when absent."""
        return self.get(key).xattrs[name]

    def omap_get(self, key: ObjectKey, name: str) -> bytes:
        """One omap value; raises ``KeyError`` when absent."""
        return self.get(key).omap[name]

    def stat(self, key: ObjectKey) -> int:
        """Payload size in bytes."""
        return len(self.get(key).data)

    def keys(self) -> Iterator[ObjectKey]:
        """Iterate all object keys (snapshot)."""
        return iter(list(self._objects.keys()))

    def keys_in_pg(self, pool_id: int, pg: int) -> List[ObjectKey]:
        """All object keys in one placement group."""
        return [k for k in self._objects if k.pool_id == pool_id and k.pg == pg]

    def __len__(self) -> int:
        return len(self._objects)

    # -- space accounting ------------------------------------------------------

    def used_bytes(self) -> int:
        """Total footprint of all stored objects (O(1))."""
        return self._used_bytes

    def data_bytes(self) -> int:
        """Allocated payload bytes only (no metadata overhead, no holes)."""
        return sum(obj.allocated_bytes() for obj in self._objects.values())

    # -- mutation -----------------------------------------------------------

    def put_object(self, key: ObjectKey, obj: StoredObject) -> None:
        """Install a full object (replication/recovery path)."""
        old = self._objects.get(key)
        if old is not None:
            self._used_bytes -= old.footprint()
        self._objects[key] = obj
        self._used_bytes += obj.footprint()

    def delete_object(self, key: ObjectKey) -> None:
        """Drop an object if present (recovery cleanup path)."""
        old = self._objects.pop(key, None)
        if old is not None:
            self._used_bytes -= old.footprint()

    def apply(self, txn: Transaction) -> None:
        """Apply ``txn`` atomically: validate every op, then mutate.

        Validation covers the failure modes that could abort midway
        (remove/rmxattr of missing targets, exclusive create of an
        existing object); after validation, the mutation loop cannot
        fail, so atomicity holds.
        """
        self._validate(txn)
        touched = {op[1] for op in txn.ops}
        self._used_bytes -= sum(
            self._objects[key].footprint()
            for key in touched
            if key in self._objects
        )
        try:
            self._apply_ops(txn)
        finally:
            self._used_bytes += sum(
                self._objects[key].footprint()
                for key in touched
                if key in self._objects
            )

    def _apply_ops(self, txn: Transaction) -> None:
        for op in txn.ops:
            kind = op[0]
            if kind == "create":
                _, key, _exclusive = op
                self._objects.setdefault(key, StoredObject())
            elif kind == "write":
                _, key, offset, data = op
                obj = self._objects.setdefault(key, StoredObject())
                end = offset + len(data)
                if len(obj.data) < offset:
                    obj.data.extend(b"\x00" * (offset - len(obj.data)))
                if len(obj.data) < end:
                    obj.data.extend(b"\x00" * (end - len(obj.data)))
                obj.data[offset:end] = data
                obj.holes.remove(offset, end)
            elif kind == "write_full":
                _, key, data = op
                obj = self._objects.setdefault(key, StoredObject())
                obj.data = bytearray(data)
                obj.holes = IntervalSet()
            elif kind == "truncate":
                _, key, size = op
                obj = self._objects.setdefault(key, StoredObject())
                if size <= len(obj.data):
                    del obj.data[size:]
                    obj.holes.clip(size)
                else:
                    obj.data.extend(b"\x00" * (size - len(obj.data)))
            elif kind == "zero":
                _, key, offset, length = op
                obj = self._objects.setdefault(key, StoredObject())
                end = min(offset + length, len(obj.data))
                if end > offset:
                    obj.data[offset:end] = b"\x00" * (end - offset)
                    obj.holes.add(offset, end)
            elif kind == "remove":
                _, key = op
                del self._objects[key]
            elif kind == "setxattr":
                _, key, name, value = op
                self._objects.setdefault(key, StoredObject()).xattrs[name] = value
            elif kind == "rmxattr":
                _, key, name = op
                del self._objects[key].xattrs[name]
            elif kind == "omap_set":
                _, key, entries = op
                self._objects.setdefault(key, StoredObject()).omap.update(entries)
            elif kind == "omap_rm":
                _, key, names = op
                omap = self._objects[key].omap
                for name in names:
                    omap.pop(name, None)
            else:  # pragma: no cover - constructor-enforced
                raise ValueError(f"unknown transaction op {kind!r}")

    def _validate(self, txn: Transaction) -> None:
        # Track objects created/removed earlier in the same transaction so
        # e.g. create-then-setxattr validates.
        created = set()
        removed = set()
        set_xattrs = set()

        def will_exist(key: ObjectKey) -> bool:
            if key in removed:
                return False
            return key in created or key in self._objects

        for op in txn.ops:
            kind, key = op[0], op[1]
            if kind == "create":
                if op[2] and will_exist(key):
                    raise ObjectExists(key)
                created.add(key)
                removed.discard(key)
            elif kind in ("write", "write_full", "truncate", "setxattr", "omap_set", "zero"):
                created.add(key)
                removed.discard(key)
                if kind == "setxattr":
                    set_xattrs.add((key, op[2]))
            elif kind == "remove":
                if not will_exist(key):
                    raise NoSuchObject(key)
                removed.add(key)
                created.discard(key)
            elif kind == "rmxattr":
                if not will_exist(key):
                    raise NoSuchObject(key)
                if (key, op[2]) not in set_xattrs:
                    if key not in self._objects or op[2] not in self._objects[key].xattrs:
                        raise KeyError(f"no xattr {op[2]!r} on {key}")
            elif kind == "omap_rm":
                if not will_exist(key):
                    raise NoSuchObject(key)
