"""Simulated storage nodes and OSD daemons.

A :class:`Node` models one physical server: a NIC and a CPU shared by
all OSD daemons on it (the paper's testbed runs four OSDs per server).
An :class:`OSD` couples an object store with a disk device model; its
execute methods are simulation processes that charge device and CPU time
before touching the store.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Simulator
from .clustermap import OsdInfo
from .hardware import Cpu, Disk, HardwareProfile, Nic
from .objectstore import ObjectKey, ObjectStore, Transaction

__all__ = ["Node", "OSD", "OsdError", "OsdDownError", "OsdFullError"]


class Node:
    """One server: a NIC and CPU shared by its resident OSDs."""

    def __init__(self, sim: Simulator, name: str, profile: HardwareProfile):
        self.sim = sim
        self.name = name
        self.nic = Nic(sim, profile.nic)
        # The fault injector partitions hosts by NIC owner name.
        self.nic.owner = name
        self.cpu = Cpu(sim, profile.cpu)
        self.osds: List["OSD"] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} osds={[o.osd_id for o in self.osds]}>"


class OSD:
    """One object storage daemon: store + disk + liveness."""

    def __init__(
        self,
        sim: Simulator,
        osd_id: int,
        node: Node,
        info: OsdInfo,
        profile: HardwareProfile,
    ):
        self.sim = sim
        self.osd_id = osd_id
        self.node = node
        self.info = info
        self.store = ObjectStore()
        self.disk = Disk(sim, profile.disk)
        node.osds.append(self)
        #: Operation counters for metrics.
        self.op_reads = 0
        self.op_writes = 0
        #: Fault-injection hook (a FaultInjector, or None); consulted at
        #: the head of every execute path.
        self.faults = None
        #: Set when the daemon rejoins after a crash with its (possibly
        #: stale) disk contents intact; recovery reconciles and clears it.
        self.needs_backfill = False

    @property
    def up(self) -> bool:
        """Whether the daemon is serving (mirrors the cluster map)."""
        return self.info.up

    @property
    def full_threshold(self) -> float:
        """Bytes of usage at which this OSD refuses further writes."""
        return self.disk.spec.capacity_bytes * self.disk.spec.full_ratio

    @property
    def is_full(self) -> bool:
        """Whether usage has crossed the full threshold."""
        return self.store.used_bytes() >= self.full_threshold

    def _check_capacity(self, incoming_bytes: int) -> None:
        used = self.store.used_bytes()
        if used + incoming_bytes > self.full_threshold:
            raise OsdFullError(
                self.osd_id,
                needed_bytes=incoming_bytes,
                available_bytes=max(0, int(self.full_threshold) - used),
            )

    def _faults(self, op: str, nbytes: int):
        """Process: run the fault-injection hook (no-op when detached)."""
        if self.faults is not None:
            yield from self.faults.before_op(self, op, nbytes)

    # -- simulation processes -------------------------------------------------

    def execute_read(self, key: ObjectKey, offset: int = 0, length: Optional[int] = None):
        """Process: read object bytes, charging disk and CPU time."""
        if not self.up:
            raise OsdDownError(self.osd_id)
        self.op_reads += 1
        data = self.store.read(key, offset, length)
        yield from self._faults("read", len(data))
        yield from self.node.cpu.execute(self.node.cpu.spec.per_io_cost)
        yield from self.disk.read(max(len(data), 1))
        if not self.up:  # daemon died while the op was in flight
            raise OsdDownError(self.osd_id)
        return data

    def prepare_transaction(self, txn: Transaction):
        """Process: everything that can *fail* or take *time* for a txn.

        Charges disk and CPU time, checks capacity, and runs the
        fault-injection hook — but does not touch the store.  Injected
        transient errors therefore fire before any mutation, so a
        retried transaction never observes a half-applied store, and a
        replicated submit can prepare every replica before committing
        any of them (see :meth:`RadosCluster.submit`).
        """
        if not self.up:
            raise OsdDownError(self.osd_id)
        self._check_capacity(txn.io_bytes)
        yield from self._faults("write", txn.io_bytes)
        self.op_writes += 1
        yield from self.node.cpu.execute(self.node.cpu.spec.per_io_cost)
        yield from self.disk.write(max(txn.io_bytes, 1))
        if not self.up:  # died mid-op: the mutation never commits
            raise OsdDownError(self.osd_id)

    def commit_transaction(self, txn: Transaction) -> None:
        """Apply a prepared transaction instantly (the commit point).

        No simulated time elapses and nothing can fail once the prepare
        phase has succeeded, which is what lets ``submit`` make a
        replicated transaction all-or-nothing across replicas.
        """
        self.store.apply(txn)

    def execute_transaction(self, txn: Transaction):
        """Process: prepare + commit on this one OSD.

        The store mutation happens after the device time has elapsed, so
        a concurrent reader at an earlier simulated instant sees the old
        state (a transaction commits at its completion time).
        """
        yield from self.prepare_transaction(txn)
        self.commit_transaction(txn)

    def execute_push(self, key: ObjectKey, obj) -> object:
        """Process: install a recovered/replicated full object copy."""
        if not self.up:
            raise OsdDownError(self.osd_id)
        self._check_capacity(obj.footprint())
        yield from self._faults("write", obj.footprint())
        self.op_writes += 1
        yield from self.disk.write(max(obj.footprint(), 1))
        if not self.up:  # died mid-op: the push never lands
            raise OsdDownError(self.osd_id)
        self.store.put_object(key, obj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OSD {self.osd_id} on {self.node.name} up={self.up}>"


class OsdError(RuntimeError):
    """Base for typed OSD operation errors.

    ``retryable`` feeds the fault layer's classification
    (:func:`repro.faults.errors.is_retryable`): retry-with-backoff can
    only help when the condition is transient.
    """

    retryable = False

    def __init__(self, osd_id: int, message: str):
        super().__init__(message)
        self.osd_id = osd_id


class OsdDownError(OsdError):
    """An operation was routed to an OSD that is not serving.

    Retryable: the daemon may restart, or a retry may be routed to a
    different (up) replica after primary failover.
    """

    retryable = True

    def __init__(self, osd_id: int):
        super().__init__(osd_id, f"osd.{osd_id} is down")


class OsdFullError(OsdError):
    """A write was refused because the OSD crossed its full ratio.

    Fatal: retrying cannot free space — only deletion or rebalancing
    can, so the error must surface to the caller immediately.
    """

    retryable = False

    def __init__(self, osd_id: int, needed_bytes: int = 0, available_bytes: int = 0):
        detail = ""
        if needed_bytes:
            detail = f" ({needed_bytes}B needed, {available_bytes}B under full ratio)"
        super().__init__(osd_id, f"osd.{osd_id} is full{detail}")
        self.needed_bytes = needed_bytes
        self.available_bytes = available_bytes
