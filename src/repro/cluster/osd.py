"""Simulated storage nodes and OSD daemons.

A :class:`Node` models one physical server: a NIC and a CPU shared by
all OSD daemons on it (the paper's testbed runs four OSDs per server).
An :class:`OSD` couples an object store with a disk device model; its
execute methods are simulation processes that charge device and CPU time
before touching the store.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Simulator
from .clustermap import OsdInfo
from .hardware import Cpu, Disk, HardwareProfile, Nic
from .objectstore import ObjectKey, ObjectStore, Transaction

__all__ = ["Node", "OSD"]


class Node:
    """One server: a NIC and CPU shared by its resident OSDs."""

    def __init__(self, sim: Simulator, name: str, profile: HardwareProfile):
        self.sim = sim
        self.name = name
        self.nic = Nic(sim, profile.nic)
        self.cpu = Cpu(sim, profile.cpu)
        self.osds: List["OSD"] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} osds={[o.osd_id for o in self.osds]}>"


class OSD:
    """One object storage daemon: store + disk + liveness."""

    def __init__(
        self,
        sim: Simulator,
        osd_id: int,
        node: Node,
        info: OsdInfo,
        profile: HardwareProfile,
    ):
        self.sim = sim
        self.osd_id = osd_id
        self.node = node
        self.info = info
        self.store = ObjectStore()
        self.disk = Disk(sim, profile.disk)
        node.osds.append(self)
        #: Operation counters for metrics.
        self.op_reads = 0
        self.op_writes = 0

    @property
    def up(self) -> bool:
        """Whether the daemon is serving (mirrors the cluster map)."""
        return self.info.up

    @property
    def full_threshold(self) -> float:
        """Bytes of usage at which this OSD refuses further writes."""
        return self.disk.spec.capacity_bytes * self.disk.spec.full_ratio

    @property
    def is_full(self) -> bool:
        """Whether usage has crossed the full threshold."""
        return self.store.used_bytes() >= self.full_threshold

    def _check_capacity(self, incoming_bytes: int) -> None:
        if self.store.used_bytes() + incoming_bytes > self.full_threshold:
            raise OsdFullError(self.osd_id)

    # -- simulation processes -------------------------------------------------

    def execute_read(self, key: ObjectKey, offset: int = 0, length: Optional[int] = None):
        """Process: read object bytes, charging disk and CPU time."""
        if not self.up:
            raise OsdDownError(self.osd_id)
        self.op_reads += 1
        data = self.store.read(key, offset, length)
        yield from self.node.cpu.execute(self.node.cpu.spec.per_io_cost)
        yield from self.disk.read(max(len(data), 1))
        return data

    def execute_transaction(self, txn: Transaction):
        """Process: apply a transaction, charging disk and CPU time.

        The store mutation happens after the device time has elapsed, so
        a concurrent reader at an earlier simulated instant sees the old
        state (a transaction commits at its completion time).
        """
        if not self.up:
            raise OsdDownError(self.osd_id)
        self._check_capacity(txn.io_bytes)
        self.op_writes += 1
        yield from self.node.cpu.execute(self.node.cpu.spec.per_io_cost)
        yield from self.disk.write(max(txn.io_bytes, 1))
        self.store.apply(txn)

    def execute_push(self, key: ObjectKey, obj) -> object:
        """Process: install a recovered/replicated full object copy."""
        if not self.up:
            raise OsdDownError(self.osd_id)
        self._check_capacity(obj.footprint())
        self.op_writes += 1
        yield from self.disk.write(max(obj.footprint(), 1))
        self.store.put_object(key, obj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OSD {self.osd_id} on {self.node.name} up={self.up}>"


class OsdDownError(RuntimeError):
    """An operation was routed to an OSD that is not serving."""

    def __init__(self, osd_id: int):
        super().__init__(f"osd.{osd_id} is down")
        self.osd_id = osd_id


class OsdFullError(RuntimeError):
    """A write was refused because the OSD crossed its full ratio."""

    def __init__(self, osd_id: int):
        super().__init__(f"osd.{osd_id} is full")
        self.osd_id = osd_id
