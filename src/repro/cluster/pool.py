"""Pools: named object namespaces with a redundancy scheme.

The paper's design uses exactly two pools (§4.2): a *metadata pool* for
metadata objects and a *chunk pool* for deduplicated chunk objects, each
free to pick its own redundancy scheme (replication or erasure coding)
and placement.  This module provides the generic pool abstraction those
two are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .crush import CrushMap, stable_hash64
from .ec import ReedSolomon

__all__ = ["Redundancy", "Replicated", "ErasureCoded", "Pool"]


@dataclass(frozen=True)
class Replicated:
    """Primary-copy replication with ``size`` total copies."""

    size: int = 2

    @property
    def width(self) -> int:
        """Number of OSDs in each acting set."""
        return self.size

    @property
    def min_size(self) -> int:
        """Minimum replicas that must be writable to accept I/O."""
        return max(1, self.size - 1)

    def raw_multiplier(self) -> float:
        """Raw-to-logical space multiplier."""
        return float(self.size)


@dataclass(frozen=True)
class ErasureCoded:
    """Reed-Solomon ``k + m`` erasure coding."""

    k: int = 2
    m: int = 1

    @property
    def width(self) -> int:
        """Number of OSDs in each acting set (``k + m`` shards)."""
        return self.k + self.m

    @property
    def min_size(self) -> int:
        """Minimum shards that must be available to serve I/O."""
        return self.k

    def raw_multiplier(self) -> float:
        """Raw-to-logical space multiplier, e.g. 1.5 for 2+1."""
        return (self.k + self.m) / self.k

    def codec(self) -> ReedSolomon:
        """The codec instance for this profile."""
        return ReedSolomon(self.k, self.m)


Redundancy = object  # typing alias: Replicated | ErasureCoded


class Pool:
    """A pool: id, name, redundancy scheme, and PG-based placement."""

    def __init__(
        self,
        pool_id: int,
        name: str,
        redundancy,
        pg_num: int,
        crush: CrushMap,
        failure_domain: str = "host",
    ):
        if pg_num < 1:
            raise ValueError(f"pg_num must be >= 1, got {pg_num}")
        self.pool_id = pool_id
        self.name = name
        self.redundancy = redundancy
        self.pg_num = pg_num
        self.crush = crush
        self.failure_domain = failure_domain
        self._codec: Optional[ReedSolomon] = (
            redundancy.codec() if isinstance(redundancy, ErasureCoded) else None
        )

    @property
    def is_ec(self) -> bool:
        """Whether this pool is erasure-coded."""
        return self._codec is not None

    @property
    def codec(self) -> Optional[ReedSolomon]:
        """The EC codec, or ``None`` for replicated pools."""
        return self._codec

    def pg_of(self, oid: str) -> int:
        """Placement group for an object name."""
        return stable_hash64("obj", self.pool_id, oid) % self.pg_num

    def acting_set(self, pg: int) -> List[int]:
        """OSDs (primary first) for ``pg`` under the current map."""
        return self.crush.map_pg(
            self.pool_id, pg, self.redundancy.width, self.failure_domain
        )

    def acting_set_for(self, oid: str) -> List[int]:
        """OSDs (primary first) for an object name."""
        return self.acting_set(self.pg_of(oid))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pool {self.name!r} id={self.pool_id} {self.redundancy}>"
