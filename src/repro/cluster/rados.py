"""The simulated scale-out storage cluster (RADOS-like facade).

:class:`RadosCluster` wires together the cluster map, CRUSH placement,
nodes, OSDs, and pools, and exposes the client operations the dedup tier
is built on: full/partial object writes, reads, removes, xattr/omap
access, and atomic per-object transactions — over replicated *and*
erasure-coded pools, with degraded-mode handling when OSDs are down.

All operations are simulation processes (generators): they charge
network, CPU, and disk time on the modelled devices and therefore
exhibit queueing and interference.  Synchronous helpers (``*_sync`` and
:meth:`RadosCluster.run`) drive the event loop for callers outside the
simulation (tests, benchmarks).

Semantics follow Ceph:

* Writes go to the PG primary, which fans out to replicas (or encodes
  and distributes shards); the ack returns once every available copy is
  durable.
* Reads are served by the primary (or by ``k`` shards + decode for EC).
* A write succeeds in degraded mode while at least ``min_size`` copies
  (or ``k`` shards) are writable; otherwise it raises.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

from ..obs import NULL_SPAN
from ..sim import Resource, Simulator
from .clustermap import ClusterMap
from .crush import CrushMap
from .hardware import HardwareProfile, Nic
from .objectstore import NoSuchObject, ObjectKey, StoredObject, Transaction
from .osd import Node, OSD, OsdDownError
from .pool import Pool, Replicated

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .rebalance import PgRemap, RemapDiff

__all__ = ["Client", "RadosCluster", "NotEnoughReplicas"]

_EC_LEN_XATTR = "_ec.length"
_EC_IDX_XATTR = "_ec.index"
#: Per-shard content checksum (Ceph stores the analogous hinfo_key):
#: without it, a single corrupt shard in a k+1 profile cannot be located.
_EC_CRC_XATTR = "_ec.crc"


def _shard_crc(shard: bytes) -> bytes:
    import zlib

    return zlib.crc32(shard).to_bytes(4, "big")


class NotEnoughReplicas(RuntimeError):
    """Fewer than ``min_size`` copies/shards are writable or readable.

    Retryable: recovery or an OSD restart can restore the missing
    copies, so a backed-off retry may find the PG healthy again.
    """

    retryable = True


class _NodeAsClient:
    """Lets a storage node stand in as the initiator of an internal op."""

    def __init__(self, node):
        self.node = node
        self.nic = node.nic


class Client:
    """A client host with its own NIC (the paper uses three of them)."""

    def __init__(self, sim: Simulator, name: str, profile: HardwareProfile):
        self.sim = sim
        self.name = name
        self.nic = Nic(sim, profile.nic)
        # The fault injector partitions hosts by NIC owner name.
        self.nic.owner = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Client {self.name}>"


class RadosCluster:
    """A simulated shared-nothing scale-out storage cluster."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        profile: Optional[HardwareProfile] = None,
        num_hosts: int = 4,
        osds_per_host: int = 4,
        pg_num: int = 64,
    ):
        self.sim = sim if sim is not None else Simulator()
        self.profile = profile if profile is not None else HardwareProfile()
        self.default_pg_num = pg_num
        self.cluster_map = ClusterMap()
        self.crush = CrushMap(self.cluster_map)
        self.nodes: Dict[str, Node] = {}
        self.osds: Dict[int, OSD] = {}
        self.pools: Dict[str, Pool] = {}
        self._next_pool_id = 1
        for h in range(num_hosts):
            self.add_host(f"host{h}", osds_per_host)
        self._default_client = Client(self.sim, "client0", self.profile)
        #: Fault-injection hook (a FaultInjector, or None); consulted on
        #: every inter-host transfer.
        self.faults = None
        # RADOS orders mutations per object at the PG: concurrent writes
        # to one object serialise.
        self._write_locks: Dict[ObjectKey, Resource] = {}
        # PGs whose acting set changed under live data (expansion /
        # decommission).  While an entry is active, IO for the PG runs
        # against the union of old+new locations; the rebalance engine
        # (repro.cluster.rebalance) migrates the data and retires it.
        self._active_remaps: Dict[Tuple[int, int], "PgRemap"] = {}
        # Callbacks fired after recovery / rebalance rewrites stored
        # objects (see notify_repaired): layers holding decoded caches
        # above the substrate (e.g. the dedup tier's chunk-map and
        # RefSet LRUs) register here to drop state the repair may have
        # replaced underneath them.
        self._repair_listeners: List[Callable[[], None]] = []

    def add_repair_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired whenever stored objects may have
        been rewritten outside the normal client I/O path."""
        self._repair_listeners.append(listener)

    def notify_repaired(self) -> None:
        """Tell listeners that recovery/rebalance rewrote objects."""
        for listener in self._repair_listeners:
            listener()

    def _write_lock(self, key: ObjectKey) -> Resource:
        lock = self._write_locks.get(key)
        if lock is None:
            lock = Resource(
                self.sim,
                capacity=1,
                label=f"rados.write:{key.pool_id}/{key.pg}/{key.name}",
            )
            self._write_locks[key] = lock
        return lock

    # -- topology -----------------------------------------------------------

    def add_host(self, name: str, num_osds: int, rack: str = "default") -> Node:
        """Add a server with ``num_osds`` OSDs to the cluster."""
        if name in self.nodes:
            raise ValueError(f"duplicate host name {name!r}")
        node = Node(self.sim, name, self.profile)
        self.nodes[name] = node
        for _ in range(num_osds):
            osd_id = self.cluster_map.add_osd(name, rack=rack)
            osd = OSD(
                self.sim, osd_id, node, self.cluster_map.osds[osd_id], self.profile
            )
            # An attached fault injector only wires the OSDs that exist
            # at attach time; hosts added online inherit the hook here
            # (getattr: __init__ builds the seed hosts before .faults).
            osd.faults = getattr(self, "faults", None)
            self.osds[osd_id] = osd
        return node

    def client(self, name: str) -> Client:
        """Create an additional client host."""
        return Client(self.sim, name, self.profile)

    def create_pool(
        self,
        name: str,
        redundancy=None,
        pg_num: Optional[int] = None,
        failure_domain: str = "host",
    ) -> Pool:
        """Create a pool (default: 2-way replication, host domains)."""
        if name in self.pools:
            raise ValueError(f"duplicate pool name {name!r}")
        if redundancy is None:
            redundancy = Replicated(2)
        pool = Pool(
            pool_id=self._next_pool_id,
            name=name,
            redundancy=redundancy,
            pg_num=pg_num if pg_num is not None else self.default_pg_num,
            crush=self.crush,
            failure_domain=failure_domain,
        )
        self._next_pool_id += 1
        self.pools[name] = pool
        return pool

    def object_key(self, pool: Pool, oid: str) -> ObjectKey:
        """The fully qualified key for an object name in ``pool``."""
        return ObjectKey(pool.pool_id, pool.pg_of(oid), oid)

    # -- acting-set helpers ---------------------------------------------------

    def _remap_for(self, pool: Pool, pg: int) -> Optional["PgRemap"]:
        """The active remap covering ``(pool, pg)``, if any."""
        if not self._active_remaps:
            return None
        return self._active_remaps.get((pool.pool_id, pg))

    def _acting_osds(self, pool: Pool, oid: str) -> List[OSD]:
        remap = self._remap_for(pool, pool.pg_of(oid))
        if remap is not None:
            # Mid-remap, data may sit on the old acting set, the new
            # one, or both: IO runs against the union (old first, so
            # established copies keep serving) until the rebalance
            # engine retires the remap.
            return [self.osds[i] for i in remap.union_ids() if i in self.osds]
        return [self.osds[i] for i in pool.acting_set_for(oid)]

    def acting_osds(self, pool: Pool, oid: str) -> List[OSD]:
        """Every OSD that may hold a copy of ``oid`` right now.

        The CRUSH acting set — widened to the old+new union while the
        object's PG is mid-remap.  Callers that locate copies by probing
        stores (the dedup tier's holder loops, scrub, space accounting)
        must use this rather than ``pool.acting_set_for`` directly, or
        they would miss objects still parked on a pre-remap acting set.
        """
        return self._acting_osds(pool, oid)

    def _up_subset(self, osds: Iterable[OSD]) -> List[OSD]:
        # Replicas rejoining after a crash hold possibly-stale contents
        # until recovery reconciles them; ordering them last keeps them
        # out of the primary role (stable within each class).
        return sorted((o for o in osds if o.up), key=lambda o: o.needs_backfill)

    def _primary(self, pool: Pool, oid: str) -> OSD:
        acting = self._acting_osds(pool, oid)
        up = self._up_subset(acting)
        if not up:
            raise NotEnoughReplicas(f"no up OSD for {oid!r} in pool {pool.name!r}")
        if self._active_remaps and self._remap_for(pool, pool.pg_of(oid)) is not None:
            # Prefer a member that actually holds the object: mid-remap
            # the nominal first member may not have received it yet.
            key = self.object_key(pool, oid)
            holders = [o for o in up if o.store.exists(key)]
            if holders:
                return holders[0]
        return up[0]

    # -- network helper ---------------------------------------------------------

    def _transfer(self, src_nic: Nic, dst_nic: Nic, nbytes: int):
        """Process: move ``nbytes`` between two NICs (store-and-forward).

        Raises :class:`~repro.faults.errors.NetworkPartitionError` when
        a fault injector holds the two hosts partitioned.
        """
        if src_nic is dst_nic:
            return
        if self.faults is not None:
            self.faults.check_link(src_nic, dst_nic)
        yield from src_nic.send(nbytes)
        yield self.sim.timeout(src_nic.spec.latency)
        yield from dst_nic.receive(nbytes)

    def _rpc_latency(self):
        """Process: one small control message (request or ack)."""
        yield self.sim.timeout(self.profile.nic.latency)

    # -- replicated data path -----------------------------------------------------

    def submit(
        self,
        pool: Pool,
        oid: str,
        txn: Transaction,
        client: Optional[Client] = None,
        span=NULL_SPAN,
    ):
        """Process: apply ``txn`` atomically on every replica of ``oid``.

        This is the self-contained-object workhorse: chunk-map updates,
        reference counts, dirty flags, and data all travel in one
        transaction, so replication and recovery cover dedup metadata
        with no extra machinery (paper §4.1).

        Replication is all-or-nothing: every replica first *prepares*
        (transfers, charges device time, runs fault hooks — anything
        that can fail), and only when all prepares succeed does the
        transaction *commit* on each replica, instantly.  A transient
        error or crash during prepare thus leaves no replica mutated,
        so a caller's retry can never diverge the copies.  A replica
        that dies between its prepare and the commit point is simply
        skipped — it rejoins stale and recovery reconciles it, exactly
        as for a crash before the write.

        On an erasure-coded pool any mutation is a full-stripe
        read-modify-write (decode, apply, re-encode, rewrite all
        shards) — the cost that makes EC random writes so slow in the
        paper's Figure 12.
        """
        with span.child(
            "rados.submit", pool=pool.name, pg=pool.pg_of(oid), ops=len(txn)
        ) as s:
            if pool.is_ec:
                yield from self._ec_submit(pool, oid, txn, client)
                return
            client = client or self._default_client
            remap = self._remap_for(pool, pool.pg_of(oid))
            if remap is not None:
                yield from self._submit_remapped(pool, oid, txn, client, s)
                return
            acting = self._acting_osds(pool, oid)
            up = self._up_subset(acting)
            if len(up) < pool.redundancy.min_size:
                raise NotEnoughReplicas(
                    f"{len(up)}/{len(acting)} replicas up; need {pool.redundancy.min_size}"
                )
            primary = up[0]
            payload = txn.io_bytes
            s.tag(osd=primary.osd_id, replicas=len(up), nbytes=payload)
            yield from self._transfer(client.nic, primary.node.nic, payload)
            lock = self._write_lock(self.object_key(pool, oid))
            yield lock.acquire()
            try:
                jobs = []
                for osd in up:
                    jobs.append(
                        self.sim.process(self._replica_prepare(primary, osd, txn, payload))
                    )
                yield self.sim.all_of(jobs)
                # Commit point: all replicas prepared, none mutated yet.
                # Applying is instantaneous, so no fault can interleave and
                # split the copies.  An OSD that crashed after its prepare
                # completed is skipped (it will rejoin stale and be
                # reconciled by recovery), but losing quorum aborts.
                survivors = [osd for osd in up if osd.up]
                if len(survivors) < pool.redundancy.min_size:
                    raise NotEnoughReplicas(
                        f"{len(survivors)}/{len(acting)} replicas survived prepare; "
                        f"need {pool.redundancy.min_size}"
                    )
                for osd in survivors:
                    osd.commit_transaction(txn)
            finally:
                lock.release()
            yield from self._rpc_latency()  # ack to client

    def submit_batch(
        self, pool: Pool, items, client: Optional[Client] = None, span=NULL_SPAN
    ):
        """Process: apply many ``(oid, txn)`` pairs with one prepared
        round per placement group.

        The multi-op companion of :meth:`submit`: items are grouped by
        PG, each group's transactions are merged into a single
        transaction, and the same prepare/commit protocol runs once per
        group instead of once per item — collapsing N refcount-sized
        round trips into one prepared transaction per PG.

        The two-phase guarantee extends across the *whole batch*: every
        replica of every group prepares before any group commits, so a
        transient fault anywhere during prepare leaves no object on any
        OSD mutated and the caller can retry the batch as a unit.  (As
        in :meth:`submit`, an OSD that dies after its prepare is
        skipped at commit as long as each group keeps quorum.)

        On an erasure-coded pool each mutation is an independent
        full-stripe read-modify-write, so nothing merges; items are
        applied sequentially and a mid-batch fault leaves a committed
        prefix — callers that need batch atomicity on EC must undo
        (the dedup tier falls back to per-op commits there).
        """
        items = [(oid, txn) for oid, txn in items if len(txn)]
        if not items:
            return
        if len(items) == 1:
            yield from self.submit(pool, items[0][0], items[0][1], client, span=span)
            return
        with span.child(
            "rados.submit_batch", pool=pool.name, items=len(items)
        ) as s:
            if pool.is_ec:
                for oid, txn in items:
                    yield from self._ec_submit(pool, oid, txn, client)
                return
            client = client or self._default_client
            if self._active_remaps and any(
                self._remap_for(pool, pool.pg_of(oid)) is not None
                for oid, _ in items
            ):
                yield from self._submit_batch_remapped(pool, items, client, s)
                return
            groups: Dict[int, List[Transaction]] = {}
            group_oids: Dict[int, str] = {}
            for oid, txn in items:
                pg = pool.pg_of(oid)
                groups.setdefault(pg, []).append(txn)
                group_oids.setdefault(pg, oid)
            s.tag(pgs=len(groups))
            plans = []  # (merged txn, acting count, up OSDs)
            for pg in sorted(groups):
                acting = self._acting_osds(pool, group_oids[pg])
                up = self._up_subset(acting)
                if len(up) < pool.redundancy.min_size:
                    raise NotEnoughReplicas(
                        f"{len(up)}/{len(acting)} replicas up for pg {pg}; "
                        f"need {pool.redundancy.min_size}"
                    )
                merged = Transaction()
                for txn in groups[pg]:
                    merged.ops.extend(txn.ops)
                plans.append((merged, len(acting), up))
            # One payload transfer per PG primary, in parallel.
            xfers = [
                self.sim.process(
                    self._transfer(client.nic, up[0].node.nic, merged.io_bytes)
                )
                for merged, _n, up in plans
            ]
            yield self.sim.all_of(xfers)
            # Per-object write locks, in deterministic order (a concurrent
            # submit holds at most one, so sorted acquisition cannot cycle).
            locks = [
                self._write_lock(key)
                for key in sorted({self.object_key(pool, oid) for oid, _ in items})
            ]
            acquired: List[Resource] = []
            try:
                for lock in locks:
                    yield lock.acquire()
                    acquired.append(lock)
                jobs = []
                for merged, _n, up in plans:
                    primary = up[0]
                    for osd in up:
                        jobs.append(
                            self.sim.process(
                                self._replica_prepare(primary, osd, merged, merged.io_bytes)
                            )
                        )
                yield self.sim.all_of(jobs)
                # Commit point for the whole batch: every group must still
                # have quorum before *any* group applies, so a lost PG
                # aborts the batch with nothing mutated.
                for merged, acting_count, up in plans:
                    survivors = [osd for osd in up if osd.up]
                    if len(survivors) < pool.redundancy.min_size:
                        raise NotEnoughReplicas(
                            f"{len(survivors)}/{acting_count} replicas survived "
                            f"prepare; need {pool.redundancy.min_size}"
                        )
                for merged, _n, up in plans:
                    for osd in up:
                        if osd.up:
                            osd.commit_transaction(merged)
            finally:
                for lock in reversed(acquired):
                    lock.release()
            yield from self._rpc_latency()  # ack to client

    def _replica_prepare(self, primary: OSD, replica: OSD, txn: Transaction, payload: int):
        if replica.node is not primary.node:
            yield from self._transfer(primary.node.nic, replica.node.nic, payload)
        yield from replica.prepare_transaction(txn)
        if replica is not primary:
            yield from self._rpc_latency()  # replica ack to primary

    # -- remapped (mid-rebalance) write path ----------------------------------

    def _remap_write_targets(self, pool: Pool, oid: str) -> List[OSD]:
        """Replicas a mid-remap write must land on.

        Existing objects: exactly the up union members that *hold* the
        object — writing to a non-holder would materialise a partial
        copy (a zero-extended overwrite) that later migration could
        mistake for the real thing.  The migrator updates holders and
        trims old copies under the same per-object lock, so the holder
        set can never change under an in-flight write.

        New objects: every up union member, so a creation needs no
        migration pass of its own (the rebalancer merely trims the
        old-side copies when it retires the PG).
        """
        key = self.object_key(pool, oid)
        up = self._up_subset(self._acting_osds(pool, oid))
        holders = [o for o in up if o.store.exists(key)]
        return holders if holders else up

    def _submit_remapped(
        self, pool: Pool, oid: str, txn: Transaction, client: Client, s
    ):
        """Process: :meth:`submit` for an object whose PG is mid-remap.

        Same two-phase prepare/commit protocol, but the target set is
        computed *inside* the per-object write lock (the rebalance
        engine mutates holder sets under that lock), so the transfer to
        the primary also happens locked.
        """
        key = self.object_key(pool, oid)
        lock = self._write_lock(key)
        yield lock.acquire()
        try:
            targets = self._remap_write_targets(pool, oid)
            if len(targets) < pool.redundancy.min_size:
                raise NotEnoughReplicas(
                    f"{len(targets)} replicas reachable mid-remap for {oid!r}; "
                    f"need {pool.redundancy.min_size}"
                )
            primary = targets[0]
            payload = txn.io_bytes
            s.tag(
                osd=primary.osd_id, replicas=len(targets), nbytes=payload,
                remapped=True,
            )
            yield from self._transfer(client.nic, primary.node.nic, payload)
            jobs = [
                self.sim.process(self._replica_prepare(primary, osd, txn, payload))
                for osd in targets
            ]
            yield self.sim.all_of(jobs)
            survivors = [osd for osd in targets if osd.up]
            if len(survivors) < pool.redundancy.min_size:
                raise NotEnoughReplicas(
                    f"{len(survivors)}/{len(targets)} replicas survived prepare; "
                    f"need {pool.redundancy.min_size}"
                )
            for osd in survivors:
                osd.commit_transaction(txn)
        finally:
            lock.release()
        yield from self._rpc_latency()  # ack to client

    def _submit_batch_remapped(self, pool: Pool, items, client: Client, s):
        """Process: :meth:`submit_batch` when any item's PG is mid-remap.

        Keeps the batch-wide two-phase guarantee (no group commits until
        every group prepared), but computes per-item target sets under
        the sorted per-object locks instead of merging per PG — holder
        sets differ per object mid-remap, so PG-level merging does not
        apply.
        """
        s.tag(remapped=True)
        locks = [
            self._write_lock(key)
            for key in sorted({self.object_key(pool, oid) for oid, _ in items})
        ]
        acquired: List[Resource] = []
        try:
            for lock in locks:
                yield lock.acquire()
                acquired.append(lock)
            plans = []  # (txn, targets)
            for oid, txn in items:
                remap = self._remap_for(pool, pool.pg_of(oid))
                if remap is None:
                    targets = self._up_subset(self._acting_osds(pool, oid))
                else:
                    targets = self._remap_write_targets(pool, oid)
                if len(targets) < pool.redundancy.min_size:
                    raise NotEnoughReplicas(
                        f"{len(targets)} replicas reachable for {oid!r}; "
                        f"need {pool.redundancy.min_size}"
                    )
                plans.append((txn, targets))
            xfers = [
                self.sim.process(
                    self._transfer(client.nic, targets[0].node.nic, txn.io_bytes)
                )
                for txn, targets in plans
            ]
            yield self.sim.all_of(xfers)
            jobs = []
            for txn, targets in plans:
                primary = targets[0]
                for osd in targets:
                    jobs.append(
                        self.sim.process(
                            self._replica_prepare(primary, osd, txn, txn.io_bytes)
                        )
                    )
            yield self.sim.all_of(jobs)
            # Batch-wide commit point (see submit_batch).
            for txn, targets in plans:
                survivors = [osd for osd in targets if osd.up]
                if len(survivors) < pool.redundancy.min_size:
                    raise NotEnoughReplicas(
                        f"{len(survivors)}/{len(targets)} replicas survived "
                        f"prepare; need {pool.redundancy.min_size}"
                    )
            for txn, targets in plans:
                for osd in targets:
                    if osd.up:
                        osd.commit_transaction(txn)
        finally:
            for lock in reversed(acquired):
                lock.release()
        yield from self._rpc_latency()  # ack to client

    def write_full(
        self,
        pool: Pool,
        oid: str,
        data: bytes,
        client: Optional[Client] = None,
        span=NULL_SPAN,
    ):
        """Process: replace the whole object payload."""
        if pool.is_ec:
            yield from self._ec_write_full(pool, oid, data, client)
            return
        key = self.object_key(pool, oid)
        txn = Transaction().write_full(key, data)
        yield from self.submit(pool, oid, txn, client, span=span)

    def write(self, pool: Pool, oid: str, offset: int, data: bytes, client: Optional[Client] = None):
        """Process: write ``data`` at ``offset`` (partial overwrite).

        On EC pools this is a full-stripe read-modify-write, which is
        exactly the penalty the paper measures for EC random writes
        (§6.4.1).
        """
        if pool.is_ec:
            yield from self._ec_partial_write(pool, oid, offset, data, client)
            return
        key = self.object_key(pool, oid)
        txn = Transaction().write(key, offset, data)
        yield from self.submit(pool, oid, txn, client)

    def remove(self, pool: Pool, oid: str, client: Optional[Client] = None):
        """Process: delete the object from every replica/shard."""
        key = self.object_key(pool, oid)
        if pool.is_ec:
            acting = self._up_subset(self._acting_osds(pool, oid))
            jobs = []
            for osd in acting:
                if osd.store.exists(key):
                    txn = Transaction().remove(key)
                    jobs.append(self.sim.process(osd.execute_transaction(txn)))
            if jobs:
                yield self.sim.all_of(jobs)
            return
        txn = Transaction().remove(key)
        yield from self.submit(pool, oid, txn, client)

    def read(
        self,
        pool: Pool,
        oid: str,
        offset: int = 0,
        length: Optional[int] = None,
        client: Optional[Client] = None,
        span=NULL_SPAN,
    ):
        """Process: read ``length`` bytes at ``offset``; returns bytes."""
        with span.child("rados.read", pool=pool.name, pg=pool.pg_of(oid)) as s:
            if pool.is_ec:
                data = yield from self._ec_read(pool, oid, client)
                if length is None:
                    return data[offset:]
                return data[offset : offset + length]
            client = client or self._default_client
            key = self.object_key(pool, oid)
            yield from self._rpc_latency()  # request
            primary, data = yield from self._read_with_failover(
                pool, oid, key, offset, length
            )
            s.tag(osd=primary.osd_id, nbytes=len(data))
            yield from self._transfer(primary.node.nic, client.nic, len(data))
            return data

    def read_batch(
        self,
        pool: Pool,
        requests,
        client: Optional[Client] = None,
        span=NULL_SPAN,
    ):
        """Process: read many ``(oid, offset, length)`` ranges with one
        request round per placement group.

        The multi-op companion of :meth:`read` (the read-side peer of
        :meth:`submit_batch`): requests are grouped by PG, and each
        group costs one request RPC, one primary read per distinct
        object (ranges of the *same* object are merged into one
        covering disk read), and one combined transfer back to the
        client — so a sequential scan over chunks co-located on a few
        primaries pays O(groups) round trips instead of O(chunks).
        Groups proceed in parallel.

        Returns a list of byte strings aligned with ``requests``.  A
        range past the stored object comes back short, exactly as with
        :meth:`read`; a missing object raises :class:`NoSuchObject` for
        the whole batch (reads are side-effect free, so callers retry
        the batch as a unit).

        On an erasure-coded pool nothing merges (every read is a
        k-shard gather + decode), so items fall back to sequential
        per-object reads.
        """
        requests = list(requests)
        if not requests:
            return []
        if len(requests) == 1:
            oid, offset, length = requests[0]
            data = yield from self.read(pool, oid, offset, length, client, span=span)
            return [data]
        with span.child(
            "rados.read_batch", pool=pool.name, items=len(requests)
        ) as s:
            client = client or self._default_client
            results: List[Optional[bytes]] = [None] * len(requests)
            if pool.is_ec:
                for i, (oid, offset, length) in enumerate(requests):
                    results[i] = yield from self.read(
                        pool, oid, offset, length, client, span=s
                    )
                return results
            groups: Dict[int, List[int]] = {}
            for i, (oid, _offset, _length) in enumerate(requests):
                groups.setdefault(pool.pg_of(oid), []).append(i)
            s.tag(pgs=len(groups))
            procs = [
                self.sim.process(
                    self._read_group(pool, requests, groups[pg], client, results)
                )
                for pg in sorted(groups)
            ]
            yield self.sim.all_of(procs)
            return results

    def _read_group(self, pool: Pool, requests, indices, client, results):
        """Process: serve one PG's share of a batched read.

        One request RPC covers the group; per distinct object the
        primary runs a single covering-range disk read (chunk objects
        are small, so over-reading the gap between two ranges of the
        same object is cheaper than a second dispatch), then the
        group's payload travels to the client as one transfer.
        """
        yield from self._rpc_latency()  # request fan-out, once per group
        by_oid: Dict[str, List[int]] = {}
        order: List[str] = []
        for i in indices:
            oid = requests[i][0]
            if oid not in by_oid:
                by_oid[oid] = []
                order.append(oid)
            by_oid[oid].append(i)
        total = 0
        source: Optional[OSD] = None
        for oid in order:
            sub = by_oid[oid]
            key = self.object_key(pool, oid)
            if any(requests[i][2] is None for i in sub):
                lo: int = 0
                span_len: Optional[int] = None
            else:
                lo = min(requests[i][1] for i in sub)
                hi = max(requests[i][1] + requests[i][2] for i in sub)
                span_len = hi - lo
            # Same failover semantics as a single read: only a primary
            # dying mid-dispatch re-resolves; injected errors belong to
            # the caller's retry layer.
            primary, data = yield from self._read_with_failover(
                pool, oid, key, lo, span_len
            )
            source = source or primary
            for i in sub:
                offset, length = requests[i][1], requests[i][2]
                rel = offset - lo
                piece = data[rel:] if length is None else data[rel : rel + length]
                results[i] = piece
                total += len(piece)
        if source is not None:
            yield from self._transfer(source.node.nic, client.nic, total)

    def _read_with_failover(self, pool: Pool, oid: str, key: ObjectKey, offset, length):
        """Process: read at the primary, failing over to the next up
        replica if the primary dies between dispatch and execution.

        Only :class:`OsdDownError` triggers failover — injected
        transient errors are the *client's* retry layer's problem (Ceph
        likewise re-peers on OSD death but returns EIO to the client).
        """
        last_exc: Optional[BaseException] = None
        for _ in range(max(1, len(self._acting_osds(pool, oid)))):
            primary = self._primary(pool, oid)
            try:
                data = yield from primary.execute_read(key, offset, length)
                return primary, data
            except OsdDownError as exc:
                last_exc = exc
                yield from self._rpc_latency()  # redirect to next replica
        raise last_exc

    # -- metadata access -----------------------------------------------------------

    def stat(self, pool: Pool, oid: str):
        """Process: object payload size (logical size for EC)."""
        key = self.object_key(pool, oid)
        primary = self._primary(pool, oid)
        yield from self._rpc_latency()
        if pool.is_ec:
            shard = primary.store.get(key)
            return int(shard.xattrs[_EC_LEN_XATTR].decode("ascii"))
        return primary.store.stat(key)

    def exists(self, pool: Pool, oid: str) -> bool:
        """Whether any up replica holds the object (map-time check)."""
        key = self.object_key(pool, oid)
        return any(
            osd.store.exists(key)
            for osd in self._up_subset(self._acting_osds(pool, oid))
        )

    def getxattr(self, pool: Pool, oid: str, name: str):
        """Process: read one xattr from the primary."""
        key = self.object_key(pool, oid)
        primary = self._primary(pool, oid)
        yield from self._rpc_latency()
        return primary.store.getxattr(key, name)

    def setxattr(self, pool: Pool, oid: str, name: str, value: bytes, client=None):
        """Process: set one xattr on all replicas/shards."""
        key = self.object_key(pool, oid)
        if pool.is_ec:
            acting = self._up_subset(self._acting_osds(pool, oid))
            jobs = [
                self.sim.process(
                    osd.execute_transaction(Transaction().setxattr(key, name, value))
                )
                for osd in acting
                if osd.store.exists(key)
            ]
            if jobs:
                yield self.sim.all_of(jobs)
            return
        yield from self.submit(pool, oid, Transaction().setxattr(key, name, value), client)

    def omap_get(self, pool: Pool, oid: str, name: str):
        """Process: read one omap value from the primary."""
        key = self.object_key(pool, oid)
        primary = self._primary(pool, oid)
        yield from self._rpc_latency()
        return primary.store.omap_get(key, name)

    def omap_keys(self, pool: Pool, oid: str) -> List[str]:
        """Map-time snapshot of omap keys on the primary."""
        key = self.object_key(pool, oid)
        primary = self._primary(pool, oid)
        return list(primary.store.get(key).omap.keys())

    # -- EC data path -------------------------------------------------------------

    def _ec_acting_for_write(self, pool: Pool, oid: str) -> List[Optional[OSD]]:
        # Always the *strict* CRUSH acting set: shard index == slot
        # position, so a mid-remap stripe write lands whole on the new
        # acting set (the parked old shards are purged under the same
        # lock — see _purge_parked_ec_copies).
        acting = [self.osds[i] for i in pool.acting_set_for(oid)]
        up = [o if o.up else None for o in acting]
        if sum(o is not None for o in up) < pool.redundancy.min_size:
            raise NotEnoughReplicas(
                f"only {sum(o is not None for o in up)} shards writable for {oid!r}"
            )
        return up

    def _ec_write_full(self, pool: Pool, oid: str, data: bytes, client: Optional[Client]):
        client = client or self._default_client
        key = self.object_key(pool, oid)
        primary = next(o for o in self._ec_acting_for_write(pool, oid) if o is not None)
        yield from self._transfer(client.nic, primary.node.nic, len(data))
        lock = self._write_lock(key)
        yield lock.acquire()
        try:
            yield from self._ec_write_full_locked(pool, oid, data, client)
            self._purge_parked_ec_copies(pool, oid, key)
        finally:
            lock.release()
        yield from self._rpc_latency()

    def _ec_write_full_locked(
        self,
        pool: Pool,
        oid: str,
        data: bytes,
        client: Optional[Client],
        extra_xattrs: Optional[Dict[str, bytes]] = None,
        omap: Optional[Dict[str, bytes]] = None,
        replace_metadata: bool = False,
    ):
        key = self.object_key(pool, oid)
        slots = self._ec_acting_for_write(pool, oid)
        primary = next(o for o in slots if o is not None)
        # Encode on the primary's CPU.
        yield from primary.node.cpu.execute(primary.node.cpu.spec.ec_time(len(data)))
        shards = pool.codec.encode(data)
        internal = (_EC_LEN_XATTR, _EC_IDX_XATTR, _EC_CRC_XATTR)
        planned = []
        for idx, osd in enumerate(slots):
            if osd is None:
                continue  # degraded: this shard is skipped until recovery
            txn = (
                Transaction()
                .write_full(key, shards[idx])
                .setxattr(key, _EC_LEN_XATTR, str(len(data)).encode("ascii"))
                .setxattr(key, _EC_IDX_XATTR, str(idx).encode("ascii"))
                .setxattr(key, _EC_CRC_XATTR, _shard_crc(shards[idx]))
            )
            if replace_metadata and osd.store.exists(key):
                # Full-stripe RMW replaces user metadata: drop keys the
                # new state no longer carries.
                current = osd.store.get(key)
                for name in current.xattrs:
                    if name not in internal and name not in (extra_xattrs or {}):
                        txn.rmxattr(key, name)
                stale_omap = [
                    name for name in current.omap if name not in (omap or {})
                ]
                if stale_omap:
                    txn.omap_rm(key, stale_omap)
            for name, value in (extra_xattrs or {}).items():
                txn.setxattr(key, name, value)
            if omap:
                txn.omap_set(key, omap)
            planned.append((osd, txn, len(shards[idx])))
        # Same two-phase shape as replicated submit: prepare every
        # shard (can fail), then commit instantly so a mid-stripe fault
        # cannot leave mixed-generation shards behind.
        jobs = [
            self.sim.process(self._replica_prepare(primary, osd, txn, nbytes))
            for osd, txn, nbytes in planned
        ]
        yield self.sim.all_of(jobs)
        for osd, txn, _ in planned:
            if osd.up:
                osd.commit_transaction(txn)

    def _ec_read(self, pool: Pool, oid: str, client: Optional[Client]):
        client = client or self._default_client
        key = self.object_key(pool, oid)
        acting = self._acting_osds(pool, oid)
        holders = [o for o in acting if o.up and o.store.exists(key)]
        if not holders:
            raise NoSuchObject(key)
        # Mid-remap the union can hold the same shard index twice (an
        # old copy and its migrated twin): pick one holder per distinct
        # index — union order is old-first, and writes purge parked old
        # shards, so duplicates are always the same generation.
        by_idx: Dict[int, OSD] = {}
        for osd in holders:
            idx = int(osd.store.getxattr(key, _EC_IDX_XATTR).decode("ascii"))
            by_idx.setdefault(idx, osd)
        if len(by_idx) < pool.codec.k:
            raise NotEnoughReplicas(
                f"only {len(by_idx)} distinct shards readable for {oid!r}; "
                f"need {pool.codec.k}"
            )
        primary = holders[0]
        length = int(primary.store.getxattr(key, _EC_LEN_XATTR).decode("ascii"))
        chosen = [by_idx[idx] for idx in sorted(by_idx)][: pool.codec.k]
        yield from self._rpc_latency()  # request fan-out
        jobs = [
            self.sim.process(self._ec_fetch_shard(primary, osd, key))
            for osd in chosen
        ]
        results = yield self.sim.all_of(jobs)
        slots: List[Optional[bytes]] = [None] * pool.codec.n
        for idx, shard in results:
            slots[idx] = shard
        # Decode on the primary's CPU, then return to the client.
        yield from primary.node.cpu.execute(primary.node.cpu.spec.ec_time(length))
        data = pool.codec.decode(slots, length)
        yield from self._transfer(primary.node.nic, client.nic, length)
        return data

    def _ec_fetch_shard(self, primary: OSD, holder: OSD, key: ObjectKey):
        shard = yield from holder.execute_read(key)
        idx = int(holder.store.getxattr(key, _EC_IDX_XATTR).decode("ascii"))
        if holder.node is not primary.node:
            yield from self._transfer(holder.node.nic, primary.node.nic, len(shard))
        return (idx, shard)

    def _ec_submit(self, pool: Pool, oid: str, txn: Transaction, client: Optional[Client]):
        """Process: apply a transaction on an EC pool via full-stripe RMW."""
        from .objectstore import ObjectStore, StoredObject

        client = client or self._default_client
        key = self.object_key(pool, oid)
        yield from self._transfer(client.nic, self._primary(pool, oid).node.nic, txn.io_bytes)
        lock = self._write_lock(key)
        yield lock.acquire()
        try:
            acting = self._acting_osds(pool, oid)
            holder = next(
                (o for o in acting if o.up and o.store.exists(key)), None
            )
            scratch = ObjectStore()
            if holder is not None:
                data = yield from self._ec_read_internal(pool, oid)
                current = holder.store.get(key)
                xattrs = {
                    k: v
                    for k, v in current.xattrs.items()
                    if k not in (_EC_LEN_XATTR, _EC_IDX_XATTR)
                }
                scratch.put_object(
                    key,
                    StoredObject(
                        data=bytearray(data),
                        xattrs=xattrs,
                        omap=dict(current.omap),
                    ),
                )
            scratch.apply(txn)
            if not scratch.exists(key):
                yield from self._ec_remove_locked(pool, oid, key)
                return
            obj = scratch.get(key)
            yield from self._ec_write_full_locked(
                pool,
                oid,
                bytes(obj.data),
                client,
                extra_xattrs=dict(obj.xattrs),
                omap=dict(obj.omap),
                replace_metadata=True,
            )
            self._purge_parked_ec_copies(pool, oid, key)
        finally:
            lock.release()
        yield from self._rpc_latency()

    def _ec_read_internal(self, pool: Pool, oid: str):
        """Process: EC read delivered to the primary (no client hop)."""
        acting = self._acting_osds(pool, oid)
        primary = next(o for o in acting if o.up)
        data = yield from self._ec_read(pool, oid, _NodeAsClient(primary.node))
        return data

    def _ec_remove_locked(self, pool: Pool, oid: str, key: ObjectKey):
        jobs = []
        for osd in self._up_subset(self._acting_osds(pool, oid)):
            if osd.store.exists(key):
                jobs.append(
                    self.sim.process(osd.execute_transaction(Transaction().remove(key)))
                )
        if jobs:
            yield self.sim.all_of(jobs)

    def _purge_parked_ec_copies(self, pool: Pool, oid: str, key: ObjectKey) -> None:
        """Drop shards parked outside the strict acting set (mid-remap).

        A full-stripe write lands the whole new generation on the new
        acting set, so any copy still sitting on an old-only union
        member is stale the instant the stripe commits; dropping it here
        (map-time, under the caller's write lock) keeps every reachable
        shard the same generation — the invariant _ec_read's
        distinct-index selection relies on.
        """
        remap = self._remap_for(pool, pool.pg_of(oid))
        if remap is None:
            return
        acting_ids = set(pool.acting_set_for(oid))
        for osd_id in remap.union_ids():
            if osd_id in acting_ids:
                continue
            osd = self.osds.get(osd_id)
            if osd is not None and osd.up and osd.store.exists(key):
                osd.store.delete_object(key)

    def _ec_partial_write(self, pool: Pool, oid: str, offset: int, data: bytes, client):
        key = self.object_key(pool, oid)
        yield from self._ec_submit(
            pool, oid, Transaction().write(key, offset, data), client
        )

    # -- enumeration & accounting -----------------------------------------------------

    def list_objects(self, pool: Pool) -> List[str]:
        """All object names in ``pool`` (union over all OSD stores)."""
        names: Set[str] = set()
        for osd in self.osds.values():
            for key in osd.store.keys():
                if key.pool_id == pool.pool_id:
                    names.add(key.name)
        return sorted(names)

    def pool_used_bytes(self, pool: Pool) -> int:
        """Raw bytes (all copies/shards, incl. metadata) used by ``pool``."""
        total = 0
        for osd in self.osds.values():
            for key in osd.store.keys():
                if key.pool_id == pool.pool_id:
                    total += osd.store.get(key).footprint()
        return total

    def pool_logical_bytes(self, pool: Pool) -> int:
        """Payload bytes counting each object once (primary copy)."""
        total = 0
        for oid in self.list_objects(pool):
            key = self.object_key(pool, oid)
            for osd in self._acting_osds(pool, oid):
                if osd.store.exists(key):
                    if pool.is_ec:
                        total += int(
                            osd.store.getxattr(key, _EC_LEN_XATTR).decode("ascii")
                        )
                    else:
                        total += osd.store.stat(key)
                    break
        return total

    def total_used_bytes(self) -> int:
        """Raw bytes used across every OSD."""
        return sum(osd.store.used_bytes() for osd in self.osds.values())

    # -- online elasticity ----------------------------------------------------

    def snapshot_acting_sets(self) -> Dict[Tuple[int, int], List[int]]:
        """(pool_id, pg) -> acting set under the current map.

        Take one before a topology change; :func:`~repro.cluster.rebalance.compute_remap`
        diffs it against the post-change map.
        """
        snap: Dict[Tuple[int, int], List[int]] = {}
        for pool in self.pools.values():
            for pg in range(pool.pg_num):
                snap[(pool.pool_id, pg)] = list(pool.acting_set(pg))
        return snap

    def expand(self, name: str, num_osds: int, rack: str = "default") -> "RemapDiff":
        """Add a host with ``num_osds`` OSDs *online*; returns the remap diff.

        CRUSH immediately includes the new OSDs, moving a (minimal)
        subset of PGs onto them.  Every moved PG becomes an active
        remap: IO keeps flowing against the old+new union while a
        :class:`~repro.cluster.rebalance.Rebalancer` migrates the data.
        """
        before = self.snapshot_acting_sets()
        self.add_host(name, num_osds, rack=rack)
        return self._register_topology_change(before)

    def decommission_osd(self, osd_id: int) -> "RemapDiff":
        """Take an OSD out of placement *online*; returns the remap diff.

        The OSD keeps serving as a migration source (it is out, not
        down); once every remap that references it has retired and its
        store has drained, :meth:`finalize_decommission` removes it.
        """
        if osd_id not in self.osds:
            raise KeyError(f"unknown osd.{osd_id}")
        if not self.cluster_map.osds[osd_id].in_cluster:
            raise ValueError(f"osd.{osd_id} is already out of placement")
        before = self.snapshot_acting_sets()
        self.cluster_map.mark_out(osd_id)
        self.cluster_map.osds[osd_id].decommissioned = True
        return self._register_topology_change(before)

    def _register_topology_change(self, before: Dict[Tuple[int, int], List[int]]) -> "RemapDiff":
        from .rebalance import compute_remap

        diff = compute_remap(self, before)
        for remap in diff.remaps:
            prior = self._active_remaps.get((remap.pool_id, remap.pg))
            if prior is not None:
                # A second change landed while the PG was still mid-
                # remap: widen the sources to the prior union, keep the
                # newest destination (and the original degraded clock).
                remap = remap.chained_from(prior)
            self._active_remaps[(remap.pool_id, remap.pg)] = remap
        return diff

    def active_remaps(self) -> List["PgRemap"]:
        """The PGs currently mid-remap, in deterministic order."""
        return [self._active_remaps[k] for k in sorted(self._active_remaps)]

    def complete_remap(self, pool_id: int, pg: int) -> None:
        """Retire one PG's remap (the rebalancer verified it settled)."""
        self._active_remaps.pop((pool_id, pg), None)

    def retire_remaps(self) -> int:
        """Drop remaps whose old-side members hold nothing any more.

        When no union member outside the strict acting set holds any
        object of the PG, the union view and the strict view are the
        same, so serving from the strict map is safe.  Recovery calls
        this after healing to the current map; returns the number
        retired.
        """
        pools_by_id = {p.pool_id: p for p in self.pools.values()}
        retired = 0
        for (pool_id, pg), remap in sorted(self._active_remaps.items()):
            pool = pools_by_id.get(pool_id)
            if pool is None:
                continue
            acting_ids = set(pool.acting_set(pg))
            parked = False
            for osd_id in remap.union_ids():
                if osd_id in acting_ids:
                    continue
                osd = self.osds.get(osd_id)
                if osd is not None and osd.store.keys_in_pg(pool_id, pg):
                    parked = True
                    break
            if not parked:
                del self._active_remaps[(pool_id, pg)]
                retired += 1
        return retired

    def finalize_decommission(self, osd_id: int) -> None:
        """Remove a drained, decommissioned OSD from the cluster.

        Requires the OSD to be out of placement, unreferenced by any
        active remap, and empty — i.e. the rebalance actually finished.
        """
        osd = self.osds.get(osd_id)
        if osd is None:
            raise KeyError(f"unknown osd.{osd_id}")
        if self.cluster_map.osds[osd_id].in_cluster:
            raise ValueError(
                f"osd.{osd_id} is still in placement; decommission it first"
            )
        for (_pool_id, pg), remap in sorted(self._active_remaps.items()):
            if osd_id in remap.union_ids():
                raise ValueError(
                    f"osd.{osd_id} is still a migration source for pg {pg}"
                )
        leftover = len(list(osd.store.keys()))
        if leftover:
            raise ValueError(
                f"osd.{osd_id} still holds {leftover} object(s); "
                f"run the rebalance to completion first"
            )
        osd.node.osds.remove(osd)
        del self.osds[osd_id]
        self.cluster_map.remove_osd(osd_id)

    # -- failure injection ---------------------------------------------------------

    def fail_osd(self, osd_id: int, mark_out: bool = True) -> None:
        """Simulate an OSD failure (down, and optionally out of placement).

        The dead disk keeps its contents — they are simply unreachable —
        so the cluster can still tell "degraded" apart from "lost".
        """
        self.cluster_map.mark_down(osd_id)
        if mark_out:
            self.cluster_map.mark_out(osd_id)

    def revive_osd(self, osd_id: int) -> None:
        """Re-add a failed OSD with a fresh (empty) disk.

        Matches the paper's Table 3 methodology ("removing and re-adding
        the OSD"): the rejoining OSD starts empty and recovery backfills
        it.

        Like :meth:`restart_osd`, the OSD rejoins flagged
        ``needs_backfill`` and only :func:`~repro.cluster.recovery.recover`
        clears the flag (the single owner of that transition).  The
        empty store cannot serve reads anyway, and — crucially — the
        flag keeps the revived OSD from acting as a deletion *witness*:
        an empty acting replica that recovery would otherwise read as
        "this object was deleted while the stale holders were down",
        deleting the last real copy.
        """
        self.osds[osd_id].store = type(self.osds[osd_id].store)()
        self.osds[osd_id].needs_backfill = True
        self.cluster_map.mark_up(osd_id)
        # Re-adding cancels an auto-out, but never a decommission: an
        # administratively-out OSD stays out across daemon restarts
        # (mark_in would silently undo the drain with no remap to move
        # the data back).
        if not self.cluster_map.osds[osd_id].decommissioned:
            self.cluster_map.mark_in(osd_id)

    def restart_osd(self, osd_id: int) -> None:
        """Bring a crashed OSD back with its disk contents *intact*.

        Models a daemon restart (Ceph's down-but-in window): the disk
        survived, but any write that landed while the OSD was down is
        missing from it, and any object deleted meanwhile still lingers.
        The OSD rejoins flagged ``needs_backfill``; it is kept out of
        the primary role until :func:`~repro.cluster.recovery.recover`
        reconciles its contents against the continuously-up replicas.
        """
        self.osds[osd_id].needs_backfill = True
        self.cluster_map.mark_up(osd_id)
        # See revive_osd: a decommissioned OSD stays out across restarts.
        if not self.cluster_map.osds[osd_id].decommissioned:
            self.cluster_map.mark_in(osd_id)

    # -- sync bridge -----------------------------------------------------------------

    def run(self, gen):
        """Drive the event loop until process ``gen`` completes."""
        return self.sim.run_until_complete(self.sim.process(gen))

    def write_full_sync(self, pool: Pool, oid: str, data: bytes) -> None:
        """Synchronous :meth:`write_full` (drives the event loop)."""
        self.run(self.write_full(pool, oid, data))

    def write_sync(self, pool: Pool, oid: str, offset: int, data: bytes) -> None:
        """Synchronous :meth:`write`."""
        self.run(self.write(pool, oid, offset, data))

    def read_sync(self, pool: Pool, oid: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Synchronous :meth:`read`."""
        return self.run(self.read(pool, oid, offset, length))

    def remove_sync(self, pool: Pool, oid: str) -> None:
        """Synchronous :meth:`remove`."""
        self.run(self.remove(pool, oid))

    def submit_sync(self, pool: Pool, oid: str, txn: Transaction) -> None:
        """Synchronous :meth:`submit`."""
        self.run(self.submit(pool, oid, txn))

    def submit_batch_sync(self, pool: Pool, items) -> None:
        """Synchronous :meth:`submit_batch`."""
        self.run(self.submit_batch(pool, items))
