"""Online cluster elasticity: remap diffs and the rebalance engine.

When the topology changes — :meth:`RadosCluster.expand` adds a host,
:meth:`RadosCluster.decommission_osd` marks an OSD out — CRUSH moves a
(minimal) subset of placement groups to new acting sets.  This module
owns everything between those two maps:

* :func:`compute_remap` diffs the before/after acting sets into a
  :class:`RemapDiff` of per-PG :class:`PgRemap` entries;
* while a remap is *active*, the cluster serves reads and writes
  against the **union** of the old and new locations (see
  ``RadosCluster._remap_write_targets``), so clients never notice the
  move;
* :class:`Rebalancer` drains the remaps incrementally: object by
  object, under the same per-object write lock the data path uses, it
  copies replicas (or reconstructs EC shards) onto the new acting set,
  trims the copies parked on the old one, and retires each PG's remap
  once the new set fully holds it.

The migration is *dedup-aware* by construction: chunk objects carry
their reference counts in their own xattrs (the paper's self-contained
metadata, §4.1), so moving the object moves the refcounts — there is no
separate index to keep consistent.  It is also resumable and
idempotent: every step compares content before copying, so a crash
mid-migration simply leaves work for the next pass (or for
:func:`~repro.cluster.recovery.recover`, which heals straight to the
new map and retires any remaining remaps).

Device costing reuses the recovery machinery: source disk reads,
inter-host transfers and target pushes all charge simulated time, and
an optional token-bucket rate limit paces migration traffic so the
foreground workload keeps its throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs import NULL_SPAN
from .objectstore import ObjectKey, StoredObject
from .osd import OSD, OsdDownError, OsdFullError
from .pool import Pool
from .rados import (
    NotEnoughReplicas,
    RadosCluster,
    _EC_CRC_XATTR,
    _EC_IDX_XATTR,
    _EC_LEN_XATTR,
    _shard_crc,
)
from .recovery import _charge_shard_read, _same_content

__all__ = [
    "PgRemap",
    "RemapDiff",
    "RebalanceStats",
    "Rebalancer",
    "compute_remap",
    "placement_report",
    "rebalance_sync",
]

_EC_INTERNAL = (_EC_LEN_XATTR, _EC_IDX_XATTR, _EC_CRC_XATTR)

#: Re-scan ceiling per PG per pass: each round either migrates or trims
#: something, so this only guards against a pathological livelock.
_MAX_ROUNDS = 64


@dataclass(frozen=True)
class PgRemap:
    """One placement group's move from an old acting set to a new one.

    While the remap is active the cluster reads and writes against the
    union of ``old`` and ``new`` (old first, so established copies keep
    serving); :meth:`Rebalancer` migrates the data and retires the
    entry.
    """

    pool_id: int
    pool_name: str
    pg: int
    old: Tuple[int, ...]
    new: Tuple[int, ...]
    #: Simulated time the remap was registered (start of the PG's
    #: degraded window).
    registered_at: float = 0.0

    def union_ids(self) -> List[int]:
        """Old + new acting OSDs, old first, without duplicates."""
        return list(self.old) + [i for i in self.new if i not in self.old]

    def chained_from(self, prior: "PgRemap") -> "PgRemap":
        """Fold a newer topology change onto a still-active remap.

        Sources accumulate (data may sit anywhere the prior union
        reached) while the destination is always the latest map; the
        degraded window keeps the *first* registration time.
        """
        return PgRemap(
            pool_id=self.pool_id,
            pool_name=self.pool_name,
            pg=self.pg,
            old=tuple(prior.union_ids()),
            new=self.new,
            registered_at=prior.registered_at,
        )

    def describe(self) -> str:
        """One human-readable line for the diff listing."""
        return (
            f"pool {self.pool_name!r} pg {self.pg}:"
            f" {list(self.old)} -> {list(self.new)}"
        )


@dataclass
class RemapDiff:
    """The PG movements one topology change implies."""

    remaps: List[PgRemap] = field(default_factory=list)
    #: Cluster-map epoch the new acting sets were computed at.
    epoch: int = 0

    @property
    def pgs_remapped(self) -> int:
        """Number of placement groups that must move."""
        return len(self.remaps)

    def describe(self) -> List[str]:
        """Human-readable listing, one line per remapped PG."""
        return [remap.describe() for remap in self.remaps]


def compute_remap(
    cluster: RadosCluster, before: Dict[Tuple[int, int], List[int]]
) -> RemapDiff:
    """Diff a :meth:`RadosCluster.snapshot_acting_sets` against the
    current map; returns the PGs whose acting sets changed."""
    diff = RemapDiff(epoch=cluster.cluster_map.epoch)
    for pool in cluster.pools.values():
        for pg in range(pool.pg_num):
            old = before.get((pool.pool_id, pg), [])
            new = pool.acting_set(pg)
            if list(old) != list(new):
                diff.remaps.append(
                    PgRemap(
                        pool_id=pool.pool_id,
                        pool_name=pool.name,
                        pg=pg,
                        old=tuple(old),
                        new=tuple(new),
                        registered_at=cluster.sim.now,
                    )
                )
    return diff


@dataclass
class RebalanceStats:
    """Outcome of a rebalance run (the issue's migration metrics)."""

    #: PG remaps retired by this rebalancer.
    pgs_completed: int = 0
    #: Replica copies / EC shards pushed onto new acting sets.
    objects_moved: int = 0
    #: Payload bytes pushed (the migration traffic the rate limit paces).
    bytes_moved: int = 0
    #: Copies deleted from old locations after the new set held them.
    objects_trimmed: int = 0
    #: Migrations abandoned mid-flight (device died / quorum lost); the
    #: PG stays active and a later pass resumes it.
    tasks_failed: int = 0
    #: Full scan passes over the active remaps.
    passes: int = 0
    #: Longest observed per-PG degraded window (registration of the
    #: remap to its retirement), in simulated seconds.
    degraded_seconds: float = 0.0
    #: Migration bytes broken down by pool name.
    bytes_by_pool: Dict[str, int] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        """Simulated seconds the rebalance spent."""
        return self.finished_at - self.started_at

    def summary_lines(self) -> List[str]:
        """Human-readable counter dump (CLI output)."""
        by_pool = ", ".join(
            f"{name}: {nbytes / 1024:.0f}KiB"
            for name, nbytes in sorted(self.bytes_by_pool.items())
        )
        return [
            f"PGs completed      {self.pgs_completed}"
            f" in {self.passes} pass(es)",
            f"copies moved       {self.objects_moved}"
            f" ({self.bytes_moved / 1024:.0f} KiB"
            + (f"; {by_pool}" if by_pool else "")
            + ")",
            f"old copies trimmed {self.objects_trimmed}",
            f"tasks failed       {self.tasks_failed}",
            f"degraded window    {self.degraded_seconds:.3f}s (longest PG)",
        ]


class Rebalancer:
    """Incremental, rate-limited migration engine for active remaps.

    Drives each active :class:`PgRemap` to completion: per object,
    under the object's write lock, ensure every (up) member of the new
    acting set holds an identical copy/its shard, then trim the copies
    parked on old-only members, and finally retire the PG's remap.
    Safe to run while the workload is live — reads and writes keep
    using the union view until the remap retires — and safe to re-run
    after a crash: already-migrated objects are detected by content and
    skipped.

    Parameters
    ----------
    cluster:
        The substrate whose ``_active_remaps`` to drain.
    rate_limit_bps:
        Optional migration budget in bytes per simulated second; after
        each copy the engine sleeps ``nbytes / rate`` so foreground I/O
        keeps its share of the devices.  ``None`` migrates flat out.
    """

    def __init__(
        self,
        cluster: RadosCluster,
        rate_limit_bps: Optional[float] = None,
    ):
        if rate_limit_bps is not None and rate_limit_bps <= 0:
            raise ValueError(f"rate_limit_bps must be positive, got {rate_limit_bps}")
        self.cluster = cluster
        self.rate_limit_bps = rate_limit_bps
        self.stats = RebalanceStats()

    # -- driving --------------------------------------------------------------

    def run(self, span=NULL_SPAN):
        """Process: one pass over every active remap; returns stats.

        PGs whose migration hits a fault (source died, quorum lost)
        stay active for a later pass; everything else completes and
        retires.
        """
        sim = self.cluster.sim
        if self.stats.passes == 0:
            self.stats.started_at = sim.now
        self.stats.passes += 1
        with span.child(
            "rebalance.pass", n=self.stats.passes,
            remaps=len(self.cluster._active_remaps),
        ) as pass_span:
            keys = sorted(self.cluster._active_remaps)
            pools_by_id = {p.pool_id: p for p in self.cluster.pools.values()}
            for pool_id, pg in keys:
                remap = self.cluster._active_remaps.get((pool_id, pg))
                if remap is None:  # retired concurrently (e.g. by recovery)
                    continue
                pool = pools_by_id[pool_id]
                with pass_span.child(
                    "rebalance.pg", pool=remap.pool_name, pg=pg
                ) as pg_span:
                    complete = yield from self._migrate_pg(pool, pg, remap, pg_span)
                    pg_span.tag(complete=complete)
                if complete:
                    self.cluster.complete_remap(pool_id, pg)
                    self.stats.pgs_completed += 1
                    self.stats.degraded_seconds = max(
                        self.stats.degraded_seconds, sim.now - remap.registered_at
                    )
        # Migration copies (and trims) object state outside the client
        # I/O path; let cache-holding layers above drop decoded state.
        self.cluster.notify_repaired()
        self.stats.finished_at = sim.now
        return self.stats

    def run_to_completion(self, span=NULL_SPAN, max_passes: int = 16, settle: float = 0.1):
        """Process: run passes until no remap stays active.

        Between passes (a PG can stay active when a device involved is
        down or faulting) the engine backs off ``settle`` simulated
        seconds.  Gives up after ``max_passes`` — a final
        :func:`~repro.cluster.recovery.recover` can always finish the
        job, since recovery heals straight to the new map.
        """
        for _ in range(max_passes):
            yield from self.run(span=span)
            if not self.cluster._active_remaps:
                break
            with span.child("rebalance.settle", seconds=settle):
                yield self.cluster.sim.timeout(settle)
        return self.stats

    # -- per-PG migration ------------------------------------------------------

    def _migrate_pg(self, pool: Pool, pg: int, remap: PgRemap, span):
        """Process: migrate one PG; returns True when fully settled."""
        for _ in range(_MAX_ROUNDS):
            pending = self._pending_objects(pool, pg, remap)
            if not pending:
                return True
            progressed = False
            failed = False
            for name in pending:
                try:
                    moved = yield from self._migrate_object(
                        pool, pg, name, remap, span
                    )
                    progressed = progressed or moved
                except (OsdDownError, OsdFullError, NotEnoughReplicas):
                    self.stats.tasks_failed += 1
                    failed = True
                except Exception as exc:
                    if not getattr(exc, "retryable", False):
                        raise
                    self.stats.tasks_failed += 1
                    failed = True
            if failed or not progressed:
                return False
        return False

    def _pending_objects(self, pool: Pool, pg: int, remap: PgRemap) -> List[str]:
        """Objects in this PG not yet settled on the new acting set.

        Enumerates every union member's store — including *down* OSDs,
        whose unreachable copies must keep the PG active (completing
        the remap while the only copy sits on a dead disk would orphan
        it)."""
        names = set()
        for osd_id in remap.union_ids():
            osd = self.cluster.osds.get(osd_id)
            if osd is None:
                continue
            for key in osd.store.keys_in_pg(pool.pool_id, pg):
                names.add(key.name)
        return sorted(n for n in names if not self._settled(pool, pg, n, remap))

    def _settled(self, pool: Pool, pg: int, name: str, remap: PgRemap) -> bool:
        """Map-time check: does the new acting set fully own the object?"""
        cluster = self.cluster
        key = ObjectKey(pool.pool_id, pg, name)
        union = [
            cluster.osds[i] for i in remap.union_ids() if i in cluster.osds
        ]
        up_holders = [o for o in union if o.up and o.store.exists(key)]
        down_holders = [o for o in union if not o.up and o.store.exists(key)]
        if not up_holders:
            # Either deleted everywhere, or only unreachable copies
            # remain — the latter must keep the PG active until the
            # holder restarts (recovery then reconciles or trims it).
            return not down_holders
        new_ids = set(remap.new)
        if any(o.up and o.store.exists(key) for o in union if o.osd_id not in new_ids):
            return False  # a live parked copy still needs trimming
        new_targets = [cluster.osds[i] for i in remap.new if i in cluster.osds]
        if any(not o.up for o in new_targets):
            return False  # cannot vouch for a down target's copy
        if not all(o.store.exists(key) for o in new_targets):
            return False
        if pool.is_ec:
            for idx, osd in enumerate(new_targets):
                have = int(
                    osd.store.getxattr(key, _EC_IDX_XATTR).decode("ascii")
                )
                if have != idx:
                    return False
            return True
        first = new_targets[0].store.get(key)
        return all(
            _same_content(first, o.store.get(key)) for o in new_targets[1:]
        )

    # -- per-object migration --------------------------------------------------

    def _migrate_object(self, pool: Pool, pg: int, name: str, remap: PgRemap, span):
        """Process: settle one object onto the new acting set.

        Runs under the object's write lock — the same lock the data
        path takes — so a migration never interleaves with a client
        write and copies can never diverge.  Returns True when any
        copy moved or was trimmed (progress tracking).
        """
        cluster = self.cluster
        key = ObjectKey(pool.pool_id, pg, name)
        lock = cluster._write_lock(key)
        yield lock.acquire()
        try:
            if pool.is_ec:
                moved = yield from self._migrate_ec_locked(pool, key, remap, span)
            else:
                moved = yield from self._migrate_replicated_locked(
                    pool, key, remap, span
                )
        finally:
            lock.release()
        return moved

    def _union_holders(self, key: ObjectKey, remap: PgRemap):
        cluster = self.cluster
        union = [
            cluster.osds[i] for i in remap.union_ids() if i in cluster.osds
        ]
        up_holders = [o for o in union if o.up and o.store.exists(key)]
        down_holders = [o for o in union if not o.up and o.store.exists(key)]
        # Continuously-up copies are authoritative; a restarted
        # (needs_backfill) holder may carry stale bytes.
        ordered = [o for o in up_holders if not o.needs_backfill] + [
            o for o in up_holders if o.needs_backfill
        ]
        return union, ordered, down_holders

    def _migrate_replicated_locked(self, pool: Pool, key: ObjectKey, remap: PgRemap, span):
        cluster = self.cluster
        union, holders, down_holders = self._union_holders(key, remap)
        if not holders:
            if down_holders:
                raise OsdDownError(down_holders[0].osd_id)
            return False  # deleted while we scanned
        source = holders[0]
        new_targets = [cluster.osds[i] for i in remap.new]
        for target in new_targets:
            if not target.up:
                raise OsdDownError(target.osd_id)
        moved = False
        for target in new_targets:
            if target is source:
                continue
            if target.store.exists(key) and _same_content(
                target.store.get(key), source.store.get(key)
            ):
                continue  # idempotent resume: this copy already landed
            obj = source.store.get(key).clone()
            nbytes = obj.footprint()
            with span.child(
                "rebalance.copy", src=source.osd_id, dst=target.osd_id, nbytes=nbytes
            ):
                source.op_reads += 1
                yield from source.disk.read(max(nbytes, 1))
                if source.node is not target.node:
                    yield from cluster._transfer(
                        source.node.nic, target.node.nic, nbytes
                    )
                yield from target.execute_push(key, obj)
            self._account(pool, nbytes)
            moved = True
            yield from self._throttle(nbytes, span)
        moved = self._trim_parked(key, union, remap) or moved
        return moved

    def _migrate_ec_locked(self, pool: Pool, key: ObjectKey, remap: PgRemap, span):
        cluster = self.cluster
        union, holders, down_holders = self._union_holders(key, remap)
        if not holders:
            if down_holders:
                raise OsdDownError(down_holders[0].osd_id)
            return False
        by_idx: Dict[int, Tuple[OSD, bytes]] = {}
        for osd in holders:
            idx = int(osd.store.getxattr(key, _EC_IDX_XATTR).decode("ascii"))
            by_idx.setdefault(idx, (osd, osd.store.read(key)))
        if len(by_idx) < pool.codec.k:
            raise NotEnoughReplicas(
                f"only {len(by_idx)} distinct shards reachable for {key.name!r};"
                f" need {pool.codec.k}"
            )
        length = int(
            holders[0].store.getxattr(key, _EC_LEN_XATTR).decode("ascii")
        )
        src_obj = holders[0].store.get(key)
        user_xattrs = {
            n: v for n, v in src_obj.xattrs.items() if n not in _EC_INTERNAL
        }
        omap = dict(src_obj.omap)
        new_targets = [cluster.osds[i] for i in remap.new]
        for target in new_targets:
            if not target.up:
                raise OsdDownError(target.osd_id)
        sources = sorted(by_idx.items())[: pool.codec.k]
        slots: List[Optional[bytes]] = [None] * pool.codec.n
        for idx, (_osd, shard) in sources:
            slots[idx] = shard
        moved = False
        for idx, target in enumerate(new_targets):
            shard = pool.codec.reconstruct_shard(slots, idx, length)
            want = StoredObject(
                data=bytearray(shard),
                xattrs={
                    **user_xattrs,
                    _EC_LEN_XATTR: str(length).encode("ascii"),
                    _EC_IDX_XATTR: str(idx).encode("ascii"),
                    _EC_CRC_XATTR: _shard_crc(shard),
                },
                omap=dict(omap),
            )
            if target.store.exists(key) and _same_content(
                target.store.get(key), want
            ):
                continue  # idempotent resume
            with span.child(
                "rebalance.reconstruct", dst=target.osd_id, idx=idx, nbytes=len(shard)
            ):
                reads = [
                    cluster.sim.process(
                        _charge_shard_read(cluster, holder, target, len(src_shard))
                    )
                    for _i, (holder, src_shard) in sources
                ]
                yield cluster.sim.all_of(reads)
                yield from target.node.cpu.execute(
                    target.node.cpu.spec.ec_time(length)
                )
                yield from target.execute_push(key, want)
            self._account(pool, len(shard))
            moved = True
            yield from self._throttle(len(shard), span)
        moved = self._trim_parked(key, union, remap) or moved
        return moved

    def _trim_parked(self, key: ObjectKey, union: List[OSD], remap: PgRemap) -> bool:
        """Delete up old-only copies now the new acting set holds the
        object (map-time, under the caller's write lock)."""
        new_ids = set(remap.new)
        trimmed = False
        for osd in union:
            if osd.osd_id in new_ids:
                continue
            if osd.up and osd.store.exists(key):
                osd.store.delete_object(key)
                self.stats.objects_trimmed += 1
                trimmed = True
        return trimmed

    # -- costing helpers -------------------------------------------------------

    def _account(self, pool: Pool, nbytes: int) -> None:
        self.stats.objects_moved += 1
        self.stats.bytes_moved += nbytes
        self.stats.bytes_by_pool[pool.name] = (
            self.stats.bytes_by_pool.get(pool.name, 0) + nbytes
        )

    def _throttle(self, nbytes: int, span):
        """Process: pace migration traffic to the configured rate."""
        if not self.rate_limit_bps:
            return
        with span.child("rebalance.throttle", nbytes=nbytes):
            yield self.cluster.sim.timeout(nbytes / self.rate_limit_bps)


def placement_report(cluster: RadosCluster) -> List[str]:
    """Map-time placement audit; returns violations ([] means clean).

    Clean means CRUSH-clean: every object's copies sit exactly on the
    up members of its *current* acting set (no parked copies, no
    missing replicas), replicated copies are byte-identical, and EC
    shards carry the index their slot demands.
    """
    problems: List[str] = []
    for pool in cluster.pools.values():
        for name in cluster.list_objects(pool):
            key = cluster.object_key(pool, name)
            acting_ids = pool.acting_set_for(name)
            acting = [cluster.osds[i] for i in acting_ids]
            holders = sorted(
                osd.osd_id
                for osd in cluster.osds.values()
                if osd.store.exists(key)
            )
            expect = sorted(o.osd_id for o in acting if o.up)
            if holders != expect:
                problems.append(
                    f"{pool.name}/{name}: copies on {holders},"
                    f" expected up acting {expect}"
                )
                continue
            up_acting = [o for o in acting if o.up]
            if not up_acting:
                continue
            if pool.is_ec:
                for idx, osd in enumerate(acting):
                    if not osd.up:
                        continue
                    have = int(
                        osd.store.getxattr(key, _EC_IDX_XATTR).decode("ascii")
                    )
                    if have != idx:
                        problems.append(
                            f"{pool.name}/{name}: osd.{osd.osd_id} holds"
                            f" shard {have}, slot demands {idx}"
                        )
            else:
                first = up_acting[0].store.get(key)
                for osd in up_acting[1:]:
                    if not _same_content(first, osd.store.get(key)):
                        problems.append(
                            f"{pool.name}/{name}: osd.{osd.osd_id} copy"
                            f" diverges from osd.{up_acting[0].osd_id}"
                        )
    return problems


def rebalance_sync(
    cluster: RadosCluster,
    rate_limit_bps: Optional[float] = None,
    max_passes: int = 16,
) -> RebalanceStats:
    """Synchronous :class:`Rebalancer` run-to-completion helper."""
    engine = Rebalancer(cluster, rate_limit_bps=rate_limit_bps)
    return cluster.run(engine.run_to_completion(max_passes=max_passes))
