"""Data recovery and rebalancing.

When an OSD fails (or is added), CRUSH remaps the affected placement
groups and the cluster heals itself by copying replicated objects — or
reconstructing erasure-coded shards — onto the new acting sets.  The
paper's Table 3 measures exactly this: with deduplication, the bytes
that must be recovered shrink by the dedup ratio, so recovery completes
proportionally faster.

Recovery here is a real data movement on the simulated devices: reads at
the sources, network transfers, writes at the targets, all contending
with whatever else is running.  The returned :class:`RecoveryStats`
reports duration in *simulated* seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .objectstore import ObjectKey, StoredObject
from .osd import OSD, OsdDownError, OsdFullError
from .pool import Pool
from .rados import (
    RadosCluster,
    _EC_CRC_XATTR,
    _EC_IDX_XATTR,
    _EC_LEN_XATTR,
    _shard_crc,
)

__all__ = ["RecoveryStats", "plan_recovery", "recover", "recover_sync"]


@dataclass
class RecoveryStats:
    """Outcome of one recovery pass."""

    objects_recovered: int = 0
    bytes_moved: int = 0
    objects_lost: int = 0
    objects_deleted: int = 0
    #: Stale copies on restarted (needs_backfill) OSDs overwritten from
    #: a continuously-up replica.
    objects_reconciled: int = 0
    #: Copy/reconstruct tasks abandoned because a device failed mid-task
    #: (a later recovery pass picks the object up again).
    tasks_failed: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        """Simulated seconds the recovery took."""
        return self.finished_at - self.started_at


@dataclass
class _CopyTask:
    key: ObjectKey
    target: OSD
    source: Optional[OSD] = None  # replicated copy
    #: True when overwriting a stale copy on a restarted OSD (counted
    #: as reconciliation, not plain recovery).
    reconcile: bool = False
    ec_pool: Optional[Pool] = None  # EC reconstruction
    ec_index: int = -1
    ec_length: int = 0
    #: Snapshot of (shard_index, holder, shard_bytes) captured at plan
    #: time: recovery tasks run in parallel and may overwrite each
    #: other's inputs, so sources are pinned when the plan is made (the
    #: plan is computed at a single simulated instant, so the snapshot
    #: is consistent).
    ec_sources: List[Tuple[int, OSD, bytes]] = field(default_factory=list)
    #: User-level metadata snapshotted alongside the shards: every EC
    #: shard duplicates the object's xattrs/omap (that is what makes
    #: dedup refcounts self-contained), so a reconstructed shard must
    #: carry them too or the object's metadata is silently lost.
    ec_xattrs: Dict[str, bytes] = field(default_factory=dict)
    ec_omap: Dict[str, bytes] = field(default_factory=dict)


def _same_content(a: StoredObject, b: StoredObject) -> bool:
    """Whether two replicas carry identical payload and metadata."""
    return a.data == b.data and a.xattrs == b.xattrs and a.omap == b.omap


def _object_union(cluster: RadosCluster, pool: Pool) -> Dict[int, Set[str]]:
    """pg -> object names, unioned over every OSD (up or down).

    Down OSDs' contents are unreachable as recovery *sources*, but they
    still witness that an object existed, so an object whose every copy
    sits on dead disks is reported as lost rather than silently dropped.
    """
    by_pg: Dict[int, Set[str]] = {}
    for osd in cluster.osds.values():
        for key in osd.store.keys():
            if key.pool_id == pool.pool_id:
                by_pg.setdefault(key.pg, set()).add(key.name)
    return by_pg


def plan_recovery(cluster: RadosCluster) -> Tuple[List[_CopyTask], List[Tuple[OSD, ObjectKey]], int]:
    """Compute the copy/reconstruct/delete work implied by the current map.

    Returns ``(copy_tasks, deletions, lost)`` where ``lost`` counts
    objects with no surviving source.
    """
    tasks: List[_CopyTask] = []
    deletions: List[Tuple[OSD, ObjectKey]] = []
    lost = 0
    for pool in cluster.pools.values():
        union = _object_union(cluster, pool)
        for pg, names in union.items():
            acting_ids = pool.acting_set(pg)
            acting = [cluster.osds[i] for i in acting_ids]
            for name in names:
                key = ObjectKey(pool.pool_id, pg, name)
                holders = [
                    osd
                    for osd in cluster.osds.values()
                    if osd.up and osd.store.exists(key)
                ]
                # Copies on continuously-up OSDs are authoritative; a
                # restarted (needs_backfill) OSD's copy may predate the
                # outage or outlive a deletion that happened during it.
                clean_holders = [o for o in holders if not o.needs_backfill]
                if holders and not clean_holders:
                    witnesses = [
                        o for o in acting if o.up and not o.needs_backfill
                    ]
                    if witnesses:
                        # Every continuously-up acting replica lacks the
                        # object: it was deleted while the stale holders
                        # were down.  Drop the lingering copies instead
                        # of resurrecting the object.
                        for osd in holders:
                            deletions.append((osd, key))
                        continue
                if pool.is_ec:
                    # Snapshot one source shard per distinct index,
                    # preferring clean holders so a stale shard is never
                    # mixed into a decode when enough fresh ones exist.
                    by_idx: Dict[int, Tuple[OSD, bytes]] = {}
                    for osd in clean_holders + [
                        o for o in holders if o.needs_backfill
                    ]:
                        idx = int(
                            osd.store.getxattr(key, _EC_IDX_XATTR).decode("ascii")
                        )
                        by_idx.setdefault(idx, (osd, osd.store.read(key)))
                    if len(by_idx) < pool.codec.k:
                        lost += 1
                        continue
                    meta_src = (clean_holders or holders)[0].store.get(key)
                    length = int(meta_src.xattrs[_EC_LEN_XATTR].decode("ascii"))
                    ec_xattrs = {
                        n: v
                        for n, v in meta_src.xattrs.items()
                        if n not in (_EC_LEN_XATTR, _EC_IDX_XATTR, _EC_CRC_XATTR)
                    }
                    ec_omap = dict(meta_src.omap)
                    sources = [
                        (idx, osd, shard)
                        for idx, (osd, shard) in sorted(by_idx.items())
                    ][: pool.codec.k]
                    for idx, target in enumerate(acting):
                        if not target.up:
                            continue
                        reconcile = False
                        if target.store.exists(key):
                            have = int(
                                target.store.getxattr(key, _EC_IDX_XATTR).decode("ascii")
                            )
                            if have == idx:
                                if not target.needs_backfill:
                                    continue
                                # Right slot, possibly stale bytes:
                                # rebuild the shard from clean sources.
                                reconcile = True
                        tasks.append(
                            _CopyTask(
                                key=key,
                                target=target,
                                reconcile=reconcile,
                                ec_pool=pool,
                                ec_index=idx,
                                ec_length=length,
                                ec_sources=sources,
                                ec_xattrs=ec_xattrs,
                                ec_omap=ec_omap,
                            )
                        )
                else:
                    if not holders:
                        lost += 1
                        continue
                    source = (clean_holders or holders)[0]
                    for target in acting:
                        if not target.up:
                            continue
                        if target.store.exists(key):
                            if target is source or not target.needs_backfill:
                                continue
                            if _same_content(
                                target.store.get(key), source.store.get(key)
                            ):
                                continue
                            tasks.append(
                                _CopyTask(
                                    key=key,
                                    target=target,
                                    source=source,
                                    reconcile=True,
                                )
                            )
                        else:
                            tasks.append(
                                _CopyTask(key=key, target=target, source=source)
                            )
                # Objects parked on OSDs no longer in the acting set.
                for osd in holders:
                    if osd.osd_id not in acting_ids:
                        deletions.append((osd, key))
    return tasks, deletions, lost


def recover(cluster: RadosCluster, stats: Optional[RecoveryStats] = None):
    """Process: heal the cluster to match the current map; returns stats.

    Restarted OSDs (``needs_backfill``) are reconciled against the
    continuously-up replicas and their flags cleared, so by the time
    this returns every up replica of every object is identical again.
    """
    stats = stats if stats is not None else RecoveryStats()
    stats.started_at = cluster.sim.now
    tasks, deletions, lost = plan_recovery(cluster)
    stats.objects_lost = lost
    jobs = [cluster.sim.process(_run_task(cluster, task, stats)) for task in tasks]
    if jobs:
        yield cluster.sim.all_of(jobs)
    for osd, key in deletions:
        # The safety check and the delete inspect holder state that the
        # rebalance engine mutates under the per-object write lock; while
        # any PG is mid-remap, take the same lock here (mirrors _run_task)
        # so a migration can never interleave between the check and the
        # delete.  With no remaps active nothing else races recovery.
        lock = cluster._write_lock(key) if cluster._active_remaps else None
        if lock is not None:
            yield lock.acquire()
        try:
            if not osd.store.exists(key):
                continue
            if not _safe_to_delete(cluster, osd, key, stats):
                # A copy task feeding this deletion failed (target died
                # mid-push): deleting now could drop the last real copy.
                # Keep it; the next recovery pass re-plans both sides.
                continue
            osd.store.delete_object(key)
            stats.objects_deleted += 1
        finally:
            if lock is not None:
                lock.release()
    if stats.tasks_failed == 0:
        for osd in cluster.osds.values():
            if osd.up and osd.needs_backfill:
                osd.needs_backfill = False
    # PGs healed straight to the current map no longer need their
    # old+new union view; drop any remap whose old side has drained.
    cluster.retire_remaps()
    # Healing may have replaced object state (reconciling stale copies,
    # re-replicating from survivors): caches decoded from the old state
    # must not outlive it.
    cluster.notify_repaired()
    stats.finished_at = cluster.sim.now
    return stats


def _safe_to_delete(
    cluster: RadosCluster, osd: OSD, key: ObjectKey, stats: RecoveryStats
) -> bool:
    """Re-derive, at execution time, that dropping this copy is safe.

    The deletion was planned before the copy tasks ran; if tasks failed
    the acting set may not actually own the object yet.  Safe when the
    clean up acting replicas hold at least ``min_size`` copies/shards
    (the acting set owns it), or — the deleted-while-down case — when
    clean acting witnesses exist, none holds it, and no task failed.
    """
    pool = next(
        p for p in cluster.pools.values() if p.pool_id == key.pool_id
    )
    acting = [cluster.osds[i] for i in pool.acting_set(key.pg)]
    clean = [
        o for o in acting if o.up and not o.needs_backfill and o is not osd
    ]
    holders = [o for o in clean if o.store.exists(key)]
    if len(holders) >= pool.redundancy.min_size:
        return True
    if not holders:
        return bool(clean) and stats.tasks_failed == 0
    return False


def _run_task(cluster: RadosCluster, task: _CopyTask, stats: RecoveryStats):
    """Process: one recovery task, tolerant of devices failing mid-task.

    A source or target dying (or an injected transient error / full
    OSD) abandons this task only — the rest of the recovery proceeds,
    and the next pass re-plans whatever is still missing.

    While any PG is mid-remap the task runs under the object's write
    lock: a concurrent rebalance pass (or a client write routed through
    the union view) mutates holder sets under that lock, and an
    unlocked recovery push could interleave with it.  With no remaps
    active nothing else races recovery, so the lock is skipped and the
    legacy task parallelism (and its device timing) is preserved.
    """
    lock = cluster._write_lock(task.key) if cluster._active_remaps else None
    if lock is not None:
        yield lock.acquire()
    try:
        if task.ec_pool is None:
            yield from _copy_object(cluster, task, stats)
        else:
            yield from _reconstruct_shard(cluster, task, stats)
    except (OsdDownError, OsdFullError):
        stats.tasks_failed += 1
    except Exception as exc:
        if not getattr(exc, "retryable", False):
            raise
        stats.tasks_failed += 1
    finally:
        if lock is not None:
            lock.release()


def _charge_shard_read(cluster: RadosCluster, holder: OSD, target: OSD, nbytes: int):
    """Charge disk + network time for moving one source shard."""
    yield from holder.disk.read(max(nbytes, 1))
    if holder.node is not target.node:
        yield from cluster._transfer(holder.node.nic, target.node.nic, nbytes)


def _copy_object(cluster: RadosCluster, task: _CopyTask, stats: RecoveryStats):
    source, target, key = task.source, task.target, task.key
    if not source.up or not source.store.exists(key):  # raced with a failure/deletion
        stats.tasks_failed += 1
        return
    obj = source.store.get(key).clone()
    # Punched ranges (evicted cached chunks) cost nothing to move: only
    # allocated bytes hit the disk and the wire.
    moved = obj.footprint()
    source.op_reads += 1
    yield from source.disk.read(max(moved, 1))
    if source.node is not target.node:
        yield from cluster._transfer(source.node.nic, target.node.nic, moved)
    yield from target.execute_push(key, obj)
    if task.reconcile:
        stats.objects_reconciled += 1
    else:
        stats.objects_recovered += 1
    stats.bytes_moved += moved


def _reconstruct_shard(cluster: RadosCluster, task: _CopyTask, stats: RecoveryStats):
    pool, key, target, idx = task.ec_pool, task.key, task.target, task.ec_index
    length = task.ec_length
    slots: List[Optional[bytes]] = [None] * pool.codec.n
    reads = []
    for src_idx, holder, shard in task.ec_sources:
        slots[src_idx] = shard
        reads.append(
            cluster.sim.process(_charge_shard_read(cluster, holder, target, len(shard)))
        )
    yield cluster.sim.all_of(reads)
    yield from target.node.cpu.execute(target.node.cpu.spec.ec_time(length))
    shard = pool.codec.reconstruct_shard(slots, idx, length)
    obj = StoredObject(
        data=bytearray(shard),
        xattrs={
            **task.ec_xattrs,
            _EC_LEN_XATTR: str(length).encode("ascii"),
            _EC_IDX_XATTR: str(idx).encode("ascii"),
            _EC_CRC_XATTR: _shard_crc(shard),
        },
        omap=dict(task.ec_omap),
    )
    yield from target.execute_push(key, obj)
    if task.reconcile:
        stats.objects_reconciled += 1
    else:
        stats.objects_recovered += 1
    stats.bytes_moved += len(shard)


def recover_sync(cluster: RadosCluster) -> RecoveryStats:
    """Synchronous :func:`recover` (drives the event loop)."""
    return cluster.run(recover(cluster))
