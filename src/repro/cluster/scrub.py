"""Replica scrub and repair (the substrate's deep-scrub analogue).

Replicated pools: every copy of an object must be byte- and
metadata-identical across its acting set; a divergent or missing copy is
repaired from the primary.  EC pools: the stored shards must be exactly
the codec's encoding of the decoded payload (any single corrupt shard is
detected and re-derivable from the others).

Because the dedup tier's chunk maps and reference records live in
ordinary object metadata (self-contained objects), this scrub covers
dedup state with no extra code — which is precisely the paper's
argument for the design.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Tuple

from .objectstore import StoredObject
from .pool import Pool
from .rados import RadosCluster, _EC_IDX_XATTR, _EC_LEN_XATTR

__all__ = ["ReplicaScrubReport", "scrub_pool", "scrub_pool_sync", "repair_pool", "repair_pool_sync"]


def _digest(obj: StoredObject) -> bytes:
    h = hashlib.blake2b(digest_size=16)
    h.update(bytes(obj.data))
    for name in sorted(obj.xattrs):
        h.update(name.encode())
        h.update(obj.xattrs[name])
    for name in sorted(obj.omap):
        h.update(name.encode())
        h.update(obj.omap[name])
    return h.digest()


@dataclass
class ReplicaScrubReport:
    """Findings of one pool scrub."""

    objects_checked: int = 0
    #: (oid, osd_id) pairs whose copy diverges from the primary's.
    inconsistent: List[Tuple[str, int]] = field(default_factory=list)
    #: (oid, osd_id) pairs where an acting OSD lacks its copy/shard.
    missing: List[Tuple[str, int]] = field(default_factory=list)
    #: (oid, shard_index) pairs whose EC shard does not match re-encoding.
    bad_shards: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every object is fully consistent."""
        return not (self.inconsistent or self.missing or self.bad_shards)


def scrub_pool(cluster: RadosCluster, pool: Pool):
    """Process: verify replica/shard consistency of every object."""
    report = ReplicaScrubReport()
    for oid in cluster.list_objects(pool):
        key = cluster.object_key(pool, oid)
        acting = [cluster.osds[i] for i in pool.acting_set_for(oid)]
        up = [o for o in acting if o.up]
        holders = [o for o in up if o.store.exists(key)]
        if not holders:
            continue
        report.objects_checked += 1
        for osd in up:
            if not osd.store.exists(key):
                report.missing.append((oid, osd.osd_id))
        if pool.is_ec:
            yield from _scrub_ec_object(cluster, pool, oid, key, holders, report)
        else:
            primary = holders[0]
            yield from primary.disk.read(max(primary.store.get(key).footprint(), 1))
            want = _digest(primary.store.get(key))
            for osd in holders[1:]:
                yield from osd.disk.read(max(osd.store.get(key).footprint(), 1))
                if _digest(osd.store.get(key)) != want:
                    report.inconsistent.append((oid, osd.osd_id))
    return report


def _scrub_ec_object(cluster, pool, oid, key, holders, report):
    from .rados import _EC_CRC_XATTR, _shard_crc

    length = int(holders[0].store.getxattr(key, _EC_LEN_XATTR).decode("ascii"))
    by_idx = {}
    bad = set()
    for osd in holders:
        obj = osd.store.get(key)
        yield from osd.disk.read(max(len(obj.data), 1))
        idx = int(obj.xattrs[_EC_IDX_XATTR].decode("ascii"))
        shard = bytes(obj.data)
        by_idx[idx] = shard
        # Per-shard checksum localises corruption unambiguously — with
        # only one parity, consistency voting alone cannot tell which
        # shard lies (any k-subset explains a single corruption).
        want_crc = obj.xattrs.get(_EC_CRC_XATTR)
        if want_crc is not None and _shard_crc(shard) != want_crc:
            bad.add(idx)
    good = {idx: s for idx, s in by_idx.items() if idx not in bad}
    if len(good) >= pool.codec.k:
        # Cross-check parity coherence of the checksum-clean shards.
        primary = holders[0]
        yield from primary.node.cpu.execute(primary.node.cpu.spec.ec_time(length))
        slots = [None] * pool.codec.n
        for idx, shard in list(good.items())[: pool.codec.k]:
            slots[idx] = shard
        try:
            expected = pool.codec.encode(pool.codec.decode(slots, length))
            for idx, shard in good.items():
                if shard != expected[idx]:
                    bad.add(idx)
        except ValueError:
            bad.update(good)
    for idx in sorted(bad):
        report.bad_shards.append((oid, idx))


def scrub_pool_sync(cluster: RadosCluster, pool: Pool) -> ReplicaScrubReport:
    """Synchronous :func:`scrub_pool`."""
    return cluster.run(scrub_pool(cluster, pool))


def repair_pool(cluster: RadosCluster, pool: Pool, report: ReplicaScrubReport):
    """Process: repair the findings of a prior scrub.

    Replicated pools: divergent/missing copies are replaced with the
    primary's (first holder's) version.  EC pools are healed through the
    recovery machinery, which already reconstructs shards.
    """
    repaired = 0
    if pool.is_ec:
        from .recovery import recover

        for oid, idx in report.bad_shards:
            key = cluster.object_key(pool, oid)
            for osd in cluster.osds.values():
                if osd.up and osd.store.exists(key):
                    shard_idx = int(
                        osd.store.getxattr(key, _EC_IDX_XATTR).decode("ascii")
                    )
                    if shard_idx == idx:
                        osd.store.delete_object(key)
                        repaired += 1
        yield from recover(cluster)
        return repaired
    for oid, osd_id in report.inconsistent + report.missing:
        key = cluster.object_key(pool, oid)
        acting = [cluster.osds[i] for i in pool.acting_set_for(oid)]
        source = next(
            (
                o
                for o in acting
                if o.up and o.osd_id != osd_id and o.store.exists(key)
            ),
            None,
        )
        target = cluster.osds[osd_id]
        if source is None or not target.up:
            continue
        obj = source.store.get(key).clone()
        yield from source.disk.read(max(obj.footprint(), 1))
        if source.node is not target.node:
            yield from cluster._transfer(
                source.node.nic, target.node.nic, obj.footprint()
            )
        yield from target.execute_push(key, obj)
        repaired += 1
    return repaired


def repair_pool_sync(cluster: RadosCluster, pool: Pool, report: ReplicaScrubReport) -> int:
    """Synchronous :func:`repair_pool`."""
    return cluster.run(repair_pool(cluster, pool, report))
