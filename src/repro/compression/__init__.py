"""Compression codec and filesystem-style footprint estimation."""

from .codec import CompressionResult, FS_COMPRESS_BLOCK, ZlibCodec, compressed_store_bytes

__all__ = [
    "ZlibCodec",
    "CompressionResult",
    "compressed_store_bytes",
    "FS_COMPRESS_BLOCK",
]
