"""Compression codec and footprint estimation.

The paper's Figure 13 stacks the dedup design on a compressing local
filesystem (Btrfs) to maximise capacity saving.  We model that with a
real zlib codec: the "compressed footprint" of a store is what its
objects' payloads actually compress to (block-wise, as a filesystem
would), so the multiplicative dedup x compression effect in Figure 13
is measured, not assumed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

__all__ = ["ZlibCodec", "CompressionResult", "compressed_store_bytes"]

#: Filesystems compress in fixed extents, not whole files; Btrfs uses
#: 128 KiB compression chunks.
FS_COMPRESS_BLOCK = 128 * 1024


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one payload."""

    raw_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        """Saved fraction: 0.0 (incompressible) .. ~1.0."""
        if self.raw_bytes == 0:
            return 0.0
        return 1.0 - self.compressed_bytes / self.raw_bytes


class ZlibCodec:
    """zlib (DEFLATE) at a configurable level; level 1 mimics the fast
    filesystem setting (Btrfs zlib/LZO class)."""

    def __init__(self, level: int = 1):
        if not (0 <= level <= 9):
            raise ValueError(f"zlib level must be 0..9, got {level}")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        """Compressed bytes for ``data``."""
        return zlib.compress(data, self.level)

    def decompress(self, blob: bytes) -> bytes:
        """Inverse of :meth:`compress`."""
        return zlib.decompress(blob)

    def measure(self, data: bytes) -> CompressionResult:
        """Compress and report sizes; stores the smaller of raw/coded
        (filesystems keep extents raw when compression does not help)."""
        coded = len(self.compress(data))
        return CompressionResult(
            raw_bytes=len(data), compressed_bytes=min(coded, len(data))
        )


def compressed_store_bytes(store, codec: ZlibCodec | None = None) -> int:
    """Footprint of an :class:`~repro.cluster.ObjectStore` if its node's
    filesystem compressed payloads block-wise (metadata stays raw)."""
    codec = codec if codec is not None else ZlibCodec()
    total = 0
    for key in store.keys():
        obj = store.get(key)
        total += obj.footprint() - len(obj.data)
        data = bytes(obj.data)
        for off in range(0, len(data), FS_COMPRESS_BLOCK):
            block = data[off : off + FS_COMPRESS_BLOCK]
            total += codec.measure(block).compressed_bytes
    return total
