"""The paper's contribution: global dedup for scale-out storage.

Key pieces:

* double hashing / content-addressed chunk pool (:mod:`.tier`),
* self-contained metadata & chunk objects (:mod:`.objects`),
* post-processing dedup engine with rate control and selective
  (hotness-aware) dedup (:mod:`.engine`, :mod:`.rate_control`,
  :mod:`.cache`),
* the public facade (:class:`DedupedStorage`), and
* the baselines the paper compares against (:mod:`.baselines`).
"""

from .baselines import (
    DedupPotential,
    InlineDedupStorage,
    PlainStorage,
    analyze_dedup_potential,
)
from .blockdev import BlockDevice
from .cache import CacheManager, HitSet
from .client import DedupedStorage
from .config import DedupConfig
from .engine import DedupEngine, EngineStats
from .io_path import read_path, write_path
from .objects import (
    CHUNK_MAP_ENTRY_BYTES,
    CHUNK_MAP_XATTR,
    REFERENCE_ENTRY_BYTES,
    REFS_XATTR,
    ChunkMap,
    ChunkMapEntry,
    ChunkRef,
    RefSet,
)
from .rate_control import OpWindow, RateController
from .refcount import FalsePositiveRefcount, StrictRefcount, make_refcounter
from .scrub import (
    GcReport,
    ScrubReport,
    collect_garbage,
    collect_garbage_sync,
    scrub,
    scrub_sync,
)
from .status import DedupStatus, collect_status
from .tier import DedupTier, NodeClient, SpaceReport

__all__ = [
    "BlockDevice",
    "DedupedStorage",
    "DedupConfig",
    "DedupTier",
    "DedupEngine",
    "EngineStats",
    "SpaceReport",
    "NodeClient",
    "ChunkMap",
    "ChunkMapEntry",
    "ChunkRef",
    "RefSet",
    "CHUNK_MAP_ENTRY_BYTES",
    "REFERENCE_ENTRY_BYTES",
    "CHUNK_MAP_XATTR",
    "REFS_XATTR",
    "CacheManager",
    "HitSet",
    "OpWindow",
    "RateController",
    "StrictRefcount",
    "FalsePositiveRefcount",
    "make_refcounter",
    "ScrubReport",
    "scrub",
    "scrub_sync",
    "GcReport",
    "collect_garbage",
    "collect_garbage_sync",
    "DedupStatus",
    "collect_status",
    "write_path",
    "read_path",
    "DedupPotential",
    "analyze_dedup_potential",
    "InlineDedupStorage",
    "PlainStorage",
]
