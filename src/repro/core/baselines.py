"""Baselines the paper compares against.

* :func:`analyze_dedup_potential` — offline local-vs-global dedup-ratio
  analysis (Figure 3 / Table 1): local dedup runs independently per OSD,
  global dedup across the whole cluster.  Redundancy copies are excluded
  (the paper computes ratios "excluding the redundancy caused by
  replication"), so each object is attributed to its primary OSD.
* :class:`InlineDedupStorage` — inline (foreground) deduplication: every
  write chunks, fingerprints, and stores/references chunk objects before
  acknowledging.  Exhibits the partial-write read-modify-write problem
  of Figure 5-(a) and the latency overhead that motivates
  post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..chunking import StaticChunker
from ..cluster import NoSuchObject, Pool, RadosCluster, Transaction
from ..fingerprint import fingerprint
from .config import DedupConfig
from .objects import ChunkMap, ChunkMapEntry, ChunkRef
from .tier import DedupTier

__all__ = [
    "DedupPotential",
    "analyze_dedup_potential",
    "InlineDedupStorage",
    "PlainStorage",
]


class PlainStorage:
    """The *Original* system: the scale-out store with no dedup at all.

    Exposes the same write/read interface as
    :class:`~repro.core.DedupedStorage` so workloads and benchmarks can
    swap the two (the paper's "Original" baseline in every figure).
    """

    def __init__(
        self,
        cluster: Optional[RadosCluster] = None,
        redundancy=None,
        pool_name: str = "plain-data",
    ):
        self.cluster = cluster if cluster is not None else RadosCluster()
        self.pool = self.cluster.create_pool(pool_name, redundancy)

    @property
    def sim(self):
        """The cluster's simulation clock."""
        return self.cluster.sim

    def write(self, oid: str, data: bytes, offset: int = 0, client=None):
        """Process: plain object write."""
        if not data:
            return
        yield from self.cluster.write(self.pool, oid, offset, data, client)

    def read(self, oid: str, offset: int = 0, length: Optional[int] = None, client=None):
        """Process: plain object read."""
        data = yield from self.cluster.read(self.pool, oid, offset, length, client)
        return data

    def write_sync(self, oid: str, data: bytes, offset: int = 0) -> None:
        """Synchronous :meth:`write`."""
        self.cluster.run(self.write(oid, data, offset))

    def read_sync(self, oid: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Synchronous :meth:`read`."""
        return self.cluster.run(self.read(oid, offset, length))

    def client(self, name: str):
        """A new client host."""
        return self.cluster.client(name)


@dataclass
class DedupPotential:
    """Local vs global dedup ratios over the same stored data."""

    total_bytes: int = 0
    global_unique_bytes: int = 0
    local_unique_bytes: int = 0
    per_osd_unique: Dict[int, int] = field(default_factory=dict)
    per_osd_total: Dict[int, int] = field(default_factory=dict)

    @property
    def global_ratio(self) -> float:
        """Cluster-wide dedup ratio (what the paper's design achieves)."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.global_unique_bytes / self.total_bytes

    @property
    def local_ratio(self) -> float:
        """Per-OSD dedup ratio (block-dedup-per-node baseline)."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.local_unique_bytes / self.total_bytes


def analyze_dedup_potential(
    cluster: RadosCluster, pool: Pool, chunk_size: int
) -> DedupPotential:
    """Measure local vs global dedup ratio of the data stored in ``pool``.

    Each object is chunked at ``chunk_size``; a chunk is a duplicate
    when its fingerprint was seen before — within the same OSD for the
    local measure, anywhere for the global one.  Only primary copies are
    scanned (redundancy excluded).
    """
    result = DedupPotential()
    global_seen: Set[str] = set()
    local_seen: Dict[int, Set[str]] = {}
    chunker = StaticChunker(chunk_size)
    for oid in cluster.list_objects(pool):
        key = cluster.object_key(pool, oid)
        primary = next(
            (
                osd
                for osd in cluster.acting_osds(pool, oid)
                if osd.store.exists(key)
            ),
            None,
        )
        if primary is None:
            continue
        data = bytes(primary.store.get(key).data)
        primary_id = primary.osd_id
        result.total_bytes += len(data)
        result.per_osd_total[primary_id] = (
            result.per_osd_total.get(primary_id, 0) + len(data)
        )
        seen_here = local_seen.setdefault(primary_id, set())
        for span in chunker.chunk(data):
            fp = fingerprint(span.data)
            if fp not in global_seen:
                global_seen.add(fp)
                result.global_unique_bytes += span.length
            if fp not in seen_here:
                seen_here.add(fp)
                result.local_unique_bytes += span.length
                result.per_osd_unique[primary_id] = (
                    result.per_osd_unique.get(primary_id, 0) + span.length
                )
    return result


class InlineDedupStorage:
    """Inline (foreground) global deduplication baseline.

    The metadata object carries only the chunk map (nothing is cached);
    all data lives in chunk objects.  A write must therefore:

    1. read-modify-write any partially covered chunk (fetch the old
       chunk from the chunk pool first — Figure 5-(a)'s problem);
    2. fingerprint every chunk on the write path (client-visible
       latency);
    3. dereference/reference chunk objects synchronously;
    4. update the chunk map — all before the ack.
    """

    def __init__(
        self,
        cluster: Optional[RadosCluster] = None,
        config: Optional[DedupConfig] = None,
        metadata_redundancy=None,
        chunk_redundancy=None,
    ):
        self.cluster = cluster if cluster is not None else RadosCluster()
        self.tier = DedupTier(
            self.cluster,
            config,
            metadata_redundancy=metadata_redundancy,
            chunk_redundancy=chunk_redundancy,
            metadata_pool_name="inline-metadata",
            chunk_pool_name="inline-chunks",
        )
        self.config = self.tier.config

    @property
    def sim(self):
        """The cluster's simulation clock."""
        return self.cluster.sim

    def client(self, name: str):
        """A new client host."""
        return self.cluster.client(name)

    # repro-lint: flt-scope -- comparison baseline for the paper's original system; it sits outside the fault model (faults surface to the benchmark driver directly)
    def write(self, oid: str, data: bytes, offset: int = 0, client=None):
        """Process: inline-deduplicating write."""
        if not data:
            return
        tier = self.tier
        cs = tier.config.chunk_size
        cmap = yield from tier.load_chunk_map(oid)
        if cmap is None:
            cmap = ChunkMap(cs)
        key = tier.metadata_key(oid)
        primary = tier.cluster._primary(tier.metadata_pool, oid)
        end = offset + len(data)
        for idx in tier.chunker.aligned_range(offset, len(data)):
            cstart = idx * cs
            wstart, wend = max(offset, cstart), min(end, cstart + cs)
            entry = cmap.get(idx)
            old_id = entry.chunk_id if entry else ""
            new_len = max(entry.length if entry else 0, wend - cstart)
            buf = bytearray(new_len)
            if old_id and not (wstart == cstart and wend >= entry.end):
                # Partial write: read-modify-write against the old chunk.
                old = yield from tier.read_chunk(old_id, 0, entry.length, client)
                buf[: len(old)] = old
            buf[wstart - cstart : wend - cstart] = data[
                wstart - offset : wend - offset
            ]
            chunk_bytes = bytes(buf)
            # Fingerprint inline, on the write path.
            yield from primary.node.cpu.fingerprint(len(chunk_bytes))
            fp = fingerprint(chunk_bytes, tier.config.fingerprint_algorithm)
            ref = ChunkRef(tier.metadata_pool.pool_id, oid, cstart)
            if old_id and old_id != fp:
                yield from tier.chunk_deref(old_id, ref, client)
            if old_id != fp:
                yield from tier.chunk_ref(fp, ref, chunk_bytes, client)
            cmap.set(
                ChunkMapEntry(
                    offset=cstart,
                    length=new_len,
                    chunk_id=fp,
                    cached=False,
                    dirty=False,
                )
            )
        txn = Transaction()
        tier.append_map_commit(txn, oid, cmap)
        txn.create(key)
        try:
            yield from tier.cluster.submit(tier.metadata_pool, oid, txn, client)
        except Exception:
            tier.invalidate_map_cache(oid)
            raise
        tier.note_map_committed(oid, cmap)
        tier.fg_window.note(len(data))

    def read(self, oid: str, offset: int = 0, length: Optional[int] = None, client=None):
        """Process: read via chunk-pool redirection (nothing is cached)."""
        tier = self.tier
        cmap = yield from tier.load_chunk_map(oid)
        if cmap is None:
            raise NoSuchObject(oid)
        size = cmap.logical_size()
        end = size if length is None else min(offset + length, size)
        if end <= offset:
            return b""
        cs = tier.config.chunk_size
        jobs = []
        for idx in tier.chunker.aligned_range(offset, end - offset):
            entry = cmap.get(idx)
            if entry is None:
                continue
            cstart = idx * cs
            sstart, send = max(offset, cstart), min(end, entry.end)
            if send <= sstart:
                continue
            jobs.append(
                (
                    sstart,
                    send - sstart,
                    tier.sim.process(
                        tier.read_chunk(entry.chunk_id, sstart - cstart, send - sstart, client)
                    ),
                )
            )
        buf = bytearray(end - offset)
        results = yield tier.sim.all_of([p for _s, _l, p in jobs])
        for (sstart, seg_len, _p), segment in zip(jobs, results):
            buf[sstart - offset : sstart - offset + seg_len] = segment[:seg_len]
        return bytes(buf)

    def write_sync(self, oid: str, data: bytes, offset: int = 0) -> None:
        """Synchronous :meth:`write`."""
        self.cluster.run(self.write(oid, data, offset))

    def read_sync(self, oid: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Synchronous :meth:`read`."""
        return self.cluster.run(self.read(oid, offset, length))

    def space_report(self):
        """Space accounting (same shape as the post-processing tier's)."""
        return self.tier.space_report()
