"""A block-device view over an object store (the paper's KRBD role).

The paper's evaluation drives the dedup tier through a kernel RBD block
device: a linear byte address space striped over fixed-size storage
objects.  :class:`BlockDevice` provides that view over any storage
facade (:class:`~repro.core.DedupedStorage`,
:class:`~repro.core.PlainStorage`, ...), splitting arbitrary-offset
reads/writes into per-object operations issued in parallel.
"""

from __future__ import annotations


__all__ = ["BlockDevice"]


class BlockDevice:
    """A linear device of ``size`` bytes striped over objects.

    Object ``i`` holds device bytes ``[i * object_size, (i+1) *
    object_size)`` under the name ``"<prefix>.<i>"``.
    """

    def __init__(
        self,
        storage,
        size: int,
        object_size: int = 4 * 1024 * 1024,
        prefix: str = "rbd",
    ):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if object_size < 1:
            raise ValueError(f"object_size must be >= 1, got {object_size}")
        self.storage = storage
        self.size = size
        self.object_size = object_size
        self.prefix = prefix

    @property
    def sim(self):
        """The underlying simulation clock."""
        return self.storage.sim

    def _oid(self, index: int) -> str:
        return f"{self.prefix}.{index}"

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise ValueError(f"invalid range ({offset}, {length})")
        if offset + length > self.size:
            raise ValueError(
                f"range [{offset}, {offset + length}) beyond device size {self.size}"
            )

    def _extents(self, offset: int, length: int):
        """Yield (object index, object offset, span length, buf offset)."""
        pos = offset
        end = offset + length
        while pos < end:
            index = pos // self.object_size
            obj_off = pos % self.object_size
            span = min(self.object_size - obj_off, end - pos)
            yield index, obj_off, span, pos - offset
            pos += span

    # -- async API -------------------------------------------------------------

    def write(self, offset: int, data: bytes, client=None):
        """Process: write ``data`` at device ``offset`` (may span objects)."""
        self._check_range(offset, len(data))
        if not data:
            return
        jobs = []
        for index, obj_off, span, buf_off in self._extents(offset, len(data)):
            jobs.append(
                self.sim.process(
                    self.storage.write(
                        self._oid(index), data[buf_off : buf_off + span], obj_off, client
                    )
                )
            )
        yield self.sim.all_of(jobs)

    def read(self, offset: int, length: int, client=None):
        """Process: read ``length`` device bytes at ``offset``.

        Unwritten regions read as zeros (thin provisioning).
        """
        from ..cluster import NoSuchObject

        self._check_range(offset, length)
        buf = bytearray(length)
        jobs = []
        for index, obj_off, span, buf_off in self._extents(offset, length):
            jobs.append(
                (
                    buf_off,
                    span,
                    self.sim.process(
                        self._read_extent(index, obj_off, span, client)
                    ),
                )
            )
        results = yield self.sim.all_of([p for _b, _s, p in jobs])
        for (buf_off, span, _p), data in zip(jobs, results):
            buf[buf_off : buf_off + len(data)] = data
        return bytes(buf)

    def _read_extent(self, index: int, obj_off: int, span: int, client):
        from ..cluster import NoSuchObject

        try:
            data = yield from self.storage.read(self._oid(index), obj_off, span, client)
        except NoSuchObject:
            return b"\x00" * span
        if len(data) < span:  # short read past the object's written end
            data = data + b"\x00" * (span - len(data))
        return data

    def discard(self, offset: int, length: int):
        """Process: drop whole objects fully covered by the range (trim).

        Partially covered objects are left alone (a finer-grained trim
        would zero them; whole-object discard is what reclaims space).
        """
        self._check_range(offset, length)
        first = (offset + self.object_size - 1) // self.object_size
        last = (offset + length) // self.object_size  # exclusive
        for index in range(first, last):
            oid = self._oid(index)
            try:
                if hasattr(self.storage, "delete"):
                    yield from self.storage.delete(oid)
                else:
                    yield from self.storage.cluster.remove(self.storage.pool, oid)
            except Exception:
                continue  # never-written object: nothing to discard

    # -- sync helpers ---------------------------------------------------------------

    def write_sync(self, offset: int, data: bytes) -> None:
        """Synchronous :meth:`write`."""
        self.storage.cluster.run(self.write(offset, data))

    def read_sync(self, offset: int, length: int) -> bytes:
        """Synchronous :meth:`read`."""
        return self.storage.cluster.run(self.read(offset, length))

    def discard_sync(self, offset: int, length: int) -> None:
        """Synchronous :meth:`discard`."""
        self.storage.cluster.run(self.discard(offset, length))
