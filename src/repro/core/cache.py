"""Cache manager: HitSet-based hotness tracking and LRU chunk cache.

Paper §4.3 and §5: the cache manager decides whether a chunk stays
cached in the metadata object's data part.  Hotness comes from Ceph's
HitSet mechanism — a rotating ring of per-interval access sets (bloom
filters in memory) — and an object whose access count reaches
``hit_count_threshold`` is *hot*: it is served from the metadata pool
and the dedup engine leaves it alone until it cools down.

A simple LRU list (paper: "we used a LRU based approach, which is
simple") bounds the total cached bytes when a capacity is configured.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

from ..sim import Simulator
from ..util import BloomFilter
from .config import DedupConfig

__all__ = ["HitSet", "CacheManager"]


class HitSet:
    """A rotating ring of per-period bloom filters of accessed objects.

    ``hit_count(oid)`` approximates "in how many of the last N periods
    was this object accessed" — the paper's per-object access count.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float = 1.0,
        count: int = 8,
        capacity: int = 4096,
        error_rate: float = 0.01,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.sim = sim
        self.period = period
        self.count = count
        self.capacity = capacity
        self.error_rate = error_rate
        self._ring: List[Tuple[float, BloomFilter]] = []

    def _rotate(self) -> None:
        now = self.sim.now
        if not self._ring or now - self._ring[-1][0] >= self.period:
            self._ring.append((now, BloomFilter(self.capacity, self.error_rate)))
            if len(self._ring) > self.count:
                del self._ring[0 : len(self._ring) - self.count]

    def record(self, oid: str) -> None:
        """Record one access to ``oid`` at the current simulated time."""
        self._rotate()
        self._ring[-1][1].add(oid)

    def hit_count(self, oid: str) -> int:
        """Number of recent periods in which ``oid`` was accessed."""
        now = self.sim.now
        horizon = now - self.period * self.count
        return sum(
            1 for start, bf in self._ring if start >= horizon and oid in bf
        )

    def memory_bytes(self) -> int:
        """In-memory footprint of the bloom filter ring."""
        return sum(bf.memory_bytes() for _start, bf in self._ring)


class CacheManager:
    """Hotness + LRU policy for cached chunks in the metadata pool."""

    def __init__(self, sim: Simulator, config: DedupConfig):
        self.sim = sim
        self.config = config
        self.hitset = HitSet(
            sim, period=config.hitset_period, count=config.hitset_count
        )
        # (oid, chunk_index) -> cached bytes; insertion order doubles as
        # the LRU/FIFO queue order.
        self._cached: "OrderedDict[Tuple[str, int], int]" = OrderedDict()
        #: (oid, chunk_index) -> access count, for the LFU policy.
        self._freq: Dict[Tuple[str, int], int] = {}
        self.cached_bytes = 0
        #: Counters for tests/metrics.
        self.promotions = 0
        self.demotions = 0

    # -- hotness ------------------------------------------------------------

    def record_access(self, oid: str) -> None:
        """Note a foreground access (read or write) to ``oid``."""
        self.hitset.record(oid)
        touched = [k for k in self._cached if k[0] == oid]
        for k in touched:
            self._freq[k] = self._freq.get(k, 0) + 1
            if self.config.cache_policy == "lru":
                self._cached.move_to_end(k)

    def is_hot(self, oid: str) -> bool:
        """Paper §5: hot when the access count reaches Hitcount."""
        return self.hitset.hit_count(oid) >= self.config.hit_count_threshold

    # -- cached-chunk bookkeeping ----------------------------------------------

    def note_cached(self, oid: str, index: int, nbytes: int) -> None:
        """A chunk's bytes now live in the metadata object (cached)."""
        key = (oid, index)
        old = self._cached.pop(key, 0)
        self.cached_bytes -= old
        self._cached[key] = nbytes
        self.cached_bytes += nbytes
        self._freq[key] = self._freq.get(key, 0) + 1
        self.promotions += old == 0

    def note_evicted(self, oid: str, index: int) -> None:
        """A chunk was punched out of its metadata object."""
        old = self._cached.pop((oid, index), 0)
        self._freq.pop((oid, index), None)
        if old:
            self.cached_bytes -= old
            self.demotions += 1

    def keep_cached_on_flush(self, oid: str) -> bool:
        """Whether a just-deduplicated chunk should stay cached."""
        if not self.config.cache_on_flush:
            return False
        return self.is_hot(oid)

    def over_capacity(self) -> bool:
        """Whether cached bytes exceed the configured capacity."""
        cap = self.config.cache_capacity_bytes
        return cap is not None and self.cached_bytes > cap

    def victims(self) -> List[Tuple[str, int]]:
        """(oid, chunk index) pairs to demote to fit the capacity.

        Order depends on ``cache_policy``: least-recently-used (the
        paper's choice), least-frequently-used, or insertion order.
        """
        cap = self.config.cache_capacity_bytes
        if cap is None:
            return []
        if self.config.cache_policy == "lfu":
            candidates = sorted(
                self._cached.items(), key=lambda kv: self._freq.get(kv[0], 0)
            )
        else:  # lru and fifo both evict from the front of the queue
            candidates = list(self._cached.items())
        out = []
        excess = self.cached_bytes - cap
        for key, nbytes in candidates:
            if excess <= 0:
                break
            out.append(key)
            excess -= nbytes
        return out
