"""The public facade: a deduplicated object store.

:class:`DedupedStorage` assembles the whole design — metadata pool +
chunk pool, write/read paths, the background dedup engine, rate control
and the cache manager — behind an object read/write API equivalent to
the underlying cluster's.  Client code addresses objects by their
ordinary IDs; deduplication is invisible (paper key idea: "no
modification is required on client side").
"""

from __future__ import annotations

from typing import Optional

from ..cluster import RadosCluster
from .config import DedupConfig
from .engine import DedupEngine
from .io_path import delete_path, read_path, write_path
from .tier import DedupTier, SpaceReport

__all__ = ["DedupedStorage"]


class DedupedStorage:
    """A deduplicating object store on top of a :class:`RadosCluster`.

    Parameters
    ----------
    cluster:
        The storage substrate; a default 4-host x 4-OSD cluster (the
        paper's testbed shape) is built when omitted.
    config:
        Dedup tuning; see :class:`~repro.core.DedupConfig`.
    metadata_redundancy / chunk_redundancy:
        Redundancy schemes for the two pools (each may independently be
        ``Replicated(n)`` or ``ErasureCoded(k, m)``, paper §4.2).
    flush_on_write:
        When True, every write is immediately followed by a forced dedup
        pass of the object — the paper's *Proposed-flush* configuration
        (Figure 10), useful to measure what inline-style processing
        costs.
    start_engine:
        Start the background engine right away.  Tests that want manual
        control pass False and drive ``engine.process_object`` /
        ``engine.drain`` themselves.
    """

    def __init__(
        self,
        cluster: Optional[RadosCluster] = None,
        config: Optional[DedupConfig] = None,
        metadata_redundancy=None,
        chunk_redundancy=None,
        flush_on_write: bool = False,
        start_engine: bool = True,
    ):
        self.cluster = cluster if cluster is not None else RadosCluster()
        self.tier = DedupTier(
            self.cluster,
            config,
            metadata_redundancy=metadata_redundancy,
            chunk_redundancy=chunk_redundancy,
        )
        self.config = self.tier.config
        self.engine = DedupEngine(self.tier)
        self.flush_on_write = flush_on_write
        #: The attached :class:`~repro.faults.FaultInjector`, if any.
        self.faults = None
        # Reads of hot, evicted objects trigger background promotion.
        self.tier.on_hot_read = lambda oid: self.sim.process(
            self.engine.promote_object(oid)
        )
        if start_engine and not flush_on_write:
            self.engine.start()

    @property
    def sim(self):
        """The simulation clock everything runs on."""
        return self.cluster.sim

    @property
    def tracer(self):
        """The tier's :class:`~repro.obs.Tracer` (per-op span trees).

        Enabled via ``DedupConfig.trace_ops``; when off it hands out the
        shared null span and records nothing.
        """
        return self.tier.tracer

    def inject_faults(self, plan, auto_recover: bool = True):
        """Attach a :class:`~repro.faults.FaultInjector` for ``plan``.

        The plan's events are scheduled on the simulation clock
        immediately; they fire as the clock advances through them.
        Returns the injector (for its counters and ``heal_all``).
        """
        from ..faults import FaultInjector

        injector = FaultInjector(self.cluster, plan, auto_recover=auto_recover)
        injector.attach()
        self.faults = injector
        return injector

    # -- online elasticity -----------------------------------------------------

    def expand(self, name: str, num_osds: int, rack: str = "default"):
        """Add a host online; returns the PG remap diff.

        Reads and writes keep flowing while the moved PGs are served
        from the old+new union; run :meth:`rebalance` to migrate the
        data and retire the remaps.
        """
        return self.cluster.expand(name, num_osds, rack=rack)

    def decommission_osd(self, osd_id: int):
        """Take one OSD out of placement online; returns the remap diff.

        Follow with :meth:`rebalance` (drains it), then
        ``cluster.finalize_decommission(osd_id)`` to drop it entirely.
        """
        return self.cluster.decommission_osd(osd_id)

    def rebalance(self, rate_limit_bps=None, span=None, max_passes: int = 16):
        """Process: migrate all remapped PGs; returns RebalanceStats.

        Dedup-aware by construction: chunk objects carry their refcount
        metadata in their own xattrs, so migrating the object migrates
        the refcounts.  Safe to run concurrently with the workload
        (everything happens under the per-object write locks) and
        resumable after a crash — re-running skips already-settled
        objects.
        """
        from ..cluster import Rebalancer

        engine = Rebalancer(self.cluster, rate_limit_bps=rate_limit_bps)
        if span is not None:
            stats = yield from engine.run_to_completion(
                span=span, max_passes=max_passes
            )
            return stats
        root = self.tracer.root_span("op.rebalance")
        try:
            stats = yield from engine.run_to_completion(
                span=root, max_passes=max_passes
            )
            root.tag(
                pgs=stats.pgs_completed,
                moved=stats.objects_moved,
                nbytes=stats.bytes_moved,
            )
        finally:
            root.finish()
        return stats

    def rebalance_sync(self, rate_limit_bps=None, max_passes: int = 16):
        """Synchronous :meth:`rebalance`."""
        return self.cluster.run(
            self.rebalance(rate_limit_bps=rate_limit_bps, max_passes=max_passes)
        )

    # -- async API (simulation processes) ------------------------------------

    def write(self, oid: str, data: bytes, offset: int = 0, client=None):
        """Process: write ``data`` at ``offset`` of ``oid``."""
        yield from write_path(self.tier, oid, offset, data, client)
        if self.flush_on_write:
            yield from self.engine.process_object(oid, force=True)

    def read(self, oid: str, offset: int = 0, length: Optional[int] = None, client=None):
        """Process: read from ``oid``; returns bytes."""
        data = yield from read_path(self.tier, oid, offset, length, client)
        return data

    def delete(self, oid: str, client=None):
        """Process: delete ``oid`` and dereference its chunks."""
        yield from delete_path(self.tier, oid, client)

    def flush(self, oid: str):
        """Process: force deduplication of one object now."""
        yield from self.engine.process_object(oid, force=True)

    # -- sync helpers (drive the event loop) ------------------------------------

    def write_sync(self, oid: str, data: bytes, offset: int = 0) -> None:
        """Synchronous :meth:`write`."""
        self.cluster.run(self.write(oid, data, offset))

    def read_sync(self, oid: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Synchronous :meth:`read`."""
        return self.cluster.run(self.read(oid, offset, length))

    def delete_sync(self, oid: str) -> None:
        """Synchronous :meth:`delete`."""
        self.cluster.run(self.delete(oid))

    def flush_sync(self, oid: str) -> None:
        """Synchronous :meth:`flush`."""
        self.cluster.run(self.flush(oid))

    def drain(self) -> None:
        """Deduplicate everything pending (ignores hotness), then GC."""
        self.engine.drain_sync()

    # -- introspection ------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        """Current space accounting (see :class:`SpaceReport`)."""
        return self.tier.space_report()

    def status(self):
        """Operational snapshot (engine, backlog, cache, load, space)."""
        from .status import collect_status

        return collect_status(self)

    def client(self, name: str):
        """A new client host for concurrent-workload experiments."""
        return self.cluster.client(name)
