"""Configuration for the deduplication tier.

Defaults follow the paper's evaluation setup (§6.1): 32 KiB static
chunks, SHA-1-class fingerprints, post-processing with watermark rate
control, HitSet-based selective dedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["DedupConfig"]

KiB = 1024


@dataclass
class DedupConfig:
    """Tuning knobs of the dedup tier.

    Attributes
    ----------
    chunk_size:
        Static chunk size in bytes (paper default 32 KiB).
    fingerprint_algorithm:
        Hash used for chunk IDs (double hashing's first hash).
    selective_dedup:
        Skip deduplicating hot objects (paper §3.2): a hot object stays
        cached in the metadata pool until its HitSet count cools down.
    cache_on_flush:
        Master switch for hot-data caching.  On: a flushed chunk of a
        hot object stays cached in the metadata object, and reads of
        hot-but-evicted objects trigger background promotion back into
        the cache.  Off: clean data never lives in the metadata pool.
    cache_capacity_bytes:
        Cap on total cached chunk bytes in the metadata pool; ``None``
        means uncapped.  When exceeded, the engine demotes LRU chunks.
    hitset_period / hitset_count / hit_count_threshold:
        HitSet tuning (paper §5): accesses are recorded into a rotating
        ring of ``hitset_count`` bloom filters, one per ``hitset_period``
        seconds; an object is *hot* when it appears in at least
        ``hit_count_threshold`` of them.
    rate_control:
        Enable watermark-based throttling of background dedup I/O.
    watermark_metric:
        ``"iops"`` or ``"throughput"`` — what the watermarks compare
        against (paper §4.4.2 allows either).
    low_watermark / high_watermark:
        Below low: dedup unthrottled.  Between: one dedup I/O per
        ``ops_per_dedup_mid`` foreground ops.  Above high: one per
        ``ops_per_dedup_high`` (paper's example values 100 and 500).
    dedup_interval:
        Engine idle poll period (seconds) when the dirty list is empty.
    hot_requeue_delay:
        How long a skipped-because-hot object waits before the engine
        looks at it again.
    refcount_mode:
        ``"strict"`` — dereference synchronously before re-pointing a
        chunk (paper §4.4.1 step 3); ``"false_positive"`` — skip the
        wait, leaving garbage references for a GC pass (§4.6's
        OrderMergeDedup-style variant).
    """

    chunk_size: int = 32 * KiB
    fingerprint_algorithm: str = "sha1"

    selective_dedup: bool = True
    cache_on_flush: bool = True
    cache_capacity_bytes: Optional[int] = None
    #: Eviction policy for cached chunks: "lru" (the paper's choice),
    #: "lfu", or "fifo" (§4.3 notes other algorithms could slot in).
    cache_policy: str = "lru"
    hitset_period: float = 1.0
    hitset_count: int = 8
    hit_count_threshold: int = 2

    #: Compress chunk payloads before storing them in the chunk pool
    #: (tier-level compression; the paper instead relies on the node
    #: filesystem — Figure 13 — but a content-addressed chunk store can
    #: compress beneath the fingerprint transparently).  Chunks that do
    #: not shrink are stored raw.
    compress_chunks: bool = False
    compress_level: int = 1

    rate_control: bool = True
    watermark_metric: str = "iops"
    low_watermark: float = 100.0
    high_watermark: float = 1_000.0
    ops_per_dedup_mid: int = 100
    ops_per_dedup_high: int = 500

    dedup_interval: float = 0.05
    hot_requeue_delay: float = 1.0
    refcount_mode: str = "strict"

    #: Batch chunk-pool reference updates: a dedup pass accumulates its
    #: ``chunk_ref``/``chunk_deref`` operations in a ChunkBatch and
    #: commits them through one prepared transaction per placement
    #: group instead of one round trip per refcount update.  Only
    #: effective on replicated chunk pools (EC mutations are per-object
    #: full-stripe RMWs — nothing merges).
    batch_refs: bool = True
    #: LRU cache of hot chunk-object RefSets in front of ``_load_refs``
    #: (skips the per-lookup deserialization on repeat-duplicate
    #: workloads).  0 disables.
    refset_cache_entries: int = 512
    #: Initial capacity of the negative-lookup Bloom filter over stored
    #: chunk IDs (a definite "not stored" answer skips the chunk-pool
    #: existence probe entirely; the filter grows itself when full).
    #: 0 disables.
    chunk_bloom_capacity: int = 8192
    #: LRU cache of decoded ChunkMaps in front of ``load_chunk_map``,
    #: versioned per object: every committed map mutation bumps the
    #: object's map version, and a cached decode is served only when its
    #: version matches.  0 disables.
    map_cache_entries: int = 256
    #: Byte budget of the hotness-aware chunk data cache in front of the
    #: chunk pool (``repro.core.read_cache.ChunkDataCache``): payloads
    #: are keyed by fingerprint (content-addressed, so never stale) and
    #: admitted only on their second sighting.  0 disables.
    chunk_cache_bytes: int = 8 * 1024 * KiB
    #: Bound on the admission filter's ghost list (fingerprints seen
    #: once, no payload held).
    chunk_cache_ghost_entries: int = 4096
    #: Bounded in-flight window for parallel chunk-pool reads on the
    #: read path: at most this many chunk fetches are outstanding per
    #: logical read.  0 issues them one at a time, sequentially (the
    #: pre-optimisation baseline).
    read_fanout_window: int = 16
    #: Coalesce chunk-pool reads that share a placement group into one
    #: ``RadosCluster.read_batch`` multi-op (O(holders) round trips per
    #: sequential scan instead of O(chunks)).  Compressed chunk pools
    #: fall back to per-chunk reads — decompression needs whole chunks.
    coalesce_reads: bool = True
    #: Commit chunk-map mutations incrementally (v2 format): per-entry
    #: omap records under ``map.<idx>`` plus a small header xattr, so a
    #: 1-chunk update serialises one 150-byte entry instead of the whole
    #: map.  Off: every commit rewrites the legacy whole-map blob.
    incremental_map_commits: bool = True
    #: Background dedup thread count (paper §3.2: "background
    #: deduplication threads periodically conduct a deduplication job").
    engine_workers: int = 8
    #: Host threads hashing chunk digests in parallel during a flush
    #: pass (``repro.fingerprint.FingerprintPool``; hashlib releases the
    #: GIL so this is real wall-clock parallelism).  ``None`` resolves
    #: to ``os.cpu_count()``; ``1`` hashes inline with no thread pool.
    fingerprint_workers: Optional[int] = None

    #: Retry/backoff plumbing (see ``repro.faults.retry``): transient
    #: substrate errors (injected EIO, partitions, degraded PGs) are
    #: retried up to ``retry_max_attempts`` total attempts, sleeping
    #: ``retry_base_delay * retry_backoff**(n-1)`` (capped at
    #: ``retry_max_delay``) before attempt n+1.
    retry_max_attempts: int = 4
    retry_base_delay: float = 0.002
    retry_backoff: float = 2.0
    retry_max_delay: float = 0.25
    #: Per-attempt deadline in simulated seconds; ``None`` disables the
    #: deadline race (an op then runs until it finishes or fails).
    op_timeout: Optional[float] = None
    #: How long a dedup pass that hit a fault waits before the object is
    #: retried from the dirty list (skip-and-requeue degradation).
    fault_requeue_delay: float = 0.2

    #: Record per-op span trees (``repro.obs``): every write/read/delete
    #: and dedup pass produces a tree of timed stage spans on the
    #: simulation clock.  Off by default — the disabled tracer hands out
    #: a shared null span, so the hot path pays only no-op method calls.
    trace_ops: bool = False
    #: Cap on buffered spans per tracer; further spans are counted as
    #: dropped instead of growing memory without bound.
    trace_max_spans: int = 250_000

    def __post_init__(self):
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.watermark_metric not in ("iops", "throughput"):
            raise ValueError(
                f"watermark_metric must be 'iops' or 'throughput', "
                f"got {self.watermark_metric!r}"
            )
        if self.low_watermark > self.high_watermark:
            raise ValueError("low_watermark must be <= high_watermark")
        if self.refcount_mode not in ("strict", "false_positive"):
            raise ValueError(
                f"refcount_mode must be 'strict' or 'false_positive', "
                f"got {self.refcount_mode!r}"
            )
        if self.hit_count_threshold < 1:
            raise ValueError("hit_count_threshold must be >= 1")
        if self.engine_workers < 1:
            raise ValueError("engine_workers must be >= 1")
        if self.fingerprint_workers is not None and self.fingerprint_workers < 1:
            raise ValueError(
                f"fingerprint_workers must be >= 1 (or None for cpu_count), "
                f"got {self.fingerprint_workers}"
            )
        if self.cache_policy not in ("lru", "lfu", "fifo"):
            raise ValueError(
                f"cache_policy must be 'lru', 'lfu' or 'fifo', "
                f"got {self.cache_policy!r}"
            )
        if not (0 <= self.compress_level <= 9):
            raise ValueError(
                f"compress_level must be 0..9, got {self.compress_level}"
            )
        if self.retry_max_attempts < 1:
            raise ValueError(
                f"retry_max_attempts must be >= 1, got {self.retry_max_attempts}"
            )
        if self.retry_base_delay < 0 or self.retry_max_delay < 0:
            raise ValueError("retry delays must be >= 0")
        if self.retry_backoff < 1.0:
            raise ValueError(f"retry_backoff must be >= 1, got {self.retry_backoff}")
        if self.op_timeout is not None and self.op_timeout <= 0:
            raise ValueError(f"op_timeout must be positive, got {self.op_timeout}")
        if self.fault_requeue_delay < 0:
            raise ValueError("fault_requeue_delay must be >= 0")
        if self.refset_cache_entries < 0:
            raise ValueError(
                f"refset_cache_entries must be >= 0, got {self.refset_cache_entries}"
            )
        if self.map_cache_entries < 0:
            raise ValueError(
                f"map_cache_entries must be >= 0, got {self.map_cache_entries}"
            )
        if self.chunk_bloom_capacity < 0:
            raise ValueError(
                f"chunk_bloom_capacity must be >= 0, got {self.chunk_bloom_capacity}"
            )
        if self.chunk_cache_bytes < 0:
            raise ValueError(
                f"chunk_cache_bytes must be >= 0, got {self.chunk_cache_bytes}"
            )
        if self.chunk_cache_ghost_entries < 0:
            raise ValueError(
                f"chunk_cache_ghost_entries must be >= 0, "
                f"got {self.chunk_cache_ghost_entries}"
            )
        if self.read_fanout_window < 0:
            raise ValueError(
                f"read_fanout_window must be >= 0, got {self.read_fanout_window}"
            )
        if self.trace_max_spans < 0:
            raise ValueError(
                f"trace_max_spans must be >= 0, got {self.trace_max_spans}"
            )
