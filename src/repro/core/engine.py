"""The post-processing deduplication engine (paper §4.4.1).

A background process drains the dirty object ID list:

1. pop a dirty metadata object;
2. find its dirty chunks from the chunk map (they are cached in the
   object's data part);
3. if the cache manager deems the object cold, fingerprint each dirty
   chunk; dereference the previously referenced chunk object if the
   content moved; store-or-reference the chunk in the chunk pool
   (double hashing places it by content);
4-5. the chunk pool either stores the object with its first reference
   or just appends reference information;
6. finally update the metadata object's chunk map (dirty cleared,
   cached per cache policy) in a single transaction.

Rate control (§4.4.2) paces step 3's I/O against foreground load, and
hot objects are skipped entirely (selective dedup) until they cool off.

Foreground writes racing with a dedup pass are detected with a per-object
mutation counter: if the object changed while its chunks were being
flushed, the pass aborts before touching the chunk map (undoing the
references it took) and the object is re-queued — the dirty bits, which
are part of the same transactions as the data they describe, remain the
source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import Transaction
from ..faults.errors import is_retryable
from ..fingerprint import FingerprintPool
from ..obs import NULL_SPAN
from .objects import ChunkRef
from .refcount import make_refcounter
from .tier import ChunkBatch, DedupTier, NodeClient

__all__ = ["DedupEngine", "EngineStats"]


@dataclass
class EngineStats:
    """Counters describing what the engine has done."""

    objects_processed: int = 0
    objects_skipped_hot: int = 0
    objects_aborted_race: int = 0
    #: Passes abandoned because the substrate faulted mid-pass (the
    #: object is requeued; references taken this pass are released).
    objects_requeued_fault: int = 0
    #: Dereferences skipped because the substrate faulted; the chunk is
    #: left over-retained for the offline GC (never dangling).
    derefs_deferred_fault: int = 0
    chunks_flushed: int = 0
    chunks_deduped: int = 0
    bytes_flushed: int = 0
    bytes_deduped: int = 0
    chunks_evicted: int = 0
    chunks_promoted: int = 0


class DedupEngine:
    """Background post-processing deduplication."""

    def __init__(self, tier: DedupTier):
        self.tier = tier
        self.config = tier.config
        self.sim = tier.sim
        self.stats = EngineStats()
        self.refcount = make_refcounter(tier)
        self._running = False
        self._procs = []
        self._promoting = set()
        self._fp_pool: Optional[FingerprintPool] = None
        self._fp_workers: Optional[int] = None

    # -- lifecycle ------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether any background worker is active."""
        return self._running and any(p.is_alive for p in self._procs)

    @property
    def fingerprint_pool(self) -> FingerprintPool:
        """The engine's digest pool (created lazily).

        Sized from the ``fingerprint_workers`` override given to
        :meth:`start`, falling back to ``config.fingerprint_workers``
        (``None`` → ``os.cpu_count()``, resolved by the pool itself).
        """
        if self._fp_pool is None:
            workers = self._fp_workers
            if workers is None:
                workers = self.config.fingerprint_workers
            self._fp_pool = FingerprintPool(
                workers=workers, algorithm=self.config.fingerprint_algorithm
            )
        return self._fp_pool

    def set_fingerprint_workers(self, workers: Optional[int]) -> None:
        """Resize the digest pool (takes effect on the next flush pass)."""
        self._fp_workers = workers
        if self._fp_pool is not None:
            self._fp_pool.shutdown()
            self._fp_pool = None

    def start(
        self,
        workers: Optional[int] = None,
        fingerprint_workers: Optional[int] = None,
    ) -> None:
        """Launch the background worker loops (idempotent).

        ``workers`` defaults to ``config.engine_workers`` — the paper's
        design runs multiple background deduplication threads.
        ``fingerprint_workers`` sizes the digest thread pool shared by
        all of them (see :class:`~repro.fingerprint.FingerprintPool`).
        """
        if fingerprint_workers is not None:
            self.set_fingerprint_workers(fingerprint_workers)
        if self.running:
            return
        self._running = True
        count = workers if workers is not None else self.config.engine_workers
        self._procs = [self.sim.process(self._loop()) for _ in range(count)]

    def stop(self) -> None:
        """Ask the background workers to exit at their next wakeup."""
        self._running = False

    def _loop(self):
        while self._running:
            oid = self.tier.next_dirty()
            if oid is None:
                yield self.sim.timeout(self.config.dedup_interval)
                continue
            try:
                yield from self.process_object(oid)
            except Exception as exc:
                # Graceful degradation: a transient substrate fault must
                # never kill a background worker — requeue the object and
                # keep draining.  Non-retryable errors are real bugs and
                # stay loud.
                if not is_retryable(exc):
                    raise
                self.stats.objects_requeued_fault += 1
                self.tier.requeue_dirty(oid, delay=self.config.fault_requeue_delay)

    # -- one object -------------------------------------------------------------

    def process_object(self, oid: str, force: bool = False):
        """Process: deduplicate all dirty chunks of one object.

        ``force`` bypasses the hot-object skip *and* rate control — it is
        used by drains and by flush-on-write, where the caller is already
        foreground.  Returns one of ``"done"``, ``"skipped_hot"``,
        ``"raced"``, ``"missing"``.
        """
        with self.tier.tracer.root_span("op.dedup_pass", oid=oid, forced=force) as op:
            result = yield from self._process_object_traced(oid, force, op)
            op.tag(result=result)
            return result

    def _process_object_traced(self, oid: str, force: bool, op):
        tier = self.tier
        if not force and self.config.selective_dedup and tier.cache.is_hot(oid):
            self.stats.objects_skipped_hot += 1
            tier.requeue_dirty(oid, delay=self.config.hot_requeue_delay)
            return "skipped_hot"
        if not force:
            # Rate-control *before* taking the object lock: a paced
            # background pass must never stall foreground writers that
            # need the same lock (§4.4.2 — dedup yields to foreground).
            cmap_peek = tier.peek_chunk_map(oid)
            pending = len(cmap_peek.dirty_indices()) if cmap_peek else 0
            with op.child("engine.rate_throttle", pending=pending):
                for _ in range(max(1, pending)):
                    yield from tier.rate.throttle()
        lock = tier.object_lock(oid)
        with op.child("tier.lock_wait", oid=oid):
            yield lock.acquire()
        try:
            result = yield from self._process_object_locked(oid, force, op)
        finally:
            lock.release()
        # Outside the lock: a capacity victim may be this same object.
        with op.child("engine.cache_enforce"):
            yield from self.enforce_cache_capacity()
        return result

    def _process_object_locked(self, oid: str, force: bool, span=NULL_SPAN):
        tier = self.tier
        seq_at_start = tier.seq(oid)
        cmap = yield from tier.load_chunk_map(oid, span=span)
        if cmap is None:
            return "missing"
        primary = tier.cluster._primary(tier.metadata_pool, oid)
        via = NodeClient(primary.node)
        key = tier.metadata_key(oid)
        txn = Transaction()
        taken = []  # (chunk_id, ref) references acquired this pass
        pending_derefs = []  # old chunks to release once the map commits
        # Batched mode: the pass accumulates its store-or-reference ops
        # in a ChunkBatch and commits them at the end through one
        # prepared transaction per placement group, instead of paying a
        # serialized round trip per chunk.
        batch = ChunkBatch() if tier.batching_enabled else None
        planned = []  # (batch op index, fp, ref, nbytes) awaiting commit
        changed = False
        pool = self.fingerprint_pool
        # Stage 1 of the flush pipeline assembles each dirty chunk's
        # bytes; the digests then fan out to the pool in one sharded
        # batch, and stage 2 consumes the results strictly in submission
        # order — every map/refcount update happens in the same sequence
        # as the sequential path regardless of hashing-thread scheduling.
        staged = []  # (chunk index, entry, data) awaiting fingerprints
        handles = []  # aligned FingerprintHandles once stage 1 completes
        try:
            with span.child("engine.chunk_assemble") as s_asm:
                for idx in cmap.dirty_indices():
                    entry = cmap.get(idx)
                    if not entry.cached:
                        # Dirty implies cached by construction; tolerate anyway.
                        entry.dirty = False
                        cmap.mark_touched(idx)
                        changed = True
                        continue
                    if entry.fully_cached():
                        data = yield from tier.read_local_chunk(
                            oid, entry.offset, entry.length
                        )
                    else:
                        # Deferred read-modify-write: merge the cached pieces
                        # with the old chunk object's bytes.  This is the
                        # "reading data for flush" background cost the paper
                        # lists for the Proposed system — paid here, not on the
                        # foreground write path.
                        buf = bytearray(entry.length)
                        for seg_start, seg_end in entry.valid:
                            part = yield from tier.read_local_chunk(
                                oid, entry.offset + seg_start, seg_end - seg_start
                            )
                            buf[seg_start : seg_start + len(part)] = part
                        if entry.chunk_id:
                            for seg_start, seg_end in entry.missing_ranges():
                                part = yield from tier.read_chunk(
                                    entry.chunk_id,
                                    seg_start,
                                    seg_end - seg_start,
                                    via,
                                    span=s_asm,
                                )
                                buf[seg_start : seg_start + len(part)] = part
                        data = bytes(buf)
                    tier.stage.chunking_ops += 1
                    tier.stage.chunking_bytes += len(data)
                    yield from primary.node.cpu.fingerprint(len(data))
                    staged.append((idx, entry, data))
                s_asm.tag(chunks=len(staged))
            with span.child("engine.fingerprint", chunks=len(staged)) as s_fp:
                handles = pool.submit_many(
                    (data for _idx, _entry, data in staged), span=s_fp
                )
            for (idx, entry, data), handle in zip(staged, handles):
                fp = handle.result()
                tier.stage.fingerprint_seconds += handle.seconds
                tier.stage.fingerprint_ops += 1
                tier.stage.fingerprint_bytes += len(data)
                ref = ChunkRef(tier.metadata_pool.pool_id, oid, entry.offset)
                if entry.chunk_id and entry.chunk_id != fp:
                    # §4.4.1 step 3: the entry stops referencing its old
                    # chunk object.  The actual dereference is deferred
                    # until the chunk-map update commits: a partially-cached
                    # entry still *needs* the old chunk for its missing
                    # ranges if this pass aborts on a foreground race.
                    pending_derefs.append((entry.chunk_id, ref))
                if entry.chunk_id != fp:
                    if batch is not None:
                        planned.append((len(batch.ops), fp, ref, len(data)))
                        batch.ref(fp, ref, data)
                    else:
                        stored = yield from tier.chunk_ref(
                            fp, ref, data, via, span=span
                        )
                        taken.append((fp, ref))
                        if stored:
                            self.stats.chunks_flushed += 1
                            self.stats.bytes_flushed += len(data)
                        else:
                            self.stats.chunks_deduped += 1
                            self.stats.bytes_deduped += len(data)
                entry.chunk_id = fp
                entry.dirty = False
                cmap.mark_touched(idx)
                if tier.cache.keep_cached_on_flush(oid):
                    if not entry.fully_cached():
                        # Materialise the merged chunk in the cache.
                        txn.write(key, entry.offset, data)
                        entry.set_fully_valid()
                        tier.cache.note_cached(oid, idx, entry.length)
                else:
                    txn.zero(key, entry.offset, entry.length)
                    entry.clear_valid()
                    tier.cache.note_evicted(oid, idx)
                    self.stats.chunks_evicted += 1
                changed = True
            if changed and cmap.cached_indices() == []:
                # Paper Figure 8, "object 2": when no chunk remains cached,
                # the metadata object holds no data at all — only metadata.
                txn.truncate(key, 0)
            if batch is not None and batch:
                if tier.seq(oid) != seq_at_start:
                    # Raced before the batch committed: nothing in the
                    # chunk pool was touched, so there is nothing to undo.
                    # The seq bump signals a mutation this pass did not
                    # observe — distrust the cached decode and let the
                    # requeued pass re-read the stored truth.
                    tier.invalidate_map_cache(oid)
                    self.stats.objects_aborted_race += 1
                    tier.mark_dirty(oid)
                    return "raced"
                outcomes = yield from tier.commit_chunk_batch(batch, via, span=span)
                for op_i, fp, ref, nbytes in planned:
                    taken.append((fp, ref))
                    if outcomes[op_i]:
                        self.stats.chunks_flushed += 1
                        self.stats.bytes_flushed += nbytes
                    else:
                        self.stats.chunks_deduped += 1
                        self.stats.bytes_deduped += nbytes
            if tier.seq(oid) != seq_at_start:
                # A foreground write landed mid-pass: our map view is stale.
                # Undo the references we took and retry later; dirty bits in
                # the (authoritative) stored map still cover the new data.
                tier.invalidate_map_cache(oid)
                yield from self._undo_refs(taken, via, span=span)
                self.stats.objects_aborted_race += 1
                tier.mark_dirty(oid)
                return "raced"
            if changed:
                tier.append_map_commit(txn, oid, cmap)
                yield from tier.cluster.submit(
                    tier.metadata_pool, oid, txn, via, span=span
                )
                tier.note_map_committed(oid, cmap)
        except Exception as exc:
            # The map commit may have faulted after partially landing:
            # drop the cached decode before any other cleanup so no
            # later load serves a snapshot the store no longer matches.
            tier.invalidate_map_cache(oid)
            # Skip-and-requeue degradation: a fault mid-pass (after the
            # I/O path's retries gave up) abandons the pass *before* the
            # chunk map commits — the dirty bits stay authoritative, so
            # nothing is lost.  References taken this pass are released;
            # the object comes back via the dirty list.  Fingerprint
            # futures still in flight are consumed first so the aborted
            # pass leaves nothing outstanding in the pool.
            self._abandon_staged(handles)
            if not is_retryable(exc):
                raise
            yield from self._undo_refs(taken, via, span=span)
            self.stats.objects_requeued_fault += 1
            tier.requeue_dirty(oid, delay=self.config.fault_requeue_delay)
            return "faulted"
        finally:
            self._sync_pool_stats()
        if pending_derefs:
            yield from self._apply_derefs(pending_derefs, via, span=span)
        self.stats.objects_processed += 1
        return "done"

    def _abandon_staged(self, handles) -> None:
        """Settle every staged fingerprint future (idempotent, no-throw).

        ``FingerprintHandle.result()`` removes the task from the pool's
        outstanding set even on failure, so after this the pool holds no
        reference to any chunk payload from the aborted pass.
        """
        for handle in handles:
            try:
                handle.result()
            except Exception:
                pass

    def _sync_pool_stats(self) -> None:
        """Mirror the digest pool's counters into the stage report."""
        pool = self._fp_pool
        if pool is None:
            return
        stage = self.tier.stage
        stage.fingerprint_workers = pool.workers
        stage.fingerprint_pool_tasks = pool.stats.tasks
        stage.fingerprint_pool_spans = pool.stats.spans
        stage.fingerprint_pool_busy_seconds = pool.stats.busy_seconds
        stage.fingerprint_pool_wall_seconds = pool.stats.wall_seconds

    def _apply_derefs(self, pairs, via, span=NULL_SPAN):
        """Process: release old-chunk references after the map commits.

        Under strict refcounting with batching enabled, the whole set is
        dropped in one batched commit (a fault leaves every reference
        over-retained — never dangling — for the GC).  Otherwise each
        dereference goes through the configured refcount strategy
        individually (``false_positive`` just queues them in memory).
        """
        tier = self.tier
        with span.child("engine.derefs", count=len(pairs)) as s:
            if (
                tier.batching_enabled
                and len(pairs) > 1
                and self.refcount.name == "strict"
            ):
                batch = ChunkBatch()
                for chunk_id, ref in pairs:
                    batch.deref(chunk_id, ref)
                try:
                    yield from tier.commit_chunk_batch(batch, via, span=s)
                except Exception as exc:
                    if not is_retryable(exc):
                        raise
                    # Batch prepare is all-or-nothing: nothing was dropped,
                    # every reference stays over-retained for the GC.
                    self.stats.derefs_deferred_fault += len(pairs)
                return
            for chunk_id, ref in pairs:
                try:
                    yield from self.refcount.deref(chunk_id, ref, via)
                except Exception as exc:
                    if not is_retryable(exc):
                        raise
                    # The map already committed, so the old reference is
                    # merely over-retained — never dangling.  Offline GC
                    # reclaims it.
                    self.stats.derefs_deferred_fault += 1

    def _undo_refs(self, taken, via, span=NULL_SPAN):
        """Process: best-effort release of references taken this pass.

        A dereference that itself faults leaves an *over*-retained
        reference (safe: the offline GC reclaims it); the refcount
        invariant "never dangling" holds either way.
        """
        for fp, ref in taken:
            try:
                yield from self.tier.chunk_deref(fp, ref, via, span=span)
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                self.stats.derefs_deferred_fault += 1

    # -- cache maintenance -----------------------------------------------------------

    def promote_object(self, oid: str):
        """Process: pull a hot object's chunks back into the cache.

        Paper §5: "If an access count for an object is higher than
        pre-defined parameter Hitcount, then the object is cached into
        the metadata pool."  Promotion copies each clean, non-cached
        chunk from the chunk pool into the metadata object's data part;
        the chunk object (and its reference) stays — the cache is a
        duplicate, paid for to serve reads at original-system cost.
        """
        tier = self.tier
        if oid in self._promoting:
            return "in_progress"
        self._promoting.add(oid)
        try:
            lock = tier.object_lock(oid)
            yield lock.acquire()
            try:
                seq_at_start = tier.seq(oid)
                cmap = yield from tier.load_chunk_map(oid)
                if cmap is None:
                    return "missing"
                primary = tier.cluster._primary(tier.metadata_pool, oid)
                via = NodeClient(primary.node)
                key = tier.metadata_key(oid)
                txn = Transaction()
                promoted = 0
                for entry in cmap:
                    if entry.dirty or entry.fully_cached() or not entry.chunk_id:
                        continue
                    data = yield from tier.read_chunk(
                        entry.chunk_id, 0, entry.length, via
                    )
                    if len(data) < entry.length:
                        # Short read (e.g. a replica still being
                        # reconciled): caching it would serve the gap as
                        # zeros forever.  Skip the entry; a later pass
                        # can promote it once the chunk reads whole.
                        continue
                    txn.write(key, entry.offset, data)
                    entry.set_fully_valid()
                    idx = entry.offset // tier.config.chunk_size
                    cmap.mark_touched(idx)
                    tier.cache.note_cached(oid, idx, entry.length)
                    promoted += 1
                if promoted == 0:
                    return "nothing"
                if tier.seq(oid) != seq_at_start:
                    # Raced: a mutation this promotion did not observe
                    # landed mid-flight — distrust the cached decode.
                    tier.invalidate_map_cache(oid)
                    return "raced"
                tier.append_map_commit(txn, oid, cmap)
                try:
                    yield from tier.cluster.submit(
                        tier.metadata_pool, oid, txn, via
                    )
                except Exception as exc:
                    # Promotion is purely an optimisation: on a fault the
                    # chunk map stays authoritative and the object is
                    # re-promoted the next time its hit count trips.
                    tier.invalidate_map_cache(oid)
                    if not is_retryable(exc):
                        raise
                    return "faulted"
                tier.note_map_committed(oid, cmap)
                self.stats.chunks_promoted += promoted
            finally:
                lock.release()
        finally:
            self._promoting.discard(oid)
        yield from self.enforce_cache_capacity()
        return "done"

    def enforce_cache_capacity(self):
        """Process: demote LRU cached chunks until within capacity."""
        for v_oid, v_idx in self.tier.cache.victims():
            yield from self.demote_chunk(v_oid, v_idx)

    def demote_chunk(self, oid: str, index: int):
        """Process: punch one clean cached chunk out of its object."""
        tier = self.tier
        lock = tier.object_lock(oid)
        yield lock.acquire()
        try:
            yield from self._demote_chunk_locked(oid, index)
        finally:
            lock.release()

    def _demote_chunk_locked(self, oid: str, index: int):
        tier = self.tier
        cmap = yield from tier.load_chunk_map(oid)
        entry = cmap.get(index) if cmap is not None else None
        if entry is None or not entry.cached:
            tier.cache.note_evicted(oid, index)
            return
        if entry.dirty:
            # Must be flushed first; leave it for the dirty-list pass.
            return
        primary = tier.cluster._primary(tier.metadata_pool, oid)
        via = NodeClient(primary.node)
        key = tier.metadata_key(oid)
        entry.clear_valid()
        cmap.mark_touched(index)
        txn = Transaction().zero(key, entry.offset, entry.length)
        tier.append_map_commit(txn, oid, cmap)
        if cmap.cached_indices() == []:
            txn.truncate(key, 0)  # fully evicted: metadata only
        try:
            yield from tier.cluster.submit(tier.metadata_pool, oid, txn, via)
        except Exception as exc:
            # Eviction is deferrable: the faulted commit may have
            # partially landed — drop the cached decode; the LRU offers
            # the chunk again on the next pass.
            tier.invalidate_map_cache(oid)
            if not is_retryable(exc):
                raise
            return
        tier.note_map_committed(oid, cmap)
        tier.cache.note_evicted(oid, index)
        self.stats.chunks_evicted += 1

    # -- draining (tests & benches) -----------------------------------------------------

    def drain(self, run_gc: bool = True):
        """Process: dedup everything on the dirty list, ignoring hotness.

        Optionally runs the refcount GC afterwards.  Used by benchmarks
        to reach the fully deduplicated steady state before measuring
        space.
        """
        guard = 0
        while True:
            oid = self.tier.next_dirty()
            if oid is None:
                # Hot-skipped objects are requeued with a delay, which a
                # drain must not wait for: rebuild the list from the
                # authoritative dirty bits instead.
                if self.tier.rebuild_dirty_list() == 0:
                    break
                continue
            result = yield from self.process_object(oid, force=True)
            guard += 1
            if guard > 1_000_000:
                raise RuntimeError("drain did not converge")
            if result == "raced":
                continue
        # Quiesce the digest pool before GC: an aborted mid-pipeline
        # flush must not leave futures (holding chunk payloads) in
        # flight while the collector decides what is reachable.
        if self._fp_pool is not None:
            self._fp_pool.quiesce()
            self._sync_pool_stats()
        if run_gc:
            node = next(iter(self.tier.cluster.nodes.values()))
            yield from self.refcount.gc(NodeClient(node))

    def drain_sync(self, run_gc: bool = True) -> None:
        """Synchronous :meth:`drain`."""
        self.tier.cluster.run(self.drain(run_gc=run_gc))
