"""Foreground I/O paths (paper §4.5).

**Write path** — indistinguishable from the underlying storage system in
the common case, because dedup is post-processed: the data lands in the
metadata object's data part (as cached chunks), chunk-map entries are
created/updated with ``cached = dirty = True`` (the chunk ID stays unset
— fingerprinting would add latency), and the object is logged in the
dirty list.  The one exception: a write that partially covers a chunk
whose bytes are *not* cached must pre-read the missing part from the
chunk object.

**Read path** — the chunk map routes each requested range either to the
metadata object's data part (cached chunk: same cost as the original
system) or to the chunk pool (redirection: metadata pool -> chunk pool
-> client, the overhead visible in Figures 10/11).  Chunks are fetched
in parallel, which is why large sequential reads recover the lost
throughput (Figure 11's 128 KiB case).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from ..cluster import NoSuchObject, Transaction
from ..obs import NULL_SPAN
from .objects import ChunkMap, ChunkMapEntry
from .tier import DedupTier

__all__ = ["write_path", "read_path", "delete_path"]


def _split_by_valid(start: int, end: int, valid):
    """Split chunk-relative ``[start, end)`` by the valid-range set.

    Yields ``(piece_start, piece_end, in_cache)`` in offset order.
    """
    pos = start
    for v_start, v_end in valid:
        if v_end <= pos or v_start >= end:
            continue
        if v_start > pos:
            yield (pos, min(v_start, end), False)
            pos = min(v_start, end)
        if pos >= end:
            return
        covered_end = min(v_end, end)
        if covered_end > pos:
            yield (pos, covered_end, True)
            pos = covered_end
        if pos >= end:
            return
    if pos < end:
        yield (pos, end, False)


def _read_cached_piece(tier, oid, offset, length, client, span=NULL_SPAN):
    """Process: read cached bytes at the metadata primary and return
    them to the client (original-system read cost).

    On an erasure-coded metadata pool the payload is sharded, so the
    read goes through the EC decode path instead.  Retried under the
    tier's policy: a primary dying mid-read re-resolves to the next
    acting replica on the following attempt.
    """
    cluster = tier.cluster
    client = client or cluster._default_client

    with span.child("tier.read_cached", oid=oid, nbytes=length) as s:

        def attempt():
            if tier.metadata_pool.is_ec:
                data = yield from cluster.read(
                    tier.metadata_pool, oid, offset, length, client, span=s
                )
                return data
            primary = cluster._primary(tier.metadata_pool, oid)
            key = tier.metadata_key(oid)
            data = yield from primary.execute_read(key, offset, length)
            yield from cluster._transfer(primary.node.nic, client.nic, len(data))
            return data

        data = yield from tier.retrying(attempt, op="read_cached", span=s)
        return data


def _read_chunk_piece(tier, chunk_id, offset, length, client, span=NULL_SPAN):
    """Process: redirected read — metadata pool forwards to the chunk
    pool; chunk primary reads (and decompresses, when the tier stores
    chunks compressed) and returns the data to the client."""
    cluster = tier.cluster
    client = client or cluster._default_client

    with span.child("tier.redirect", chunk=chunk_id, nbytes=length) as s:

        def attempt():
            # Forwarding hop: metadata primary -> chunk primary.
            yield tier.sim.timeout(cluster.profile.nic.latency)
            data = yield from tier.read_chunk(chunk_id, offset, length, client, span=s)
            return data

        data = yield from tier.retrying(attempt, op="read_chunk", span=s)
        return data


def _read_chunk_group(tier, fetches, client, span=NULL_SPAN):
    """Process: one coalesced multi-op read for chunk fetches sharing a
    placement group (:meth:`~repro.cluster.RadosCluster.read_batch`).

    Returns a list of byte strings aligned with ``fetches``.  Retried
    as a unit — reads are side-effect free, so a transient fault just
    re-issues the whole group.
    """
    cluster = tier.cluster
    client = client or cluster._default_client

    with span.child("tier.read_group", chunks=len(fetches)) as s:

        def attempt():
            # Forwarding hop: metadata primary -> chunk-pool primaries.
            yield tier.sim.timeout(cluster.profile.nic.latency)
            data = yield from cluster.read_batch(
                tier.chunk_pool,
                [(cid, f_off, f_len) for cid, f_off, f_len, _admit, _p in fetches],
                client,
                span=s,
            )
            return data

        data = yield from tier.retrying(attempt, op="read_batch", span=s)
        return data


def write_path(tier: DedupTier, oid: str, offset: int, data: bytes, client=None):
    """Process: write ``data`` at ``offset`` of object ``oid``.

    Steps (paper §4.5 write path):

    1. the client issues the request to the metadata pool;
    2. placement hashes the (unchanged, user-visible) object ID; a
       partial overwrite of a non-cached chunk pre-reads the missing
       bytes from the chunk pool;
    3. data is written to the object's data part and chunk-map entries
       are created/updated — cached and dirty set, chunk ID left as-is;
    4. the object ID is logged in the dirty list.

    The map update and the data write are one transaction, so a crash
    either persists both or neither (§4.6).
    """
    if offset < 0:
        raise ValueError(f"negative offset {offset}")
    if not data:
        return
    with tier.tracer.root_span("op.write", oid=oid, nbytes=len(data)) as op:
        # Mutations of one object are serialised (as RADOS serialises ops
        # per object at its PG): the chunk-map read-modify-write below must
        # not interleave with a dedup pass committing a new map.
        lock = tier.object_lock(oid)
        with op.child("tier.lock_wait", oid=oid):
            yield lock.acquire()
        try:
            yield from _write_locked(tier, oid, offset, data, client, op)
        finally:
            lock.release()


def _write_locked(
    tier: DedupTier, oid: str, offset: int, data: bytes, client, span=NULL_SPAN
):
    cluster = tier.cluster
    pool = tier.metadata_pool
    cs = tier.config.chunk_size
    cmap = yield from tier.load_chunk_map(oid, span=span)
    if cmap is None:
        cmap = ChunkMap(cs)
    key = tier.metadata_key(oid)
    txn = Transaction()
    end = offset + len(data)
    for idx in tier.chunker.aligned_range(offset, len(data)):
        cstart = idx * cs
        wstart, wend = max(offset, cstart), min(end, cstart + cs)
        rel_start, rel_end = wstart - cstart, wend - cstart
        entry = cmap.get(idx)
        if entry is None:
            entry = ChunkMapEntry(
                offset=cstart, length=rel_end, cached=True, dirty=True
            )
        else:
            entry.length = max(entry.length, rel_end)
            entry.dirty = True
            if not entry.chunk_id:
                # Never flushed: the whole (zero-extended) chunk lives in
                # the data part.
                entry.set_fully_valid()
            elif rel_start == 0 and rel_end >= entry.length:
                entry.set_fully_valid()
            elif not entry.add_valid(rel_start, rel_end):
                # Too fragmented to track: coalesce with a foreground
                # pre-read from the chunk object (the paper's pre-read
                # corner case; common sub-chunk writes never hit it —
                # the read-modify-write is deferred to the engine).
                with span.child("tier.preread", chunk=entry.chunk_id) as s_pre:
                    chunk_bytes = yield from tier.retrying(
                        lambda cid=entry.chunk_id, ln=entry.length, sp=s_pre: (
                            tier.read_chunk(cid, 0, ln, client, span=sp)
                        ),
                        op="preread",
                        span=s_pre,
                    )
                chunk_bytes = chunk_bytes + b"\x00" * (
                    entry.length - len(chunk_bytes)
                )
                # Fill only the ranges the cache does not hold — the
                # cached ranges carry newer data.
                for seg_start, seg_end in entry.missing_ranges():
                    txn.write(
                        key, cstart + seg_start, chunk_bytes[seg_start:seg_end]
                    )
                entry.set_fully_valid()
        cmap.set(entry)
        tier.cache.note_cached(
            oid, idx, sum(e - s for s, e in entry.valid)
        )
    txn.write(key, offset, data)
    tier.append_map_commit(txn, oid, cmap)
    # Safe to retry: the transaction writes absolute offsets, so a
    # replay after a partial failure converges to the same state.
    try:
        yield from tier.retrying(
            lambda: cluster.submit(pool, oid, txn, client, span=span),
            op="meta_write",
            span=span,
        )
    except Exception:
        # The faulted commit may have partially landed: the stored map
        # no longer necessarily matches the cached committed snapshot.
        tier.invalidate_map_cache(oid)
        raise
    tier.note_map_committed(oid, cmap)
    tier.bump_seq(oid)
    tier.mark_dirty(oid)
    tier.fg_window.note(len(data))
    tier.cache.record_access(oid)


def delete_path(tier: DedupTier, oid: str, client=None):
    """Process: delete object ``oid`` and release its chunks.

    The metadata object is removed first (the user-visible delete), then
    every chunk the map referenced is dereferenced — chunk objects whose
    last reference this was disappear with it.  A crash in between
    leaves only over-retained chunks (never dangling pointers), which
    the offline GC reclaims — the same §4.6 safety direction as flush.
    """
    with tier.tracer.root_span("op.delete", oid=oid) as op:
        lock = tier.object_lock(oid)
        with op.child("tier.lock_wait", oid=oid):
            yield lock.acquire()
        try:
            cmap = yield from tier.load_chunk_map(oid, span=op)
            if cmap is None:
                raise NoSuchObject(oid)
            key = tier.metadata_key(oid)
            cluster = tier.cluster
            # Removing an already-removed object is a no-op, so the delete
            # and each dereference below are idempotent under retry.
            yield from tier.retrying(
                lambda: cluster.submit(
                    tier.metadata_pool, oid, Transaction().remove(key), client,
                    span=op,
                ),
                op="meta_delete",
                span=op,
            )
            # The decoded map of a removed object must not be served to
            # a later recreate (load_chunk_map hits skip the existence
            # probe entirely).
            tier.invalidate_map_cache(oid)
            tier.bump_seq(oid)
            via = client
            for entry in cmap:
                if entry.chunk_id:
                    yield from tier.retrying(
                        lambda cid=entry.chunk_id, e=entry: tier.chunk_deref(
                            cid, entry_ref(tier, oid, e), via, span=op
                        ),
                        op="chunk_deref",
                        span=op,
                    )
                idx = entry.offset // tier.config.chunk_size
                tier.cache.note_evicted(oid, idx)
            tier.fg_window.note(0)
        finally:
            lock.release()


def entry_ref(tier: DedupTier, oid: str, entry):
    """The reference record a chunk-map entry implies."""
    from .objects import ChunkRef

    return ChunkRef(tier.metadata_pool.pool_id, oid, entry.offset)


def read_path(
    tier: DedupTier,
    oid: str,
    offset: int = 0,
    length: Optional[int] = None,
    client=None,
):
    """Process: read ``length`` bytes at ``offset``; returns bytes.

    Cached chunks are served from the metadata object (original-system
    cost); non-cached chunks are fetched from the chunk pool in parallel
    (redirection cost).
    """
    if offset < 0:
        raise ValueError(f"negative offset {offset}")
    with tier.tracer.root_span("op.read", oid=oid) as op:
        # A concurrent dedup pass can re-point a chunk between our map read
        # and the chunk-object read (the old chunk object disappears once
        # dereferenced).  Retrying from a fresh map resolves it.
        for attempt in range(3):
            try:
                data = yield from _read_once(tier, oid, offset, length, client, op)
                op.tag(nbytes=len(data))
                return data
            except NoSuchObject:
                if attempt == 2:
                    raise
                op.annotate("map_race", attempt=attempt + 1)
                continue


def _place_segment(tier, buf, base, sstart, seg_len, segment, span):
    """Copy one gathered segment into the assembly buffer.

    A segment can come back short when the backing object was truncated
    or re-pointed mid-read; pad to keep the gather shape, but never
    silently — the span and counter make the anomaly visible to the
    harness and to traces.
    """
    if len(segment) != seg_len:
        tier.stage.read_short_segments += 1
        span.annotate(
            "read_short_segment",
            offset=sstart,
            expected=seg_len,
            got=len(segment),
        )
        segment = segment[:seg_len] + b"\x00" * (seg_len - len(segment))
    buf[sstart - base : sstart - base + seg_len] = segment


def _windowed(window, gen):
    """Process: run ``gen`` holding one slot of the fan-out window."""
    yield window.acquire()
    try:
        result = yield from gen
        return result
    finally:
        window.release()


def _gather(tier, oid, buf, base, cached_pieces, chunk_pieces, client, span=NULL_SPAN):
    """Process: fetch every planned piece and assemble ``buf`` in place.

    Three layers, each independently disableable (the UNBATCHED perf
    baseline turns all three off):

    1. **chunk data cache** — chunk-backed pieces whose fingerprint is
       resident are served from memory with no simulated I/O; misses on
       a second-sighted fingerprint widen the fetch to the whole chunk
       so it can be admitted (never a torn payload — admission checks
       the length against the map entry);
    2. **contiguity-aware coalescing** — remaining fetches are grouped
       by the placement group holding the chunk and issued as one
       :meth:`~repro.cluster.RadosCluster.read_batch` multi-op per
       group (compressed pools fall back to per-chunk reads, which
       need whole-chunk decompression anyway);
    3. **bounded fan-out** — the resulting jobs (cached pieces + chunk
       fetches/groups) run concurrently through the tier's read window,
       or strictly one at a time when the window is disabled.

    Cache hit/miss tallies are folded into the stage counters only when
    the attempt completes, so a ``NoSuchObject`` race retried by
    :func:`read_path` never double-counts.
    """
    cache = tier.chunk_data_cache
    hits = 0
    misses = 0
    pending: List[Tuple[int, str, int, int, int]] = []
    for piece in chunk_pieces:
        sstart, chunk_id, rel, ln, _entry_len = piece
        if cache.enabled:
            data = cache.get(chunk_id)
            if data is not None:
                hits += 1
                _place_segment(tier, buf, base, sstart, ln, data[rel : rel + ln], span)
                continue
            misses += 1
        pending.append(piece)
    if hits or misses:
        with span.child("tier.chunk_cache") as s_cc:
            s_cc.tag(hits=hits, misses=misses)

    # Merge pieces of the same chunk object into one covering fetch;
    # widen to the full chunk when the admission filter wants a copy.
    # fetches: (chunk id, fetch offset, fetch length, admit, pieces)
    fetches: List[Tuple[str, int, int, bool, list]] = []
    by_chunk: "OrderedDict[str, list]" = OrderedDict()
    for piece in pending:
        by_chunk.setdefault(piece[1], []).append(piece)
    for chunk_id, pieces in by_chunk.items():
        entry_len = max(p[4] for p in pieces)
        if cache.should_admit(chunk_id, entry_len):
            fetches.append((chunk_id, 0, entry_len, True, pieces))
        else:
            f_off = min(p[2] for p in pieces)
            f_len = max(p[2] + p[3] for p in pieces) - f_off
            cache.note_seen(chunk_id)
            fetches.append((chunk_id, f_off, f_len, False, pieces))

    def place_fetch(fetch, data):
        chunk_id, f_off, f_len, admit, pieces = fetch
        if admit and len(data) == f_len:
            cache.admit(chunk_id, bytes(data))
        for sstart, _cid, rel, ln, _el in pieces:
            _place_segment(
                tier, buf, base, sstart, ln, data[rel - f_off : rel - f_off + ln], span
            )

    # Build the job list: (generator, result handler).
    jobs: List[Tuple[object, object]] = []
    for sstart, ln in cached_pieces:
        gen = _read_cached_piece(tier, oid, sstart, ln, client, span)
        jobs.append((gen, lambda seg, s=sstart, n=ln: _place_segment(
            tier, buf, base, s, n, seg, span)))
    batches = 0
    batched_chunks = 0
    coalesce = (
        tier.config.coalesce_reads
        and not tier.config.compress_chunks
        and len(fetches) > 1
    )
    if coalesce:
        groups: "OrderedDict[int, list]" = OrderedDict()
        for fetch in fetches:
            groups.setdefault(tier.chunk_pool.pg_of(fetch[0]), []).append(fetch)
        for pg in sorted(groups):
            grp = groups[pg]
            gen = _read_chunk_group(tier, grp, client, span)

            def handle_group(results, grp=grp):
                for fetch, data in zip(grp, results):
                    place_fetch(fetch, data)

            jobs.append((gen, handle_group))
        batches = len(groups)
        batched_chunks = len(fetches)
    else:
        for fetch in fetches:
            chunk_id, f_off, f_len, _admit, _pieces = fetch
            gen = _read_chunk_piece(tier, chunk_id, f_off, f_len, client, span)
            jobs.append((gen, lambda data, f=fetch: place_fetch(f, data)))

    window = tier.read_window
    with span.child("tier.read_fanout") as s_f:
        s_f.tag(
            jobs=len(jobs),
            cache_hits=hits,
            chunk_fetches=len(fetches),
            batches=batches,
            window=tier.config.read_fanout_window,
        )
        if window is None or len(jobs) <= 1:
            # Sequential issue: the pre-optimisation baseline (and the
            # trivial single-job case, where a process adds only cost).
            for gen, handle in jobs:
                result = yield from gen
                handle(result)
        else:
            procs = [
                tier.sim.process(_windowed(window, gen)) for gen, _handle in jobs
            ]
            results = yield tier.sim.all_of(procs)
            for (_gen, handle), result in zip(jobs, results):
                handle(result)
    tier.stage.chunk_cache_hits += hits
    tier.stage.chunk_cache_misses += misses
    tier.stage.fanout_chunk_reads += len(fetches)
    tier.stage.fanout_batches += batches
    tier.stage.fanout_batched_chunks += batched_chunks


def _read_once(tier, oid, offset, length, client, span=NULL_SPAN):
    cmap = yield from tier.load_chunk_map(oid, span=span)
    if cmap is None:
        raise NoSuchObject(oid)
    # The client's request reaches the metadata pool first (one RPC).
    with span.child("tier.route"):
        yield tier.sim.timeout(tier.cluster.profile.nic.latency)
    size = cmap.logical_size()
    end = size if length is None else min(offset + length, size)
    if end <= offset:
        tier.cache.record_access(oid)
        return b""
    cs = tier.config.chunk_size
    # Plan the read: split the requested range into cache-valid pieces
    # (served from the metadata object) and chunk-backed pieces (served
    # by the chunk pool, or zeros when the chunk was never flushed).
    cached_pieces: List[Tuple[int, int]] = []  # (abs start, length)
    chunk_pieces: List[Tuple[int, str, int, int, int]] = []
    # ^ (abs start, chunk id, chunk-relative offset, length, entry length)
    for idx in tier.chunker.aligned_range(offset, end - offset):
        cstart = idx * cs
        entry = cmap.get(idx)
        if entry is None:
            continue  # hole: zero-filled below
        sstart = max(offset, cstart)
        send = min(end, entry.end)
        if send <= sstart:
            continue
        for piece_start, piece_end, in_cache in _split_by_valid(
            sstart - cstart, send - cstart, entry.valid
        ):
            if in_cache:
                # Served by the metadata primary directly — the same
                # cost as the original system's read.
                tier.cache_hits += 1
                cached_pieces.append(
                    (cstart + piece_start, piece_end - piece_start)
                )
            elif entry.chunk_id:
                tier.cache_misses += 1
                # Redirection (paper §6.2.1): the metadata pool forwards
                # the request to the chunk pool, which returns the data
                # to the client — one extra network hop per chunk.
                chunk_pieces.append(
                    (
                        cstart + piece_start,
                        entry.chunk_id,
                        piece_start,
                        piece_end - piece_start,
                        entry.length,
                    )
                )
            # else: sparse zeros within the chunk
    buf = bytearray(end - offset)
    yield from _gather(
        tier, oid, buf, offset, cached_pieces, chunk_pieces, client, span
    )
    tier.fg_window.note(end - offset)
    tier.cache.record_access(oid)
    # Hot object served from the chunk pool: promote it back into the
    # metadata-pool cache (asynchronously — the read is already done).
    # ``cache_on_flush`` is the master switch for hot caching: off means
    # the metadata pool never holds clean data, so no promotion either.
    if (
        tier.on_hot_read is not None
        and tier.config.cache_on_flush
        and tier.cache.is_hot(oid)
    ):
        if any(
            entry.chunk_id and not entry.dirty and not entry.fully_cached()
            for entry in cmap
        ):
            tier.on_hot_read(oid)
    return bytes(buf)
