"""Self-contained object schema: chunk maps and reference sets.

The paper's §4.1 defines two object types:

* **Metadata object** — ID is the user-visible object ID.  Its xattr
  carries the *chunk map*: per chunk, the offset range, chunk (object)
  ID, a cached bit, and a dirty bit (Figure 8).  Cached chunks' bytes
  live in the object's own data part.
* **Chunk object** — ID is the fingerprint of its content (double
  hashing).  Its data part is the chunk; its metadata carries reference
  information ``(pool id, source object ID, offset)`` per referrer.

Both serialise into ordinary object metadata, which is what makes the
design "self-contained": replication, EC, recovery, and rebalance apply
to dedup metadata with zero extra machinery.

Sizes follow §5's implementation notes: each chunk-map entry occupies
**150 bytes** and each reference record **64 bytes**, so the metadata
overhead that drives Table 2's "actual deduplication ratio" is
reproduced byte-for-byte.
"""

from __future__ import annotations

import struct
import sys
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

__all__ = [
    "CHUNK_MAP_ENTRY_BYTES",
    "MAX_VALID_RANGES",
    "merge_ranges",
    "REFERENCE_ENTRY_BYTES",
    "CHUNK_MAP_XATTR",
    "REFS_XATTR",
    "MAP_OMAP_PREFIX",
    "map_entry_key",
    "is_v2_map_header",
    "decode_stored_map",
    "ChunkMapEntry",
    "ChunkMap",
    "ChunkRef",
    "RefSet",
]

#: Paper §5: "Each chunk entry in chunk map uses 150 bytes."
CHUNK_MAP_ENTRY_BYTES = 150
#: Paper §5: "the object in chunk pool uses additional 64 bytes for
#: reference".
REFERENCE_ENTRY_BYTES = 64

#: xattr names on metadata / chunk objects.
CHUNK_MAP_XATTR = "dedup.chunk_map"
REFS_XATTR = "dedup.refs"

_MAP_MAGIC = b"CMAP"
_MAP_HEADER = struct.Struct(">4sII")  # magic, chunk_size, entry count
_MAP_MAGIC_V2 = b"CMP2"
_MAP_HEADER_V2 = struct.Struct(">4sIIQ")  # magic, chunk_size, count, version
_ENTRY_FIXED = struct.Struct(">QIBB")  # offset, length, flags, id length
_FLAG_CACHED = 1
_FLAG_DIRTY = 2
_RANGE = struct.Struct(">II")

#: Omap key prefix for incremental (v2) chunk-map entries.  Each entry
#: lives under ``map.<idx>`` so a 1-chunk commit rewrites one 150-byte
#: record instead of the whole map blob.
MAP_OMAP_PREFIX = "map."


def map_entry_key(index: int) -> str:
    """Omap key for the chunk-map entry at chunk ``index``.

    Zero-padded so lexicographic omap order matches chunk order.
    """
    return f"{MAP_OMAP_PREFIX}{index:010d}"


def is_v2_map_header(blob: bytes) -> bool:
    """Whether ``blob`` is an incremental-format (v2) map header."""
    return blob[:4] == _MAP_MAGIC_V2

#: Maximum cached valid ranges an entry can track before the write path
#: falls back to a foreground pre-read that coalesces them.
MAX_VALID_RANGES = 4


def merge_ranges(ranges) -> Tuple[Tuple[int, int], ...]:
    """Coalesce (start, end) ranges: sorted, disjoint, non-adjacent."""
    out: List[List[int]] = []
    for start, end in sorted(ranges):
        if end <= start:
            continue
        if out and start <= out[-1][1]:
            out[-1][1] = max(out[-1][1], end)
        else:
            out.append([start, end])
    return tuple((s, e) for s, e in out)


class ChunkMapEntry:
    """One row of the chunk map (Figure 8).

    ``chunk_id`` is empty until the chunk has been fingerprinted by the
    dedup engine (the paper's write path note: "the chunk ID is not
    determined yet because it requires content based fingerprint
    hashing").

    ``valid`` lists the byte ranges (relative to ``offset``) whose data
    currently lives in the metadata object's data part.  A chunk can be
    *partially* cached: a sub-chunk write to a flushed chunk stores only
    the written bytes and defers the read-modify-write to the background
    engine — the paper's trick for keeping foreground partial writes at
    original-system cost.  ``cached`` is true iff ``valid`` is
    non-empty.

    Hand-rolled ``__slots__`` class (not a dataclass): maps hold one
    entry per chunk, so the per-instance dict overhead dominates decoded
    map memory on wide objects.
    """

    __slots__ = ("offset", "length", "chunk_id", "cached", "dirty", "valid")

    def __init__(
        self,
        offset: int,
        length: int,
        chunk_id: str = "",
        cached: bool = True,
        dirty: bool = True,
        valid: Optional[Tuple[Tuple[int, int], ...]] = None,
    ):
        self.offset = offset
        self.length = length
        self.chunk_id = chunk_id
        self.cached = cached
        self.dirty = dirty
        if valid is None:
            valid = ((0, length),) if cached else ()
        self.valid = merge_ranges(valid)
        if not self.cached and self.valid:
            raise ValueError("non-cached entry cannot have valid ranges")
        if self.cached and not self.valid:
            raise ValueError("cached entry must have valid ranges")

    def __repr__(self) -> str:
        return (
            f"ChunkMapEntry(offset={self.offset!r}, length={self.length!r}, "
            f"chunk_id={self.chunk_id!r}, cached={self.cached!r}, "
            f"dirty={self.dirty!r}, valid={self.valid!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChunkMapEntry):
            return NotImplemented
        return (
            self.offset == other.offset
            and self.length == other.length
            and self.chunk_id == other.chunk_id
            and self.cached == other.cached
            and self.dirty == other.dirty
            and self.valid == other.valid
        )

    __hash__ = None  # type: ignore[assignment]  # mutable, like the old dataclass

    @property
    def end(self) -> int:
        """Exclusive end offset of this chunk's range."""
        return self.offset + self.length

    def fully_cached(self) -> bool:
        """Whether every byte of the chunk is in the data part."""
        return self.valid == ((0, self.length),)

    def add_valid(self, start: int, end: int) -> bool:
        """Record that ``[start, end)`` (chunk-relative) is now cached.

        Returns False when the merged set would exceed
        :data:`MAX_VALID_RANGES` — the caller must then coalesce via a
        full pre-read instead.
        """
        merged = merge_ranges(self.valid + ((start, end),))
        if len(merged) > MAX_VALID_RANGES:
            return False
        self.valid = merged
        self.cached = bool(merged)
        return True

    def set_fully_valid(self) -> None:
        """Mark the whole chunk cached."""
        self.valid = ((0, self.length),)
        self.cached = True

    def clear_valid(self) -> None:
        """Mark nothing cached (after eviction/punch)."""
        self.valid = ()
        self.cached = False

    def copy(self) -> "ChunkMapEntry":
        """Field-level copy, bypassing ``__init__`` validation.

        ``chunk_id`` (str) and ``valid`` (tuple) are immutable and
        shared; mutating the copy never affects the original.
        """
        dup = ChunkMapEntry.__new__(ChunkMapEntry)
        dup.offset = self.offset
        dup.length = self.length
        dup.chunk_id = self.chunk_id
        dup.cached = self.cached
        dup.dirty = self.dirty
        dup.valid = self.valid
        return dup

    def missing_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Chunk-relative ranges *not* in the cache (complement of valid)."""
        out = []
        pos = 0
        for start, end in self.valid:
            if start > pos:
                out.append((pos, start))
            pos = max(pos, end)
        if pos < self.length:
            out.append((pos, self.length))
        return tuple(out)

    def pack(self) -> bytes:
        """Serialise to exactly :data:`CHUNK_MAP_ENTRY_BYTES` bytes."""
        cid = self.chunk_id.encode("ascii")
        fixed = _ENTRY_FIXED.size + len(cid) + 1 + _RANGE.size * len(self.valid)
        if fixed > CHUNK_MAP_ENTRY_BYTES:
            raise ValueError(f"chunk id too long: {len(cid)} bytes")
        flags = (_FLAG_CACHED if self.cached else 0) | (_FLAG_DIRTY if self.dirty else 0)
        parts = [
            _ENTRY_FIXED.pack(self.offset, self.length, flags, len(cid)),
            cid,
            bytes([len(self.valid)]),
        ]
        for start, end in self.valid:
            parts.append(_RANGE.pack(start, end))
        blob = b"".join(parts)
        return blob + b"\x00" * (CHUNK_MAP_ENTRY_BYTES - len(blob))

    @classmethod
    def unpack(cls, blob: bytes) -> "ChunkMapEntry":
        """Inverse of :meth:`pack`."""
        offset, length, flags, id_len = _ENTRY_FIXED.unpack_from(blob)
        pos = _ENTRY_FIXED.size
        # Fingerprints repeat across entries (dedup!); interning collapses
        # duplicates to one string object and makes equality a pointer test.
        chunk_id = sys.intern(blob[pos : pos + id_len].decode("ascii"))
        pos += id_len
        n_ranges = blob[pos]
        pos += 1
        valid = []
        for _ in range(n_ranges):
            start, end = _RANGE.unpack_from(blob, pos)
            valid.append((start, end))
            pos += _RANGE.size
        return cls(
            offset=offset,
            length=length,
            chunk_id=chunk_id,
            cached=bool(flags & _FLAG_CACHED),
            dirty=bool(flags & _FLAG_DIRTY),
            valid=tuple(valid),
        )


class ChunkMap:
    """The chunk map of one metadata object: index -> entry.

    Entries are keyed by chunk index (``offset // chunk_size``); static
    chunking keeps offsets aligned, so the index is derivable from any
    byte offset.
    """

    def __init__(self, chunk_size: int):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self._entries: Dict[int, ChunkMapEntry] = {}
        #: Indices mutated since the last commit; drives the incremental
        #: (v2) writer, which serialises only these entries.
        self._touched: Set[int] = set()
        #: Whether this map was decoded from an incremental (v2) store.
        #: A v1-decoded map must be committed as a full upgrade (all
        #: entries) the first time it is written incrementally.
        self.stored_v2 = False

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ChunkMapEntry]:
        for idx in sorted(self._entries):
            yield self._entries[idx]

    def get(self, index: int) -> Optional[ChunkMapEntry]:
        """Entry at chunk ``index``, or ``None``."""
        return self._entries.get(index)

    def set(self, entry: ChunkMapEntry) -> None:
        """Install ``entry`` (keyed by its offset's chunk index)."""
        if entry.offset % self.chunk_size != 0:
            raise ValueError(
                f"entry offset {entry.offset} not aligned to {self.chunk_size}"
            )
        if not (0 < entry.length <= self.chunk_size):
            raise ValueError(f"entry length {entry.length} out of range")
        idx = entry.offset // self.chunk_size
        self._entries[idx] = entry
        self._touched.add(idx)

    def copy(self) -> "ChunkMap":
        """Entry-level deep copy: mutating the copy (or any of its
        entries) never affects the original.  Touched tracking and
        ``stored_v2`` carry over, so a copy commits identically."""
        dup = ChunkMap(self.chunk_size)
        dup._entries = {i: e.copy() for i, e in self._entries.items()}
        dup._touched = set(self._touched)
        dup.stored_v2 = self.stored_v2
        return dup

    def mark_touched(self, index: int) -> None:
        """Record an in-place mutation of the entry at ``index``.

        Callers that mutate a :class:`ChunkMapEntry` directly (flag
        flips, valid-range edits) must mark it so the incremental writer
        knows to re-serialise it.
        """
        self._touched.add(index)

    def touched_indices(self) -> List[int]:
        """Sorted indices mutated since the last :meth:`clear_touched`."""
        return sorted(i for i in self._touched if i in self._entries)

    def clear_touched(self) -> None:
        """Reset mutation tracking (after a successful commit)."""
        self._touched.clear()

    def indices(self) -> List[int]:
        """Sorted chunk indices present in the map."""
        return sorted(self._entries)

    def logical_size(self) -> int:
        """Logical object size implied by the map (max entry end)."""
        return max((e.end for e in self._entries.values()), default=0)

    def dirty_indices(self) -> List[int]:
        """Indices whose chunks need dedup processing."""
        return sorted(i for i, e in self._entries.items() if e.dirty)

    def cached_indices(self) -> List[int]:
        """Indices whose chunks are cached in the metadata object."""
        return sorted(i for i, e in self._entries.items() if e.cached)

    def all_clean(self) -> bool:
        """True when no entry is dirty."""
        return not any(e.dirty for e in self._entries.values())

    def serialized_bytes(self) -> int:
        """Size of the serialised map (150 bytes/entry + header)."""
        return _MAP_HEADER.size + len(self._entries) * CHUNK_MAP_ENTRY_BYTES

    def serialize(self) -> bytes:
        """Binary form stored in the metadata object's xattr."""
        parts = [_MAP_HEADER.pack(_MAP_MAGIC, self.chunk_size, len(self._entries))]
        for idx in sorted(self._entries):
            parts.append(self._entries[idx].pack())
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "ChunkMap":
        """Inverse of :meth:`serialize`."""
        magic, chunk_size, count = _MAP_HEADER.unpack_from(blob)
        if magic != _MAP_MAGIC:
            raise ValueError(f"bad chunk map magic {magic!r}")
        cmap = cls(chunk_size)
        pos = _MAP_HEADER.size
        for _ in range(count):
            entry = ChunkMapEntry.unpack(blob[pos : pos + CHUNK_MAP_ENTRY_BYTES])
            cmap.set(entry)
            pos += CHUNK_MAP_ENTRY_BYTES
        cmap.clear_touched()
        return cmap

    def serialize_header_v2(self, version: int) -> bytes:
        """Header xattr for the incremental (v2) format.

        Entries live in omap under :func:`map_entry_key`; the xattr
        carries only magic, chunk size, entry count, and the committed
        map version.
        """
        return _MAP_HEADER_V2.pack(
            _MAP_MAGIC_V2, self.chunk_size, len(self._entries), version
        )

    def omap_entries(self, indices: Optional[List[int]] = None) -> Dict[str, bytes]:
        """Packed omap records for ``indices`` (default: every entry)."""
        if indices is None:
            indices = sorted(self._entries)
        return {map_entry_key(i): self._entries[i].pack() for i in indices}

    @classmethod
    def from_stored_v2(cls, header: bytes, omap: Mapping[str, bytes]) -> "ChunkMap":
        """Decode an incremental-format map from header xattr + omap."""
        magic, chunk_size, count, _version = _MAP_HEADER_V2.unpack_from(header)
        if magic != _MAP_MAGIC_V2:
            raise ValueError(f"bad v2 chunk map magic {magic!r}")
        cmap = cls(chunk_size)
        for key, blob in omap.items():
            if not key.startswith(MAP_OMAP_PREFIX):
                continue
            cmap.set(ChunkMapEntry.unpack(blob))
        if len(cmap) != count:
            raise ValueError(
                f"v2 chunk map header claims {count} entries, omap has {len(cmap)}"
            )
        cmap.clear_touched()
        cmap.stored_v2 = True
        return cmap


def decode_stored_map(header: bytes, omap: Mapping[str, bytes]) -> ChunkMap:
    """Decode a stored chunk map, dispatching on the header magic.

    Accepts both the legacy whole-blob format (``CMAP``: entries inline
    in the xattr) and the incremental format (``CMP2``: entries in omap
    under ``map.<idx>`` keys).
    """
    if is_v2_map_header(header):
        return ChunkMap.from_stored_v2(header, omap)
    return ChunkMap.deserialize(header)


@dataclass(frozen=True, order=True)
class ChunkRef:
    """One back-reference from a chunk object: who uses this chunk.

    Matches the paper's reference record: (pool id, source object ID,
    offset).
    """

    __slots__ = ("pool_id", "source_oid", "offset")

    pool_id: int
    source_oid: str
    offset: int


class RefSet:
    """The reference records of one chunk object.

    Serialised at :data:`REFERENCE_ENTRY_BYTES` per record into the
    chunk object's xattr; the reference *count* is simply the set size.
    """

    def __init__(self, refs: Optional[List[ChunkRef]] = None):
        self._refs = set(refs or [])

    def __len__(self) -> int:
        return len(self._refs)

    def __contains__(self, ref: ChunkRef) -> bool:
        return ref in self._refs

    def __iter__(self) -> Iterator[ChunkRef]:
        return iter(sorted(self._refs))

    def add(self, ref: ChunkRef) -> None:
        """Record a referrer (idempotent)."""
        self._refs.add(ref)

    def discard(self, ref: ChunkRef) -> None:
        """Drop a referrer if present."""
        self._refs.discard(ref)

    def serialize(self) -> bytes:
        """Fixed-width records, 64 bytes each."""
        parts = []
        max_oid = REFERENCE_ENTRY_BYTES - 13  # header is 4 + 8 + 1 bytes
        for ref in sorted(self._refs):
            oid = ref.source_oid.encode("utf-8")
            if len(oid) > max_oid:
                # Long object names hash down to stay within the record.
                import hashlib

                oid = hashlib.blake2b(oid, digest_size=16).hexdigest().encode("ascii")
            blob = struct.pack(">IQB", ref.pool_id, ref.offset, len(oid)) + oid
            parts.append(blob + b"\x00" * (REFERENCE_ENTRY_BYTES - len(blob)))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "RefSet":
        """Inverse of :meth:`serialize` (hashed long names round-trip as
        their hash — identity, not the original string)."""
        refs = []
        for pos in range(0, len(blob), REFERENCE_ENTRY_BYTES):
            rec = blob[pos : pos + REFERENCE_ENTRY_BYTES]
            pool_id, offset, oid_len = struct.unpack_from(">IQB", rec)
            raw = rec[13 : 13 + oid_len]
            try:
                oid = raw.decode("utf-8")
            except UnicodeDecodeError:
                oid = raw.hex()
            refs.append(ChunkRef(pool_id=pool_id, source_oid=oid, offset=offset))
        return cls(refs)

    def serialized_bytes(self) -> int:
        """Size of the serialised reference set."""
        return len(self._refs) * REFERENCE_ENTRY_BYTES
