"""Self-contained object schema: chunk maps and reference sets.

The paper's §4.1 defines two object types:

* **Metadata object** — ID is the user-visible object ID.  Its xattr
  carries the *chunk map*: per chunk, the offset range, chunk (object)
  ID, a cached bit, and a dirty bit (Figure 8).  Cached chunks' bytes
  live in the object's own data part.
* **Chunk object** — ID is the fingerprint of its content (double
  hashing).  Its data part is the chunk; its metadata carries reference
  information ``(pool id, source object ID, offset)`` per referrer.

Both serialise into ordinary object metadata, which is what makes the
design "self-contained": replication, EC, recovery, and rebalance apply
to dedup metadata with zero extra machinery.

Sizes follow §5's implementation notes: each chunk-map entry occupies
**150 bytes** and each reference record **64 bytes**, so the metadata
overhead that drives Table 2's "actual deduplication ratio" is
reproduced byte-for-byte.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "CHUNK_MAP_ENTRY_BYTES",
    "MAX_VALID_RANGES",
    "merge_ranges",
    "REFERENCE_ENTRY_BYTES",
    "CHUNK_MAP_XATTR",
    "REFS_XATTR",
    "ChunkMapEntry",
    "ChunkMap",
    "ChunkRef",
    "RefSet",
]

#: Paper §5: "Each chunk entry in chunk map uses 150 bytes."
CHUNK_MAP_ENTRY_BYTES = 150
#: Paper §5: "the object in chunk pool uses additional 64 bytes for
#: reference".
REFERENCE_ENTRY_BYTES = 64

#: xattr names on metadata / chunk objects.
CHUNK_MAP_XATTR = "dedup.chunk_map"
REFS_XATTR = "dedup.refs"

_MAP_MAGIC = b"CMAP"
_MAP_HEADER = struct.Struct(">4sII")  # magic, chunk_size, entry count
_ENTRY_FIXED = struct.Struct(">QIBB")  # offset, length, flags, id length
_FLAG_CACHED = 1
_FLAG_DIRTY = 2
_RANGE = struct.Struct(">II")

#: Maximum cached valid ranges an entry can track before the write path
#: falls back to a foreground pre-read that coalesces them.
MAX_VALID_RANGES = 4


def merge_ranges(ranges) -> Tuple[Tuple[int, int], ...]:
    """Coalesce (start, end) ranges: sorted, disjoint, non-adjacent."""
    out: List[List[int]] = []
    for start, end in sorted(ranges):
        if end <= start:
            continue
        if out and start <= out[-1][1]:
            out[-1][1] = max(out[-1][1], end)
        else:
            out.append([start, end])
    return tuple((s, e) for s, e in out)


@dataclass
class ChunkMapEntry:
    """One row of the chunk map (Figure 8).

    ``chunk_id`` is empty until the chunk has been fingerprinted by the
    dedup engine (the paper's write path note: "the chunk ID is not
    determined yet because it requires content based fingerprint
    hashing").

    ``valid`` lists the byte ranges (relative to ``offset``) whose data
    currently lives in the metadata object's data part.  A chunk can be
    *partially* cached: a sub-chunk write to a flushed chunk stores only
    the written bytes and defers the read-modify-write to the background
    engine — the paper's trick for keeping foreground partial writes at
    original-system cost.  ``cached`` is true iff ``valid`` is
    non-empty.
    """

    offset: int
    length: int
    chunk_id: str = ""
    cached: bool = True
    dirty: bool = True
    valid: Tuple[Tuple[int, int], ...] = None  # None -> derived default

    def __post_init__(self):
        if self.valid is None:
            self.valid = ((0, self.length),) if self.cached else ()
        self.valid = merge_ranges(self.valid)
        if not self.cached and self.valid:
            raise ValueError("non-cached entry cannot have valid ranges")
        if self.cached and not self.valid:
            raise ValueError("cached entry must have valid ranges")

    @property
    def end(self) -> int:
        """Exclusive end offset of this chunk's range."""
        return self.offset + self.length

    def fully_cached(self) -> bool:
        """Whether every byte of the chunk is in the data part."""
        return self.valid == ((0, self.length),)

    def add_valid(self, start: int, end: int) -> bool:
        """Record that ``[start, end)`` (chunk-relative) is now cached.

        Returns False when the merged set would exceed
        :data:`MAX_VALID_RANGES` — the caller must then coalesce via a
        full pre-read instead.
        """
        merged = merge_ranges(self.valid + ((start, end),))
        if len(merged) > MAX_VALID_RANGES:
            return False
        self.valid = merged
        self.cached = bool(merged)
        return True

    def set_fully_valid(self) -> None:
        """Mark the whole chunk cached."""
        self.valid = ((0, self.length),)
        self.cached = True

    def clear_valid(self) -> None:
        """Mark nothing cached (after eviction/punch)."""
        self.valid = ()
        self.cached = False

    def missing_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Chunk-relative ranges *not* in the cache (complement of valid)."""
        out = []
        pos = 0
        for start, end in self.valid:
            if start > pos:
                out.append((pos, start))
            pos = max(pos, end)
        if pos < self.length:
            out.append((pos, self.length))
        return tuple(out)

    def pack(self) -> bytes:
        """Serialise to exactly :data:`CHUNK_MAP_ENTRY_BYTES` bytes."""
        cid = self.chunk_id.encode("ascii")
        fixed = _ENTRY_FIXED.size + len(cid) + 1 + _RANGE.size * len(self.valid)
        if fixed > CHUNK_MAP_ENTRY_BYTES:
            raise ValueError(f"chunk id too long: {len(cid)} bytes")
        flags = (_FLAG_CACHED if self.cached else 0) | (_FLAG_DIRTY if self.dirty else 0)
        parts = [
            _ENTRY_FIXED.pack(self.offset, self.length, flags, len(cid)),
            cid,
            bytes([len(self.valid)]),
        ]
        for start, end in self.valid:
            parts.append(_RANGE.pack(start, end))
        blob = b"".join(parts)
        return blob + b"\x00" * (CHUNK_MAP_ENTRY_BYTES - len(blob))

    @classmethod
    def unpack(cls, blob: bytes) -> "ChunkMapEntry":
        """Inverse of :meth:`pack`."""
        offset, length, flags, id_len = _ENTRY_FIXED.unpack_from(blob)
        pos = _ENTRY_FIXED.size
        chunk_id = blob[pos : pos + id_len].decode("ascii")
        pos += id_len
        n_ranges = blob[pos]
        pos += 1
        valid = []
        for _ in range(n_ranges):
            start, end = _RANGE.unpack_from(blob, pos)
            valid.append((start, end))
            pos += _RANGE.size
        return cls(
            offset=offset,
            length=length,
            chunk_id=chunk_id,
            cached=bool(flags & _FLAG_CACHED),
            dirty=bool(flags & _FLAG_DIRTY),
            valid=tuple(valid),
        )


class ChunkMap:
    """The chunk map of one metadata object: index -> entry.

    Entries are keyed by chunk index (``offset // chunk_size``); static
    chunking keeps offsets aligned, so the index is derivable from any
    byte offset.
    """

    def __init__(self, chunk_size: int):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self._entries: Dict[int, ChunkMapEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ChunkMapEntry]:
        for idx in sorted(self._entries):
            yield self._entries[idx]

    def get(self, index: int) -> Optional[ChunkMapEntry]:
        """Entry at chunk ``index``, or ``None``."""
        return self._entries.get(index)

    def set(self, entry: ChunkMapEntry) -> None:
        """Install ``entry`` (keyed by its offset's chunk index)."""
        if entry.offset % self.chunk_size != 0:
            raise ValueError(
                f"entry offset {entry.offset} not aligned to {self.chunk_size}"
            )
        if not (0 < entry.length <= self.chunk_size):
            raise ValueError(f"entry length {entry.length} out of range")
        self._entries[entry.offset // self.chunk_size] = entry

    def indices(self) -> List[int]:
        """Sorted chunk indices present in the map."""
        return sorted(self._entries)

    def logical_size(self) -> int:
        """Logical object size implied by the map (max entry end)."""
        return max((e.end for e in self._entries.values()), default=0)

    def dirty_indices(self) -> List[int]:
        """Indices whose chunks need dedup processing."""
        return sorted(i for i, e in self._entries.items() if e.dirty)

    def cached_indices(self) -> List[int]:
        """Indices whose chunks are cached in the metadata object."""
        return sorted(i for i, e in self._entries.items() if e.cached)

    def all_clean(self) -> bool:
        """True when no entry is dirty."""
        return not any(e.dirty for e in self._entries.values())

    def serialized_bytes(self) -> int:
        """Size of the serialised map (150 bytes/entry + header)."""
        return _MAP_HEADER.size + len(self._entries) * CHUNK_MAP_ENTRY_BYTES

    def serialize(self) -> bytes:
        """Binary form stored in the metadata object's xattr."""
        parts = [_MAP_HEADER.pack(_MAP_MAGIC, self.chunk_size, len(self._entries))]
        for idx in sorted(self._entries):
            parts.append(self._entries[idx].pack())
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "ChunkMap":
        """Inverse of :meth:`serialize`."""
        magic, chunk_size, count = _MAP_HEADER.unpack_from(blob)
        if magic != _MAP_MAGIC:
            raise ValueError(f"bad chunk map magic {magic!r}")
        cmap = cls(chunk_size)
        pos = _MAP_HEADER.size
        for _ in range(count):
            entry = ChunkMapEntry.unpack(blob[pos : pos + CHUNK_MAP_ENTRY_BYTES])
            cmap.set(entry)
            pos += CHUNK_MAP_ENTRY_BYTES
        return cmap


@dataclass(frozen=True, order=True)
class ChunkRef:
    """One back-reference from a chunk object: who uses this chunk.

    Matches the paper's reference record: (pool id, source object ID,
    offset).
    """

    pool_id: int
    source_oid: str
    offset: int


class RefSet:
    """The reference records of one chunk object.

    Serialised at :data:`REFERENCE_ENTRY_BYTES` per record into the
    chunk object's xattr; the reference *count* is simply the set size.
    """

    def __init__(self, refs: Optional[List[ChunkRef]] = None):
        self._refs = set(refs or [])

    def __len__(self) -> int:
        return len(self._refs)

    def __contains__(self, ref: ChunkRef) -> bool:
        return ref in self._refs

    def __iter__(self) -> Iterator[ChunkRef]:
        return iter(sorted(self._refs))

    def add(self, ref: ChunkRef) -> None:
        """Record a referrer (idempotent)."""
        self._refs.add(ref)

    def discard(self, ref: ChunkRef) -> None:
        """Drop a referrer if present."""
        self._refs.discard(ref)

    def serialize(self) -> bytes:
        """Fixed-width records, 64 bytes each."""
        parts = []
        max_oid = REFERENCE_ENTRY_BYTES - 13  # header is 4 + 8 + 1 bytes
        for ref in sorted(self._refs):
            oid = ref.source_oid.encode("utf-8")
            if len(oid) > max_oid:
                # Long object names hash down to stay within the record.
                import hashlib

                oid = hashlib.blake2b(oid, digest_size=16).hexdigest().encode("ascii")
            blob = struct.pack(">IQB", ref.pool_id, ref.offset, len(oid)) + oid
            parts.append(blob + b"\x00" * (REFERENCE_ENTRY_BYTES - len(blob)))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "RefSet":
        """Inverse of :meth:`serialize` (hashed long names round-trip as
        their hash — identity, not the original string)."""
        refs = []
        for pos in range(0, len(blob), REFERENCE_ENTRY_BYTES):
            rec = blob[pos : pos + REFERENCE_ENTRY_BYTES]
            pool_id, offset, oid_len = struct.unpack_from(">IQB", rec)
            raw = rec[13 : 13 + oid_len]
            try:
                oid = raw.decode("utf-8")
            except UnicodeDecodeError:
                oid = raw.hex()
            refs.append(ChunkRef(pool_id=pool_id, source_oid=oid, offset=offset))
        return cls(refs)

    def serialized_bytes(self) -> int:
        """Size of the serialised reference set."""
        return len(self._refs) * REFERENCE_ENTRY_BYTES
