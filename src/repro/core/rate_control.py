"""Deduplication rate control (paper §4.4.2).

Background dedup I/O competes with foreground I/O for disks and the
network; Figure 5-(b) shows an un-throttled dedup pass collapsing
foreground throughput from ~600 to ~200 MB/s.  The paper's remedy is
watermark-based pacing: measure foreground load, and above the low
watermark allow only one dedup I/O per N foreground operations (N = 100
between the watermarks, N = 500 above the high watermark).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..sim import Simulator
from .config import DedupConfig

__all__ = ["OpWindow", "RateController"]


class OpWindow:
    """Sliding window of foreground operations for load measurement."""

    def __init__(self, sim: Simulator, window: float = 1.0):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.sim = sim
        self.window = window
        self._ops: Deque[Tuple[float, int]] = deque()  # (time, bytes)
        self.total_ops = 0
        self.total_bytes = 0

    def note(self, nbytes: int = 0) -> None:
        """Record one foreground operation at the current time."""
        self._ops.append((self.sim.now, nbytes))
        self.total_ops += 1
        self.total_bytes += nbytes
        self._expire()

    def _expire(self) -> None:
        horizon = self.sim.now - self.window
        ops = self._ops
        while ops and ops[0][0] < horizon:
            ops.popleft()

    def iops(self) -> float:
        """Foreground operations per second over the window."""
        self._expire()
        return len(self._ops) / self.window

    def throughput(self) -> float:
        """Foreground bytes per second over the window."""
        self._expire()
        return sum(b for _t, b in self._ops) / self.window


class RateController:
    """Watermark-based pacing of background dedup I/O.

    The engine calls :meth:`throttle` before each dedup I/O; the
    returned generator waits for the time N foreground operations take
    at the currently observed rate — equivalent to "one dedup I/O per N
    foreground I/Os" without needing to hook every foreground op.
    """

    def __init__(self, sim: Simulator, window: OpWindow, config: DedupConfig):
        self.sim = sim
        self.window = window
        self.config = config
        #: Counters for tests/metrics.
        self.throttled = 0
        self.passed = 0

    def _load(self) -> float:
        if self.config.watermark_metric == "throughput":
            return self.window.throughput()
        return self.window.iops()

    def current_ratio(self) -> int:
        """Foreground ops per permitted dedup I/O at the current load.

        0 means unthrottled (below the low watermark).
        """
        load = self._load()
        if load < self.config.low_watermark:
            return 0
        if load >= self.config.high_watermark:
            return self.config.ops_per_dedup_high
        return self.config.ops_per_dedup_mid

    def throttle(self):
        """Process: wait until the next dedup I/O is permitted."""
        if not self.config.rate_control:
            self.passed += 1
            return
        ratio = self.current_ratio()
        if ratio == 0:
            self.passed += 1
            return
        load = self._load()
        if self.config.watermark_metric == "iops":
            delay = ratio / max(load, 1e-9)
        else:
            # Throughput metric: treat the ratio as "foreground bytes per
            # dedup I/O" in units of the average op size over the window.
            iops = max(self.window.iops(), 1e-9)
            delay = ratio / iops
        self.throttled += 1
        yield self.sim.timeout(delay)
