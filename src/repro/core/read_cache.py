"""Hotness-aware chunk data cache for the read path.

A byte-budgeted LRU of decoded chunk payloads keyed by fingerprint,
sitting in front of the chunk pool.  Content addressing does the heavy
lifting for correctness: a chunk object's bytes can never change under
its ID (an overwrite produces a *different* fingerprint), so a cached
payload can never be stale — the only invalidation the cache needs is
eviction when the chunk object itself is reclaimed (scrub GC, last
deref) or when recovery/rebalance rewrites the pool underneath us, and
that is purely an *accounting* matter (serving the old bytes would
still be byte-correct; holding them just wastes budget on dead chunks).

Admission is two-hit (HPDedup-style hotness filter): the first sighting
of a fingerprint only records it in a bounded ghost list; a chunk is
admitted — and its *full* payload fetched and kept — only when it is
read again while still remembered.  A single sequential scan therefore
cannot flush the resident working set with chunks that will never be
read twice.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..perf.stages import StageCounters

__all__ = ["ChunkDataCache"]


class ChunkDataCache:
    """Byte-budgeted, two-hit-admission LRU of chunk payloads.

    ``capacity_bytes <= 0`` disables the cache entirely (every method
    degrades to a no-op / miss).  ``stage`` receives the admission and
    eviction counters; hit/miss counts are the *caller's* job — the
    read path tallies them per attempt and folds them in only when the
    attempt completes, so a retried read never double-counts.
    """

    def __init__(
        self,
        capacity_bytes: int,
        stage: StageCounters,
        ghost_entries: int = 4096,
    ):
        self.capacity = capacity_bytes
        self.stage = stage
        self.ghost_cap = ghost_entries
        #: Resident payloads, LRU order (oldest first).
        self._data: "OrderedDict[str, bytes]" = OrderedDict()
        #: Ghost list: fingerprints seen exactly once, no payload held.
        self._ghost: "OrderedDict[str, None]" = OrderedDict()
        self.bytes_used = 0

    @property
    def enabled(self) -> bool:
        """Whether the cache participates in reads at all."""
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, chunk_id: str) -> bool:
        return chunk_id in self._data

    def get(self, chunk_id: str) -> Optional[bytes]:
        """The resident payload for ``chunk_id``, or ``None``.

        A hit refreshes recency.  Does not touch the stage counters —
        see the class docstring for why.
        """
        data = self._data.get(chunk_id)
        if data is not None:
            self._data.move_to_end(chunk_id)
        return data

    def should_admit(self, chunk_id: str, length: int) -> bool:
        """Whether a miss on ``chunk_id`` warrants fetching the whole
        chunk for admission (second sighting, fits in the budget)."""
        if not self.enabled or length > self.capacity:
            return False
        if chunk_id in self._data:
            return False
        return chunk_id in self._ghost

    def note_seen(self, chunk_id: str) -> None:
        """Record a first sighting in the ghost list (bounded FIFO)."""
        if not self.enabled or chunk_id in self._data:
            return
        ghost = self._ghost
        if chunk_id in ghost:
            ghost.move_to_end(chunk_id)
            return
        ghost[chunk_id] = None
        while len(ghost) > self.ghost_cap:
            ghost.popitem(last=False)

    def admit(self, chunk_id: str, data: bytes) -> None:
        """Install a full payload, evicting LRU entries to fit.

        Callers must pass the *complete* chunk payload — admitting a
        torn/short read would serve truncated bytes to later hits, so
        the read path checks the length against the map entry first.
        """
        if not self.enabled or len(data) > self.capacity:
            return
        self._ghost.pop(chunk_id, None)
        old = self._data.pop(chunk_id, None)
        if old is not None:
            self.bytes_used -= len(old)
        self._data[chunk_id] = data
        self.bytes_used += len(data)
        self.stage.chunk_cache_admissions += 1
        while self.bytes_used > self.capacity:
            _victim, vdata = self._data.popitem(last=False)
            self.bytes_used -= len(vdata)
            self.stage.chunk_cache_evictions += 1

    def evict(self, chunk_id: str) -> bool:
        """Drop one chunk (reclaimed by GC / last deref); True if held."""
        self._ghost.pop(chunk_id, None)
        data = self._data.pop(chunk_id, None)
        if data is None:
            return False
        self.bytes_used -= len(data)
        self.stage.chunk_cache_evictions += 1
        return True

    def clear(self) -> None:
        """Drop everything (recovery/rebalance repair fence)."""
        self.stage.chunk_cache_evictions += len(self._data)
        self._data.clear()
        self._ghost.clear()
        self.bytes_used = 0
