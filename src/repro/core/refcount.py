"""Reference-counting strategies (paper §4.6).

The consistency model tracks, per chunk object, every referencing
(pool, source object, offset).  Two strategies are provided:

* :class:`StrictRefcount` — the default: before re-pointing a chunk-map
  entry, the engine "sends old chunk object a de-reference message and
  waits for its completion" (§4.4.1 step 3).  Correct but synchronous.
* :class:`FalsePositiveRefcount` — the §4.6 optimisation ("strictly
  locks on increment but no locking on decrement"): dereferences are
  queued in memory and return immediately; chunk objects may temporarily
  carry garbage references (false positives), which a separate GC pass
  resolves.
"""

from __future__ import annotations

from typing import List, Tuple

from .objects import ChunkRef
from .tier import ChunkBatch, DedupTier

__all__ = ["StrictRefcount", "FalsePositiveRefcount", "make_refcounter"]


class StrictRefcount:
    """Synchronous dereference; no garbage is ever left behind."""

    name = "strict"

    def __init__(self, tier: DedupTier):
        self.tier = tier

    @property
    def pending(self) -> int:
        """Queued (unprocessed) dereferences — always 0 for strict."""
        return 0

    def deref(self, chunk_id: str, ref: ChunkRef, via):
        """Process: drop the reference now and wait for completion."""
        yield from self.tier.chunk_deref(chunk_id, ref, via)

    def gc(self, via):
        """Process: nothing to collect under strict counting."""
        return
        yield  # pragma: no cover - makes this a generator


class FalsePositiveRefcount:
    """Deferred dereference: fast decrements, garbage collected later."""

    name = "false_positive"

    def __init__(self, tier: DedupTier):
        self.tier = tier
        self._queue: List[Tuple[str, ChunkRef]] = []
        #: Total dereferences resolved by GC.
        self.collected = 0

    @property
    def pending(self) -> int:
        """Dereferences queued for the next GC pass."""
        return len(self._queue)

    def deref(self, chunk_id: str, ref: ChunkRef, via):
        """Process: record the dereference and return immediately.

        The stale reference remains on the chunk object until
        :meth:`gc` runs — space is temporarily over-retained, never
        under-retained, so reads stay safe.
        """
        self._queue.append((chunk_id, ref))
        return
        yield  # pragma: no cover - makes this a generator

    def gc(self, via):
        """Process: apply all queued dereferences (the GC pass).

        With batching enabled the whole backlog commits through one
        prepared transaction per placement group instead of one round
        trip per stale reference.
        """
        queue, self._queue = self._queue, []
        if self.tier.batching_enabled and len(queue) > 1:
            batch = ChunkBatch()
            for chunk_id, ref in queue:
                batch.deref(chunk_id, ref)
            yield from self.tier.commit_chunk_batch(batch, via)
            self.collected += len(queue)
            return
        for chunk_id, ref in queue:
            yield from self.tier.chunk_deref(chunk_id, ref, via)
            self.collected += 1


def make_refcounter(tier: DedupTier):
    """Build the strategy selected by ``tier.config.refcount_mode``."""
    if tier.config.refcount_mode == "strict":
        return StrictRefcount(tier)
    return FalsePositiveRefcount(tier)
