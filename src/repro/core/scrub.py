"""Scrub and offline garbage collection for the dedup tier.

Two maintenance passes a production deployment of this design needs:

* :func:`scrub` — integrity verification ("fsck for dedup"): every
  chunk object's content must hash to its object ID (double hashing
  makes this check free of any index), every chunk-map entry must point
  at an existing chunk object, and every reference record must point
  back at a metadata object whose map actually uses the chunk.
* :func:`collect_garbage` — offline GC: the §4.6 false-positive
  refcount mode queues dereferences in memory, so a crash can leak
  references (and therefore chunk objects).  This pass recomputes the
  true reference set from the chunk maps and drops anything stale.

Both are simulation processes and charge device time for what they
read/write, so their cost can be measured too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..fingerprint import fingerprint
from .objects import ChunkRef, RefSet
from .tier import DedupTier, NodeClient

__all__ = ["ScrubReport", "scrub", "scrub_sync", "GcReport", "collect_garbage", "collect_garbage_sync"]


@dataclass
class ScrubReport:
    """Findings of one scrub pass."""

    chunks_checked: int = 0
    corrupt_chunks: List[str] = field(default_factory=list)
    dangling_map_entries: List[Tuple[str, int]] = field(default_factory=list)
    stale_references: List[Tuple[str, ChunkRef]] = field(default_factory=list)
    unreferenced_chunks: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing is wrong."""
        return not (
            self.corrupt_chunks
            or self.dangling_map_entries
            or self.stale_references
            or self.unreferenced_chunks
        )


def _live_refs(tier: DedupTier) -> Dict[str, Set[ChunkRef]]:
    """chunk id -> the references the chunk maps actually imply."""
    live: Dict[str, Set[ChunkRef]] = {}
    for oid in tier.cluster.list_objects(tier.metadata_pool):
        cmap = tier.peek_chunk_map(oid)
        if cmap is None:
            continue
        for entry in cmap:
            if entry.chunk_id:
                live.setdefault(entry.chunk_id, set()).add(
                    ChunkRef(tier.metadata_pool.pool_id, oid, entry.offset)
                )
    return live


def scrub(tier: DedupTier):
    """Process: verify dedup-tier integrity; returns a ScrubReport.

    Scrubbing is read-only; use :func:`collect_garbage` to repair the
    reference findings.
    """
    report = ScrubReport()
    cluster = tier.cluster
    live = _live_refs(tier)
    # 1. Chunk-map entries must point at existing chunks (skip dirty
    #    entries: their chunk IDs may legitimately lag behind).
    for oid in cluster.list_objects(tier.metadata_pool):
        cmap = tier.peek_chunk_map(oid)
        if cmap is None:
            continue
        for entry in cmap:
            if entry.chunk_id and not entry.dirty:
                if not cluster.exists(tier.chunk_pool, entry.chunk_id):
                    report.dangling_map_entries.append((oid, entry.offset))
    # 2. Chunk content must hash to the chunk ID (double hashing means
    #    the expected digest needs no lookup), and every stored
    #    reference must be implied by some chunk map.
    for chunk_id in cluster.list_objects(tier.chunk_pool):
        report.chunks_checked += 1
        # read_chunk decompresses tier-compressed payloads, so the
        # fingerprint check always runs over the logical content.
        data = yield from tier.read_chunk(chunk_id, 0, None, None)
        primary = cluster._primary(tier.chunk_pool, chunk_id)
        yield from primary.node.cpu.fingerprint(len(data))
        if fingerprint(data, tier.config.fingerprint_algorithm) != chunk_id:
            report.corrupt_chunks.append(chunk_id)
        implied = live.get(chunk_id, set())
        stored = set(tier._load_refs(chunk_id))
        for ref in sorted(stored - implied):
            report.stale_references.append((chunk_id, ref))
        if not implied:
            report.unreferenced_chunks.append(chunk_id)
    return report


def scrub_sync(tier: DedupTier) -> ScrubReport:
    """Synchronous :func:`scrub`."""
    return tier.cluster.run(scrub(tier))


@dataclass
class GcReport:
    """Outcome of one offline garbage-collection pass."""

    references_dropped: int = 0
    chunks_removed: int = 0
    bytes_reclaimed: int = 0


# repro-lint: flt-scope -- offline GC runs post-drain; a faulted remove() is retried by the next pass (refs recomputed each pass)
def collect_garbage(tier: DedupTier):
    """Process: drop stale references and unreferenced chunk objects.

    Recomputes the authoritative reference set from the (persisted,
    replicated) chunk maps, so it recovers from any amount of lost
    in-memory deref state.  Dirty objects are skipped — their chunks are
    in flux — so run after a drain for a full collection.
    """
    report = GcReport()
    cluster = tier.cluster
    live = _live_refs(tier)
    node = next(iter(cluster.nodes.values()))
    via = NodeClient(node)
    for chunk_id in cluster.list_objects(tier.chunk_pool):
        lock = tier.chunk_lock(chunk_id)
        yield lock.acquire()
        try:
            if not cluster.exists(tier.chunk_pool, chunk_id):
                continue
            implied = live.get(chunk_id, set())
            stored = set(tier._load_refs(chunk_id))
            stale = stored - implied
            if not stale:
                continue
            keep = stored & implied
            report.references_dropped += len(stale)
            if keep:
                yield from tier._store_refs(chunk_id, RefSet(sorted(keep)), via)
            else:
                length = yield from cluster.stat(tier.chunk_pool, chunk_id)
                try:
                    yield from cluster.remove(tier.chunk_pool, chunk_id, via)
                finally:
                    # The tier's RefSet cache must not outlive the object.
                    tier.invalidate_chunk_state(chunk_id)
                report.chunks_removed += 1
                report.bytes_reclaimed += length
        finally:
            lock.release()
    # GC rewrites reference state the maps imply; a decoded map cached
    # across the collection could disagree with what GC just decided
    # was live.  Defensive full drop — GC is rare and offline.
    tier.invalidate_map_cache()
    return report


def collect_garbage_sync(tier: DedupTier) -> GcReport:
    """Synchronous :func:`collect_garbage`."""
    return tier.cluster.run(collect_garbage(tier))
