"""Operational status snapshot for a deduplicated store.

One call gathers what an operator dashboard would poll: engine
progress, dirty backlog, cache occupancy, rate-controller state,
per-pool raw usage, and the space-saving summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..faults.injector import FaultStats
from ..faults.retry import RetryStats
from .engine import EngineStats
from .tier import SpaceReport

__all__ = ["DedupStatus", "collect_status"]


@dataclass
class DedupStatus:
    """A point-in-time snapshot of the dedup tier's health."""

    sim_time: float
    engine_running: bool
    engine: EngineStats = field(default_factory=EngineStats)
    dirty_objects: int = 0
    refcount_mode: str = "strict"
    pending_derefs: int = 0
    cached_bytes: int = 0
    cache_promotions: int = 0
    cache_demotions: int = 0
    foreground_iops: float = 0.0
    foreground_throughput: float = 0.0
    rate_ratio: int = 0
    pool_raw_bytes: Dict[str, int] = field(default_factory=dict)
    space: SpaceReport = field(default_factory=SpaceReport)
    retry: RetryStats = field(default_factory=RetryStats)
    #: Populated only when a fault injector is attached.
    faults: Optional[FaultStats] = None

    def summary_lines(self):
        """Human-readable one-screen summary."""
        space = self.space
        return [
            f"sim time           {self.sim_time:.3f}s",
            f"engine             {'running' if self.engine_running else 'stopped'}"
            f" ({self.engine.objects_processed} objects processed,"
            f" {self.engine.objects_skipped_hot} hot-skips)",
            f"dirty backlog      {self.dirty_objects} objects",
            f"refcount           {self.refcount_mode}"
            f" ({self.pending_derefs} derefs pending GC)",
            f"cache              {self.cached_bytes} bytes cached"
            f" (+{self.cache_promotions}/-{self.cache_demotions})",
            f"foreground load    {self.foreground_iops:.0f} IOPS,"
            f" {self.foreground_throughput / 1e6:.1f} MB/s"
            f" (dedup ratio limit 1/{self.rate_ratio or 'unlimited'})",
            f"logical data       {space.logical_bytes} bytes",
            f"stored (data+meta) {space.stored_bytes} bytes"
            f" -> dedup ratio {100 * space.actual_dedup_ratio:.1f}%",
            f"retries            {self.retry.retries} retries,"
            f" {self.retry.timeouts} timeouts, {self.retry.giveups} giveups"
            f" ({self.engine.objects_requeued_fault} engine requeues)",
        ] + ([] if self.faults is None else self.faults.summary_lines())


def collect_status(storage) -> DedupStatus:
    """Snapshot ``storage`` (a :class:`~repro.core.DedupedStorage`)."""
    tier = storage.tier
    return DedupStatus(
        sim_time=storage.sim.now,
        engine_running=storage.engine.running,
        engine=storage.engine.stats,
        dirty_objects=tier.dirty_count,
        refcount_mode=storage.engine.refcount.name,
        pending_derefs=storage.engine.refcount.pending,
        cached_bytes=tier.cache.cached_bytes,
        cache_promotions=tier.cache.promotions,
        cache_demotions=tier.cache.demotions,
        foreground_iops=tier.fg_window.iops(),
        foreground_throughput=tier.fg_window.throughput(),
        rate_ratio=tier.rate.current_ratio(),
        pool_raw_bytes={
            tier.metadata_pool.name: storage.cluster.pool_used_bytes(
                tier.metadata_pool
            ),
            tier.chunk_pool.name: storage.cluster.pool_used_bytes(tier.chunk_pool),
        },
        space=tier.space_report(),
        retry=tier.retry_stats,
        faults=(storage.faults.stats if getattr(storage, "faults", None) else None),
    )
