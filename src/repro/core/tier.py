"""The deduplication tier: pools, chunk-map I/O, and chunk-pool ops.

This wires the paper's §4 design onto the storage substrate:

* a **metadata pool** holding metadata objects (user-visible IDs, chunk
  maps in xattrs, cached chunks in the data part) and
* a **chunk pool** holding content-addressed chunk objects (double
  hashing: the chunk's fingerprint is its object ID, so the cluster's
  placement hash *is* the fingerprint index).

Pool-based object management (§4.2): each pool picks its own redundancy
scheme, so e.g. a replicated metadata pool can front an erasure-coded
chunk pool.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..chunking import StaticChunker
from ..compression import ZlibCodec
from ..cluster import (
    ObjectKey,
    PER_OBJECT_OVERHEAD,
    Pool,
    RadosCluster,
    Replicated,
    Transaction,
)
from ..faults.retry import RetryPolicy, RetryStats, call_with_retries
from ..obs import NULL_SPAN, Tracer
from ..perf.stages import StageCounters
from ..sim import Resource
from ..util.bloom import BloomFilter
from .config import DedupConfig
from .cache import CacheManager
from .objects import (
    CHUNK_MAP_XATTR,
    MAP_OMAP_PREFIX,
    REFS_XATTR,
    ChunkMap,
    ChunkRef,
    RefSet,
    decode_stored_map,
    is_v2_map_header,
    map_entry_key,
)
from .rate_control import OpWindow, RateController
from .read_cache import ChunkDataCache

__all__ = [
    "ChunkBatch",
    "DedupTier",
    "SpaceReport",
    "NodeClient",
    "CHUNK_ENCODING_XATTR",
]

#: xattr on chunk objects recording the payload encoding ("raw"/"zlib").
CHUNK_ENCODING_XATTR = "dedup.encoding"


class NodeClient:
    """Adapter letting a storage node act as the I/O initiator.

    The background dedup engine runs on storage nodes, not on clients;
    its chunk-pool traffic originates from the metadata-pool primary's
    NIC.
    """

    def __init__(self, node):
        self.node = node
        self.nic = node.nic


class ChunkBatch:
    """Chunk-pool reference work accumulated by one dedup pass.

    Instead of paying one serialized round trip per refcount update, the
    engine records every ``ref``/``deref`` of a pass here and commits
    them all at once through :meth:`DedupTier.commit_chunk_batch`, which
    collapses the work into one prepared transaction per placement
    group (see :meth:`~repro.cluster.RadosCluster.submit_batch`).
    """

    def __init__(self):
        #: Ordered ops: ``("ref", chunk_id, ref, data)`` or
        #: ``("deref", chunk_id, ref)``.
        self.ops: List[Tuple] = []

    def ref(self, chunk_id: str, ref: ChunkRef, data) -> None:
        """Record a store-or-reference of ``chunk_id`` by ``ref``.

        ``data`` is the chunk payload, used only if the commit finds no
        object at the content-derived location (first reference).
        """
        self.ops.append(("ref", chunk_id, ref, data))

    def deref(self, chunk_id: str, ref: ChunkRef) -> None:
        """Record dropping ``ref``'s reference to ``chunk_id``."""
        self.ops.append(("deref", chunk_id, ref))

    def chunk_ids(self) -> List[str]:
        """Distinct chunk object IDs this batch touches (sorted)."""
        return sorted({op[1] for op in self.ops})

    def __len__(self) -> int:
        return len(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)


@dataclass
class SpaceReport:
    """Space accounting for the dedup tier (drives Table 2 / Fig 12-e).

    ``ideal_dedup_ratio`` considers data only; ``actual_dedup_ratio``
    charges the dedup metadata too (chunk maps at 150 B/entry, reference
    records at 64 B, and the fixed per-object overhead) — the paper's
    distinction in Table 2.
    """

    logical_bytes: int = 0
    chunk_data_bytes: int = 0
    cached_data_bytes: int = 0
    metadata_bytes: int = 0
    raw_used_bytes: int = 0
    chunk_objects: int = 0
    metadata_objects: int = 0

    @property
    def stored_bytes(self) -> int:
        """Data + metadata, each object counted once (no redundancy)."""
        return self.chunk_data_bytes + self.cached_data_bytes + self.metadata_bytes

    @property
    def ideal_dedup_ratio(self) -> float:
        """1 - unique data / logical data (valid after a full drain)."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.chunk_data_bytes / self.logical_bytes

    @property
    def actual_dedup_ratio(self) -> float:
        """1 - (stored data + metadata) / logical data."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.stored_bytes / self.logical_bytes


class DedupTier:
    """State and helper operations shared by the I/O paths and engine."""

    def __init__(
        self,
        cluster: RadosCluster,
        config: Optional[DedupConfig] = None,
        metadata_redundancy=None,
        chunk_redundancy=None,
        metadata_pool_name: str = "dedup-metadata",
        chunk_pool_name: str = "dedup-chunks",
    ):
        self.cluster = cluster
        self.config = config if config is not None else DedupConfig()
        self.metadata_pool: Pool = cluster.create_pool(
            metadata_pool_name,
            metadata_redundancy if metadata_redundancy is not None else Replicated(2),
        )
        self.chunk_pool: Pool = cluster.create_pool(
            chunk_pool_name,
            chunk_redundancy if chunk_redundancy is not None else Replicated(2),
        )
        self.chunker = StaticChunker(self.config.chunk_size)
        self.codec = ZlibCodec(self.config.compress_level)
        self.cache = CacheManager(cluster.sim, self.config)
        self.fg_window = OpWindow(cluster.sim)
        self.rate = RateController(cluster.sim, self.fg_window, self.config)
        #: Retry/backoff plumbing for transient substrate faults; every
        #: I/O-path and engine op funnels through :meth:`retrying`.
        self.retry_policy = RetryPolicy.from_config(self.config)
        self.retry_stats = RetryStats()
        #: Per-op span trees (``repro.obs``) on the *simulation* clock —
        #: DET001 stays intact because the tracer never reads wall time.
        #: Disabled by default: every span-taking call site then gets the
        #: shared null span and the hot path stays allocation-free.
        self.tracer = Tracer(
            clock=lambda: cluster.sim.now,
            enabled=self.config.trace_ops,
            max_spans=self.config.trace_max_spans,
        )
        # Dirty object ID list (paper Figure 8). In-memory, rebuildable
        # from the dirty bits persisted in every chunk map.
        self._dirty_queue: Deque[str] = deque()
        self._dirty_set: Set[str] = set()
        # Delayed requeues already scheduled but not yet fired: a second
        # requeue (or a fired one racing a foreground mark_dirty) must
        # not enqueue the oid twice.
        self._pending_requeues: Set[str] = set()
        # Monotonic per-object mutation counters: the engine uses them to
        # detect foreground writes racing with a dedup pass.
        self.mutation_seq: Dict[str, int] = {}
        # Per-chunk-object locks serialising reference read-modify-write.
        self._chunk_locks: Dict[str, Resource] = {}
        # Per-metadata-object locks serialising dedup passes (two engine
        # workers, or flush-on-write racing the engine, must not process
        # the same object concurrently).
        self._object_locks: Dict[str, Resource] = {}
        #: Read-path counters: segments served from the metadata-pool
        #: cache vs redirected to the chunk pool.
        self.cache_hits = 0
        self.cache_misses = 0
        #: Hot-path stage counters (chunking/fingerprint/ref/flush) the
        #: perf harness snapshots; always on, bumped inline.
        self.stage = StageCounters()
        # Versioned LRU of decoded ChunkMaps in front of load_chunk_map:
        # oid -> (version, ChunkMap).  The cache holds *committed
        # snapshots only*; every load hands out a private copy, so a
        # caller mutating its map across yields can never pollute what
        # concurrent readers see.  The per-oid version counters in
        # _map_versions advance on every committed mutation (and on
        # explicit invalidation), so a cached decode is served only when
        # its version still matches — the same freshness discipline the
        # RefSet LRU follows, but with an explicit version instead of a
        # pop, so an in-flight stale object can never be re-installed.
        self._map_cache: "OrderedDict[str, Tuple[int, ChunkMap]]" = OrderedDict()
        self._map_cache_cap = self.config.map_cache_entries
        self._map_versions: Dict[str, int] = {}
        # Global fence for invalidate-all: per-oid version bumps only
        # cover oids with a version entry, but an object cached purely
        # via load misses sits at version 0 — the epoch catches its
        # in-flight decodes too (bumped alongside full invalidation).
        self._map_epoch = 0
        # Recovery and rebalance can rewrite metadata objects underneath
        # the tier (restoring an older committed state); both notify the
        # cluster's repair listeners, and the tier answers by dropping
        # every decoded-map and RefSet cache entry.
        cluster.add_repair_listener(self._on_cluster_repair)
        # LRU of hot RefSets in front of _load_refs: repeat-duplicate
        # workloads skip the chunk-pool read (and the per-lookup
        # deserialization) entirely.  Entries are invalidated on chunk
        # removal and on any ref commit that faults mid-way.
        self._ref_cache: "OrderedDict[str, RefSet]" = OrderedDict()
        self._ref_cache_cap = self.config.refset_cache_entries
        # Negative-lookup Bloom filter over stored chunk IDs: a miss is
        # a definite "never stored", so the existence probe for a brand
        # new chunk costs one in-memory filter check.  Grows itself (by
        # rebuild from the chunk pool listing) when full.
        self._chunk_bloom: Optional[BloomFilter] = (
            BloomFilter(self.config.chunk_bloom_capacity)
            if self.config.chunk_bloom_capacity > 0
            else None
        )
        if self._chunk_bloom is not None:
            for cid in cluster.list_objects(self.chunk_pool):
                self._chunk_bloom.add(cid)
        #: Hotness-aware chunk data cache in front of the chunk pool:
        #: payloads keyed by fingerprint (content-addressed, so never
        #: stale), admitted on their second sighting, byte-budgeted.
        #: Wired into chunk reclamation via invalidate_chunk_state and
        #: into recovery/rebalance via the repair listener above.
        self.chunk_data_cache = ChunkDataCache(
            self.config.chunk_cache_bytes,
            self.stage,
            ghost_entries=self.config.chunk_cache_ghost_entries,
        )
        #: Bounded in-flight window for parallel chunk fetches on the
        #: read path; ``None`` means the read loop issues them one at a
        #: time (``read_fanout_window = 0``).  Deliberately unlabeled:
        #: a counted fan-out window is a device-style throttle, not a
        #: lock — the runtime lock sanitizer must not treat the N
        #: concurrent holders as suspect double-acquires.
        self.read_window: Optional[Resource] = (
            Resource(cluster.sim, capacity=self.config.read_fanout_window)
            if self.config.read_fanout_window > 0
            else None
        )
        #: Hook invoked (with the oid) when a read finds a hot object
        #: whose chunks are not cached; the facade wires it to the
        #: engine's promotion path (§5: hot objects are cached into the
        #: metadata pool).
        self.on_hot_read = None

    @property
    def sim(self):
        """The cluster's simulator."""
        return self.cluster.sim

    def retrying(self, factory, op: str = "op", span=NULL_SPAN):
        """Process: run ``factory()`` under the tier's retry policy.

        ``factory`` must build a *fresh* op generator per call (each
        attempt needs its own); see
        :func:`repro.faults.retry.call_with_retries`.  ``span`` receives
        retry/timeout/giveup annotations.
        """
        result = yield from call_with_retries(
            self.sim, self.retry_policy, factory, self.retry_stats, op=op, span=span
        )
        return result

    # -- dirty object ID list -------------------------------------------------

    def mark_dirty(self, oid: str) -> None:
        """Log ``oid`` for background deduplication."""
        if oid not in self._dirty_set:
            self._dirty_set.add(oid)
            self._dirty_queue.append(oid)

    def next_dirty(self) -> Optional[str]:
        """Pop the next dirty object ID, or ``None`` when list is empty."""
        if not self._dirty_queue:
            return None
        oid = self._dirty_queue.popleft()
        self._dirty_set.discard(oid)
        return oid

    def requeue_dirty(self, oid: str, delay: float = 0.0) -> None:
        """Put ``oid`` back on the dirty list, optionally after a delay.

        Deduplicated: an oid already on the list, or with a delayed
        requeue still pending, is not enqueued again — a retryable
        engine abort can otherwise requeue the same object from both
        the pass's fault handler and the worker loop's, and the second
        firing would re-add (and re-process) an oid the engine already
        drained.
        """
        if delay > 0:
            if oid in self._dirty_set or oid in self._pending_requeues:
                return
            self._pending_requeues.add(oid)
            self.sim.call_later(delay, self._fire_requeue, oid)
        else:
            self.mark_dirty(oid)

    def _fire_requeue(self, oid: str) -> None:
        self._pending_requeues.discard(oid)
        self.mark_dirty(oid)

    @property
    def dirty_count(self) -> int:
        """Objects currently on the dirty list."""
        return len(self._dirty_queue)

    def rebuild_dirty_list(self) -> int:
        """Recover the dirty list by scanning persisted chunk maps.

        The list itself is volatile; the authoritative dirty state is
        the per-entry dirty bit inside every (replicated) chunk map, so
        a restart can always reconstruct it.  Returns the number of
        dirty objects found.
        """
        self._dirty_queue.clear()
        self._dirty_set.clear()
        for oid in self.cluster.list_objects(self.metadata_pool):
            cmap = self.peek_chunk_map(oid)
            if cmap is not None and not cmap.all_clean():
                self.mark_dirty(oid)
        return self.dirty_count

    def bump_seq(self, oid: str) -> int:
        """Advance and return the mutation counter for ``oid``."""
        seq = self.mutation_seq.get(oid, 0) + 1
        self.mutation_seq[oid] = seq
        return seq

    def seq(self, oid: str) -> int:
        """Current mutation counter for ``oid``."""
        return self.mutation_seq.get(oid, 0)

    # -- chunk map I/O -------------------------------------------------------

    def metadata_key(self, oid: str) -> ObjectKey:
        """Fully qualified key of a metadata object."""
        return self.cluster.object_key(self.metadata_pool, oid)

    def peek_chunk_map(self, oid: str) -> Optional[ChunkMap]:
        """Read the chunk map without charging simulated time (tests,
        accounting, planning)."""
        key = self.metadata_key(oid)
        # acting_osds (not acting_set_for): mid-rebalance the object may
        # still be parked on its pre-remap acting set.
        for osd in self.cluster.acting_osds(self.metadata_pool, oid):
            if osd.up and osd.store.exists(key):
                obj = osd.store.get(key)
                blob = obj.xattrs.get(CHUNK_MAP_XATTR)
                return decode_stored_map(blob, obj.omap) if blob else None
        return None

    # -- decoded-map cache ----------------------------------------------------

    def map_version(self, oid: str) -> int:
        """Current committed map version for ``oid`` (0 = never seen)."""
        return self._map_versions.get(oid, 0)

    def _cache_map(self, oid: str, cmap: ChunkMap, version: int) -> None:
        if self._map_cache_cap <= 0:
            return
        cache = self._map_cache
        cache[oid] = (version, cmap)
        cache.move_to_end(oid)
        while len(cache) > self._map_cache_cap:
            cache.popitem(last=False)

    def note_map_committed(self, oid: str, cmap: ChunkMap) -> int:
        """Record that ``cmap`` is now the committed map of ``oid``.

        Bumps the object's map version, resets the map's touched-entry
        tracking, and installs the decoded map in the cache so the next
        ``load_chunk_map`` is a hit.  Must be called only after the
        commit transaction succeeded.  Returns the new version.
        """
        version = self.map_version(oid) + 1
        self._map_versions[oid] = version
        cmap.stored_v2 = self.config.incremental_map_commits
        cmap.clear_touched()
        # Cache a private snapshot: the caller keeps ownership of
        # ``cmap`` and may keep mutating it without polluting the
        # committed state served to concurrent loads.
        self._cache_map(oid, cmap.copy(), version)
        return version

    def invalidate_map_cache(self, oid: Optional[str] = None) -> None:
        """Drop decoded maps (one object, or all when ``None``).

        Owners: faulted/aborted commits (the in-memory map may have been
        mutated without landing), deletes, GC, recovery, and rebalance
        migration.  Bumping the version — not just popping the cache
        entry — also fences any stale decode still held by an in-flight
        op from being re-installed later.
        """
        if oid is None:
            self.stage.map_cache_invalidations += len(self._map_cache)
            self._map_cache.clear()
            # The epoch fences in-flight decodes of objects with no
            # version entry yet (still at version 0, e.g. cached purely
            # via load misses after a tier restart) — the per-oid bumps
            # below cannot reach those.
            self._map_epoch += 1
            for known in self._map_versions:
                self._map_versions[known] += 1
        else:
            if self._map_cache.pop(oid, None) is not None:
                self.stage.map_cache_invalidations += 1
            self._map_versions[oid] = self.map_version(oid) + 1

    def _on_cluster_repair(self) -> None:
        # Recovery / rebalance rewrote objects under us: every cached
        # decode (maps and RefSets) is suspect.
        self.invalidate_map_cache()
        self.invalidate_chunk_state()

    def load_chunk_map(self, oid: str, span=NULL_SPAN):
        """Process: fetch the chunk map at the metadata primary.

        The lookup happens server-side as part of whatever operation
        carries it (the map lives in the object's own metadata), so the
        cost is a small primary disk read — no extra network round trip.
        On the common path the versioned decoded-map cache serves the
        map without touching the disk at all.  Returns ``None`` for an
        unknown object.

        The returned ChunkMap is the caller's *private copy* (hit or
        miss): readers get a consistent committed snapshot even while a
        lock-holding writer mutates its own copy across yields, and a
        mutating caller either commits (``note_map_committed``) or
        invalidates (``invalidate_map_cache``) — the cache itself only
        ever holds committed snapshots.
        """
        with span.child("tier.load_chunk_map", oid=oid) as s:
            cached = self._map_cache.get(oid)
            if cached is not None and cached[0] == self.map_version(oid):
                with s.child("tier.map_cache", oid=oid) as c:
                    c.tag(hit=True)
                    self._map_cache.move_to_end(oid)
                    self.stage.map_cache_hits += 1
                s.tag(found=True, map_cache="hit")
                return cached[1].copy()
            primary = self.cluster._primary(self.metadata_pool, oid)
            key = self.metadata_key(oid)
            if not primary.store.exists(key):
                s.tag(found=False)
                return None
            obj = primary.store.get(key)
            blob = obj.xattrs.get(CHUNK_MAP_XATTR)
            if blob is None:
                s.tag(found=False)
                return None
            # Snapshot everything the decode needs *before* the disk
            # yield: a lock-holding writer may commit while this process
            # is parked on the read, replacing the header xattr and the
            # omap records under us — decoding a mix of old header and
            # new records raises (v2 entry-count check) or yields a
            # torn map.
            nbytes = len(blob)
            omap_records: Dict[str, bytes] = {}
            if is_v2_map_header(blob):
                omap_records = {
                    k: v
                    for k, v in obj.omap.items()
                    if k.startswith(MAP_OMAP_PREFIX)
                }
                nbytes += sum(len(v) for v in omap_records.values())
            version = self.map_version(oid)
            epoch = self._map_epoch
            yield from primary.disk.read(nbytes)
            self.stage.map_cache_misses += 1
            s.tag(found=True, nbytes=nbytes, map_cache="miss")
            cmap = decode_stored_map(blob, omap_records)
            # Install only when nothing committed or invalidated during
            # the yield — a stale decode must not overwrite the fresh
            # entry a concurrent commit just installed, nor re-enter
            # after a repair fence.  The decode itself is still returned:
            # it is a consistent snapshot of the pre-yield committed map.
            if version == self.map_version(oid) and epoch == self._map_epoch:
                self._cache_map(oid, cmap.copy(), version)
            return cmap

    def append_map_commit(self, txn: Transaction, oid: str, cmap: ChunkMap) -> None:
        """Add ``cmap``'s commit ops for ``oid`` to ``txn``.

        Incremental mode (v2): writes the small header xattr plus one
        omap record per *touched* entry — a 1-chunk update serialises
        one 150-byte record instead of the whole map.  A map decoded
        from the legacy blob is upgraded by writing every entry once.
        Whole-map mode (v1): rewrites the full blob (and clears any v2
        omap records left by an earlier incremental era).

        The caller owns the commit outcome: on success call
        :meth:`note_map_committed`; on a fault that may have mutated the
        in-memory map without landing, call :meth:`invalidate_map_cache`.
        Safe to call again for a retry attempt — touched tracking is
        only cleared by ``note_map_committed``.
        """
        key = self.metadata_key(oid)
        total = len(cmap)
        if self.config.incremental_map_commits:
            header = cmap.serialize_header_v2(self.map_version(oid) + 1)
            indices = cmap.touched_indices() if cmap.stored_v2 else cmap.indices()
            entries = cmap.omap_entries(indices)
            txn.setxattr(key, CHUNK_MAP_XATTR, header)
            if entries:
                txn.omap_set(key, entries)
            self.stage.map_commits_incremental += 1
            self.stage.map_entries_serialized += len(entries)
            self.stage.map_bytes_serialized += len(header) + sum(
                len(v) for v in entries.values()
            )
        else:
            blob = cmap.serialize()
            txn.setxattr(key, CHUNK_MAP_XATTR, blob)
            if cmap.stored_v2:
                txn.omap_rm(key, [map_entry_key(i) for i in cmap.indices()])
            self.stage.map_commits_full += 1
            self.stage.map_entries_serialized += total
            self.stage.map_bytes_serialized += len(blob)
        self.stage.map_entries_total += total

    def read_local_chunk(self, oid: str, offset: int, length: int):
        """Process: read cached chunk bytes at the metadata primary.

        Used by the dedup engine, which runs next to the data: no client
        network transfer, just a local disk read (an EC decode when the
        metadata pool is erasure-coded).
        """
        if self.metadata_pool.is_ec:
            data = yield from self.cluster._ec_read_internal(self.metadata_pool, oid)
            return data[offset : offset + length]
        primary = self.cluster._primary(self.metadata_pool, oid)
        key = self.metadata_key(oid)
        data = yield from primary.execute_read(key, offset, length)
        return data

    # -- chunk pool operations --------------------------------------------------

    def chunk_lock(self, chunk_id: str) -> Resource:
        """Per-chunk-object mutex for reference read-modify-write."""
        lock = self._chunk_locks.get(chunk_id)
        if lock is None:
            lock = Resource(self.sim, capacity=1, label=f"tier.chunk:{chunk_id}")
            self._chunk_locks[chunk_id] = lock
        return lock

    def object_lock(self, oid: str) -> Resource:
        """Per-metadata-object mutex for dedup passes."""
        lock = self._object_locks.get(oid)
        if lock is None:
            lock = Resource(self.sim, capacity=1, label=f"tier.object:{oid}")
            self._object_locks[oid] = lock
        return lock

    # -- ref caching ----------------------------------------------------------

    def chunk_exists(self, chunk_id: str) -> bool:
        """Whether a chunk object is stored (negative-lookup accelerated).

        A RefSet-cache hit or a Bloom-filter miss answers without
        touching the chunk pool at all; only a "maybe stored" falls
        through to the real existence probe.  Sound because every chunk
        store goes through this tier (``chunk_ref`` or a batch commit),
        which inserts the ID into the filter — so a filter miss really
        means "never stored".
        """
        if chunk_id in self._ref_cache:
            return True
        if self._chunk_bloom is not None and chunk_id not in self._chunk_bloom:
            self.stage.bloom_negative_hits += 1
            return False
        return self.cluster.exists(self.chunk_pool, chunk_id)

    def _note_chunk_stored(self, chunk_id: str) -> None:
        """Record a newly stored chunk ID in the Bloom filter."""
        bloom = self._chunk_bloom
        if bloom is None:
            return
        if bloom.count >= bloom.capacity:
            # Rebuild at double capacity from the authoritative listing
            # (map-time); the old filter's false-positive rate would
            # otherwise degrade unbounded.
            grown = BloomFilter(bloom.capacity * 2, bloom.error_rate)
            for cid in self.cluster.list_objects(self.chunk_pool):
                grown.add(cid)
            self._chunk_bloom = bloom = grown
        bloom.add(chunk_id)

    def _cache_refs(self, chunk_id: str, refs: RefSet) -> None:
        if self._ref_cache_cap <= 0:
            return
        cache = self._ref_cache
        cache[chunk_id] = refs
        cache.move_to_end(chunk_id)
        while len(cache) > self._ref_cache_cap:
            cache.popitem(last=False)

    def invalidate_chunk_state(self, chunk_id: Optional[str] = None) -> None:
        """Drop cached RefSets (one chunk, or all when ``None``).

        Called whenever a chunk object is removed or a ref commit
        faulted mid-way, so the cache never serves state the substrate
        may not hold.  (Bloom entries persist — a stale positive only
        costs the real existence probe.)

        The chunk *data* cache is evicted here too.  Content addressing
        means its payloads can never be byte-stale, but a reclaimed
        chunk must stop occupying budget — and a read served purely
        from cache after GC removed the object would mask a dangling
        map entry that scrub should surface.
        """
        if chunk_id is None:
            self._ref_cache.clear()
            self.chunk_data_cache.clear()
        else:
            self._ref_cache.pop(chunk_id, None)
            self.chunk_data_cache.evict(chunk_id)

    def _load_refs(self, chunk_id: str) -> RefSet:
        cached = self._ref_cache.get(chunk_id)
        if cached is not None:
            self._ref_cache.move_to_end(chunk_id)
            self.stage.refset_cache_hits += 1
            return cached
        self.stage.refset_cache_misses += 1
        key = self.cluster.object_key(self.chunk_pool, chunk_id)
        # acting_osds: a chunk mid-migration (and its self-contained
        # refcounts) may only exist on the old acting set — reading the
        # strict set here would return an empty RefSet and break REF001.
        for osd in self.cluster.acting_osds(self.chunk_pool, chunk_id):
            if osd.up and osd.store.exists(key):
                blob = osd.store.get(key).xattrs.get(REFS_XATTR, b"")
                refs = RefSet.deserialize(blob)
                self._cache_refs(chunk_id, refs)
                return refs
        return RefSet()

    # repro-lint: flt-scope -- commit primitive: faults must propagate to the caller's scope (engine skip-and-requeue / io_path retries), which owns the undo policy
    def _store_refs(self, chunk_id: str, refs: RefSet, via, span=NULL_SPAN):
        blob = refs.serialize()
        try:
            if self.chunk_pool.is_ec:
                yield from self.cluster.setxattr(
                    self.chunk_pool, chunk_id, REFS_XATTR, blob, via
                )
            else:
                key = self.cluster.object_key(self.chunk_pool, chunk_id)
                txn = Transaction().setxattr(key, REFS_XATTR, blob)
                yield from self.cluster.submit(
                    self.chunk_pool, chunk_id, txn, via, span=span
                )
        except Exception:
            # The commit may or may not have landed; never serve the
            # in-memory state as truth.
            self.invalidate_chunk_state(chunk_id)
            raise
        self._cache_refs(chunk_id, refs)

    # repro-lint: flt-scope -- commit primitive: faults must propagate to the caller's scope (engine skip-and-requeue / io_path retries), which owns the undo policy
    def chunk_ref(self, chunk_id: str, ref: ChunkRef, data: bytes, via, span=NULL_SPAN):
        """Process: store-or-reference a chunk object (§4.4.1 steps 4-5).

        If no object exists at the content-derived location, store the
        chunk with this first reference; otherwise only append reference
        information — the write of the duplicate data never happens,
        which *is* the deduplication.

        With ``compress_chunks`` on, the payload is compressed before it
        is stored (the chunk's *ID* is always the fingerprint of the
        uncompressed content, so dedup detection is unaffected).

        Returns True when the chunk data was newly stored.
        """
        with span.child("tier.chunk_ref", chunk=chunk_id) as s:
            lock = self.chunk_lock(chunk_id)
            yield lock.acquire()
            try:
                self.stage.ref_ops += 1
                exists = self.chunk_exists(chunk_id)
                refs = self._load_refs(chunk_id) if exists else RefSet()
                refs.add(ref)
                s.tag(dedup_hit=exists)
                if not exists:
                    blob, encoding = data, b"raw"
                    if self.config.compress_chunks:
                        node = getattr(via, "node", None)
                        if node is not None:
                            yield from node.cpu.execute(
                                node.cpu.spec.compress_time(len(data))
                            )
                        coded = self.codec.compress(data)
                        if len(coded) < len(data):
                            blob, encoding = coded, b"zlib"
                    yield from self.cluster.write_full(
                        self.chunk_pool, chunk_id, blob, via, span=s
                    )
                    self._note_chunk_stored(chunk_id)
                    self.stage.flush_ops += 1
                    self.stage.flush_bytes += len(blob)
                    if self.config.compress_chunks:
                        if self.chunk_pool.is_ec:
                            yield from self.cluster.setxattr(
                                self.chunk_pool, chunk_id, CHUNK_ENCODING_XATTR,
                                encoding, via,
                            )
                        else:
                            yield from self._set_encoding(chunk_id, encoding, via, s)
                    yield from self._store_refs(chunk_id, refs, via, span=s)
                    self.stage.ref_commits += 1
                    return True
                yield from self._store_refs(chunk_id, refs, via, span=s)
                self.stage.ref_commits += 1
                return False
            finally:
                lock.release()

    # repro-lint: flt-scope -- commit primitive: runs only inside chunk_ref, whose callers own the fault scope
    def _set_encoding(self, chunk_id: str, encoding: bytes, via, span=NULL_SPAN):
        key = self.cluster.object_key(self.chunk_pool, chunk_id)
        txn = Transaction().setxattr(key, CHUNK_ENCODING_XATTR, encoding)
        yield from self.cluster.submit(self.chunk_pool, chunk_id, txn, via, span=span)

    # repro-lint: flt-scope -- commit primitive: idempotent (§4.6); faults propagate to the caller's scope, which defers the deref to GC
    def chunk_deref(self, chunk_id: str, ref: ChunkRef, via, span=NULL_SPAN):
        """Process: drop one reference; remove the chunk at zero refs.

        Dereferencing a missing chunk or reference is a no-op (a crashed
        dedup pass may retry a dereference that already happened — the
        paper's §4.6 failure analysis relies on this idempotence).
        """
        with span.child("tier.chunk_deref", chunk=chunk_id) as s:
            lock = self.chunk_lock(chunk_id)
            yield lock.acquire()
            try:
                self.stage.ref_ops += 1
                if not self.chunk_exists(chunk_id):
                    return
                refs = self._load_refs(chunk_id)
                if ref not in refs:
                    return
                refs.discard(ref)
                if len(refs) == 0:
                    s.tag(removed=True)
                    try:
                        yield from self.cluster.remove(self.chunk_pool, chunk_id, via)
                    finally:
                        # Whether the removal landed or faulted mid-way, the
                        # cached (already mutated) RefSet is no longer truth.
                        self.invalidate_chunk_state(chunk_id)
                else:
                    yield from self._store_refs(chunk_id, refs, via, span=s)
                self.stage.ref_commits += 1
            finally:
                lock.release()

    # -- batched reference commits --------------------------------------------

    @property
    def batching_enabled(self) -> bool:
        """Whether dedup passes should batch their ref/deref commits.

        EC chunk pools fall back to the per-op path: every EC mutation
        is an independent full-stripe read-modify-write, so nothing
        merges and a mid-batch fault would leave a committed prefix
        (see :meth:`~repro.cluster.RadosCluster.submit_batch`).
        """
        return self.config.batch_refs and not self.chunk_pool.is_ec

    # repro-lint: flt-scope -- commit primitive: two-phase prepare makes a fault all-or-nothing; callers own the requeue/defer policy
    def commit_chunk_batch(self, batch: ChunkBatch, via, span=NULL_SPAN):
        """Process: apply a pass's accumulated ref/deref ops at once.

        Per-chunk final states (refcounts, payload stores, removals)
        are computed in memory under the chunk locks, then the whole
        batch is committed through
        :meth:`~repro.cluster.RadosCluster.submit_batch` — one prepared
        transaction per placement group instead of one round trip per
        refcount update.  A transient fault during the batched prepare
        leaves no chunk object mutated, so the engine retries the batch
        as a unit without undo.

        Returns a list aligned with ``batch.ops``: ``True`` when that
        ref op newly stored the chunk payload, ``False`` when it
        deduplicated against an existing chunk, ``None`` for derefs.
        """
        outcomes: List[Optional[bool]] = [None] * len(batch.ops)
        if not batch:
            return outcomes
        per_chunk: "OrderedDict[str, List[Tuple[int, Tuple]]]" = OrderedDict()
        for i, op in enumerate(batch.ops):
            per_chunk.setdefault(op[1], []).append((i, op))
        with span.child(
            "tier.commit_chunk_batch", ops=len(batch.ops), chunks=len(per_chunk)
        ) as s:
            # Sorted acquisition: concurrent passes (and the per-op path,
            # which holds at most one chunk lock) cannot deadlock.
            chunk_ids = sorted(per_chunk)
            locks = [self.chunk_lock(cid) for cid in chunk_ids]
            acquired: List[Resource] = []
            try:
                for lock in locks:
                    yield lock.acquire()
                    acquired.append(lock)
                self.stage.ref_ops += len(batch.ops)
                items: List[Tuple[str, Transaction]] = []
                stored_payloads: List[Tuple[str, bytes]] = []
                removed: List[str] = []
                survivors: List[Tuple[str, RefSet]] = []
                for cid, ops in per_chunk.items():
                    existed = self.chunk_exists(cid)
                    refs = self._load_refs(cid) if existed else RefSet()
                    payload = None
                    for i, op in ops:
                        if op[0] == "ref":
                            _, _, ref, data = op
                            if not existed and payload is None:
                                payload = bytes(data)
                                outcomes[i] = True
                            else:
                                outcomes[i] = False
                            refs.add(ref)
                        else:
                            refs.discard(op[2])
                    key = self.cluster.object_key(self.chunk_pool, cid)
                    txn = Transaction()
                    if len(refs) == 0:
                        if existed:
                            txn.remove(key)
                            removed.append(cid)
                        else:
                            # Net no-op: every ref taken in this batch was
                            # also dropped in it — never create the object,
                            # and downgrade the "stored" outcome.
                            for i, op in ops:
                                if op[0] == "ref":
                                    outcomes[i] = False
                            payload = None
                    else:
                        if not existed:
                            blob, encoding = payload, b"raw"
                            if self.config.compress_chunks:
                                node = getattr(via, "node", None)
                                if node is not None:
                                    yield from node.cpu.execute(
                                        node.cpu.spec.compress_time(len(payload))
                                    )
                                coded = self.codec.compress(payload)
                                if len(coded) < len(payload):
                                    blob, encoding = coded, b"zlib"
                            txn.write_full(key, blob)
                            if self.config.compress_chunks:
                                txn.setxattr(key, CHUNK_ENCODING_XATTR, encoding)
                            stored_payloads.append((cid, blob))
                        txn.setxattr(key, REFS_XATTR, refs.serialize())
                        survivors.append((cid, refs))
                    if len(txn):
                        items.append((cid, txn))
                try:
                    yield from self.cluster.submit_batch(
                        self.chunk_pool, items, via, span=s
                    )
                except Exception:
                    # The in-memory RefSets (possibly shared with the LRU)
                    # were already mutated; the substrate was not (batch
                    # prepare is all-or-nothing).  Drop every touched cache
                    # entry so a retry reloads the true state.
                    for cid in chunk_ids:
                        self.invalidate_chunk_state(cid)
                    raise
                for cid in removed:
                    self.invalidate_chunk_state(cid)
                for cid, refs in survivors:
                    self._cache_refs(cid, refs)
                for cid, blob in stored_payloads:
                    self._note_chunk_stored(cid)
                    self.stage.flush_ops += 1
                    self.stage.flush_bytes += len(blob)
                if items:
                    self.stage.ref_batches += 1
                    self.stage.ref_commits += len(
                        {self.chunk_pool.pg_of(cid) for cid, _ in items}
                    )
                s.tag(stored=len(stored_payloads), removed=len(removed))
                return outcomes
            finally:
                for lock in reversed(acquired):
                    lock.release()

    def read_chunk(
        self, chunk_id: str, offset: int, length: Optional[int], client, span=NULL_SPAN
    ):
        """Process: read chunk bytes from the chunk pool (redirection).

        Transparently decompresses tier-compressed chunks (the whole
        chunk must be fetched and decoded before slicing — the CPU and
        extra-bytes cost of compression's read path).
        """
        with span.child("tier.read_chunk", chunk=chunk_id) as s:
            if not self.config.compress_chunks:
                data = yield from self.cluster.read(
                    self.chunk_pool, chunk_id, offset, length, client, span=s
                )
                return data
            blob = yield from self.cluster.read(
                self.chunk_pool, chunk_id, 0, None, client, span=s
            )
            encoding = self._chunk_encoding(chunk_id)
            if encoding == b"zlib":
                primary = self.cluster._primary(self.chunk_pool, chunk_id)
                yield from primary.node.cpu.execute(
                    primary.node.cpu.spec.compress_time(len(blob))
                )
                blob = self.codec.decompress(blob)
            if length is None:
                return blob[offset:]
            return blob[offset : offset + length]

    def _chunk_encoding(self, chunk_id: str) -> bytes:
        key = self.cluster.object_key(self.chunk_pool, chunk_id)
        for osd in self.cluster.acting_osds(self.chunk_pool, chunk_id):
            if osd.up and osd.store.exists(key):
                return osd.store.get(key).xattrs.get(CHUNK_ENCODING_XATTR, b"raw")
        return b"raw"

    def chunk_refcount(self, chunk_id: str) -> int:
        """Reference count of a chunk object (map-time, for tests)."""
        return len(self._load_refs(chunk_id))

    # -- accounting ----------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        """Measure current space use (see :class:`SpaceReport`)."""
        report = SpaceReport()
        cluster = self.cluster
        for oid in cluster.list_objects(self.metadata_pool):
            key = self.metadata_key(oid)
            for osd in cluster.acting_osds(self.metadata_pool, oid):
                if osd.store.exists(key):
                    obj = osd.store.get(key)
                    cmap_blob = obj.xattrs.get(CHUNK_MAP_XATTR, b"")
                    cmap = (
                        decode_stored_map(cmap_blob, obj.omap) if cmap_blob else None
                    )
                    # v2 maps keep entries in omap records; charge their
                    # keys+values alongside the header so both formats
                    # are billed for what they actually store.
                    map_bytes = len(cmap_blob) + sum(
                        len(k) + len(v)
                        for k, v in obj.omap.items()
                        if k.startswith(MAP_OMAP_PREFIX)
                    )
                    report.metadata_objects += 1
                    report.logical_bytes += (
                        cmap.logical_size() if cmap else len(obj.data)
                    )
                    if self.metadata_pool.is_ec:
                        # Each OSD holds one shard; payload-once bytes
                        # are k shards' worth (parity excluded).
                        report.cached_data_bytes += (
                            obj.allocated_bytes() * self.metadata_pool.codec.k
                        )
                    else:
                        report.cached_data_bytes += obj.allocated_bytes()
                    report.metadata_bytes += PER_OBJECT_OVERHEAD + map_bytes
                    break
        for cid in cluster.list_objects(self.chunk_pool):
            key = cluster.object_key(self.chunk_pool, cid)
            for osd in cluster.acting_osds(self.chunk_pool, cid):
                if osd.store.exists(key):
                    obj = osd.store.get(key)
                    report.chunk_objects += 1
                    if self.chunk_pool.is_ec:
                        length = int(obj.xattrs["_ec.length"].decode("ascii"))
                        report.chunk_data_bytes += length
                    else:
                        report.chunk_data_bytes += len(obj.data)
                    report.metadata_bytes += PER_OBJECT_OVERHEAD + len(
                        obj.xattrs.get(REFS_XATTR, b"")
                    )
                    break
        report.raw_used_bytes = cluster.pool_used_bytes(
            self.metadata_pool
        ) + cluster.pool_used_bytes(self.chunk_pool)
        return report
