"""The deduplication tier: pools, chunk-map I/O, and chunk-pool ops.

This wires the paper's §4 design onto the storage substrate:

* a **metadata pool** holding metadata objects (user-visible IDs, chunk
  maps in xattrs, cached chunks in the data part) and
* a **chunk pool** holding content-addressed chunk objects (double
  hashing: the chunk's fingerprint is its object ID, so the cluster's
  placement hash *is* the fingerprint index).

Pool-based object management (§4.2): each pool picks its own redundancy
scheme, so e.g. a replicated metadata pool can front an erasure-coded
chunk pool.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Set

from ..chunking import StaticChunker
from ..compression import ZlibCodec
from ..cluster import (
    ObjectKey,
    PER_OBJECT_OVERHEAD,
    Pool,
    RadosCluster,
    Replicated,
    Transaction,
)
from ..faults.retry import RetryPolicy, RetryStats, call_with_retries
from ..sim import Resource
from .config import DedupConfig
from .cache import CacheManager
from .objects import CHUNK_MAP_XATTR, REFS_XATTR, ChunkMap, ChunkRef, RefSet
from .rate_control import OpWindow, RateController

__all__ = ["DedupTier", "SpaceReport", "NodeClient", "CHUNK_ENCODING_XATTR"]

#: xattr on chunk objects recording the payload encoding ("raw"/"zlib").
CHUNK_ENCODING_XATTR = "dedup.encoding"


class NodeClient:
    """Adapter letting a storage node act as the I/O initiator.

    The background dedup engine runs on storage nodes, not on clients;
    its chunk-pool traffic originates from the metadata-pool primary's
    NIC.
    """

    def __init__(self, node):
        self.node = node
        self.nic = node.nic


@dataclass
class SpaceReport:
    """Space accounting for the dedup tier (drives Table 2 / Fig 12-e).

    ``ideal_dedup_ratio`` considers data only; ``actual_dedup_ratio``
    charges the dedup metadata too (chunk maps at 150 B/entry, reference
    records at 64 B, and the fixed per-object overhead) — the paper's
    distinction in Table 2.
    """

    logical_bytes: int = 0
    chunk_data_bytes: int = 0
    cached_data_bytes: int = 0
    metadata_bytes: int = 0
    raw_used_bytes: int = 0
    chunk_objects: int = 0
    metadata_objects: int = 0

    @property
    def stored_bytes(self) -> int:
        """Data + metadata, each object counted once (no redundancy)."""
        return self.chunk_data_bytes + self.cached_data_bytes + self.metadata_bytes

    @property
    def ideal_dedup_ratio(self) -> float:
        """1 - unique data / logical data (valid after a full drain)."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.chunk_data_bytes / self.logical_bytes

    @property
    def actual_dedup_ratio(self) -> float:
        """1 - (stored data + metadata) / logical data."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.stored_bytes / self.logical_bytes


class DedupTier:
    """State and helper operations shared by the I/O paths and engine."""

    def __init__(
        self,
        cluster: RadosCluster,
        config: Optional[DedupConfig] = None,
        metadata_redundancy=None,
        chunk_redundancy=None,
        metadata_pool_name: str = "dedup-metadata",
        chunk_pool_name: str = "dedup-chunks",
    ):
        self.cluster = cluster
        self.config = config if config is not None else DedupConfig()
        self.metadata_pool: Pool = cluster.create_pool(
            metadata_pool_name,
            metadata_redundancy if metadata_redundancy is not None else Replicated(2),
        )
        self.chunk_pool: Pool = cluster.create_pool(
            chunk_pool_name,
            chunk_redundancy if chunk_redundancy is not None else Replicated(2),
        )
        self.chunker = StaticChunker(self.config.chunk_size)
        self.codec = ZlibCodec(self.config.compress_level)
        self.cache = CacheManager(cluster.sim, self.config)
        self.fg_window = OpWindow(cluster.sim)
        self.rate = RateController(cluster.sim, self.fg_window, self.config)
        #: Retry/backoff plumbing for transient substrate faults; every
        #: I/O-path and engine op funnels through :meth:`retrying`.
        self.retry_policy = RetryPolicy.from_config(self.config)
        self.retry_stats = RetryStats()
        # Dirty object ID list (paper Figure 8). In-memory, rebuildable
        # from the dirty bits persisted in every chunk map.
        self._dirty_queue: Deque[str] = deque()
        self._dirty_set: Set[str] = set()
        # Monotonic per-object mutation counters: the engine uses them to
        # detect foreground writes racing with a dedup pass.
        self.mutation_seq: Dict[str, int] = {}
        # Per-chunk-object locks serialising reference read-modify-write.
        self._chunk_locks: Dict[str, Resource] = {}
        # Per-metadata-object locks serialising dedup passes (two engine
        # workers, or flush-on-write racing the engine, must not process
        # the same object concurrently).
        self._object_locks: Dict[str, Resource] = {}
        #: Read-path counters: segments served from the metadata-pool
        #: cache vs redirected to the chunk pool.
        self.cache_hits = 0
        self.cache_misses = 0
        #: Hook invoked (with the oid) when a read finds a hot object
        #: whose chunks are not cached; the facade wires it to the
        #: engine's promotion path (§5: hot objects are cached into the
        #: metadata pool).
        self.on_hot_read = None

    @property
    def sim(self):
        """The cluster's simulator."""
        return self.cluster.sim

    def retrying(self, factory, op: str = "op"):
        """Process: run ``factory()`` under the tier's retry policy.

        ``factory`` must build a *fresh* op generator per call (each
        attempt needs its own); see
        :func:`repro.faults.retry.call_with_retries`.
        """
        result = yield from call_with_retries(
            self.sim, self.retry_policy, factory, self.retry_stats, op=op
        )
        return result

    # -- dirty object ID list -------------------------------------------------

    def mark_dirty(self, oid: str) -> None:
        """Log ``oid`` for background deduplication."""
        if oid not in self._dirty_set:
            self._dirty_set.add(oid)
            self._dirty_queue.append(oid)

    def next_dirty(self) -> Optional[str]:
        """Pop the next dirty object ID, or ``None`` when list is empty."""
        if not self._dirty_queue:
            return None
        oid = self._dirty_queue.popleft()
        self._dirty_set.discard(oid)
        return oid

    def requeue_dirty(self, oid: str, delay: float = 0.0) -> None:
        """Put ``oid`` back on the dirty list, optionally after a delay."""
        if delay > 0:
            self.sim.call_later(delay, self.mark_dirty, oid)
        else:
            self.mark_dirty(oid)

    @property
    def dirty_count(self) -> int:
        """Objects currently on the dirty list."""
        return len(self._dirty_queue)

    def rebuild_dirty_list(self) -> int:
        """Recover the dirty list by scanning persisted chunk maps.

        The list itself is volatile; the authoritative dirty state is
        the per-entry dirty bit inside every (replicated) chunk map, so
        a restart can always reconstruct it.  Returns the number of
        dirty objects found.
        """
        self._dirty_queue.clear()
        self._dirty_set.clear()
        for oid in self.cluster.list_objects(self.metadata_pool):
            cmap = self.peek_chunk_map(oid)
            if cmap is not None and not cmap.all_clean():
                self.mark_dirty(oid)
        return self.dirty_count

    def bump_seq(self, oid: str) -> int:
        """Advance and return the mutation counter for ``oid``."""
        seq = self.mutation_seq.get(oid, 0) + 1
        self.mutation_seq[oid] = seq
        return seq

    def seq(self, oid: str) -> int:
        """Current mutation counter for ``oid``."""
        return self.mutation_seq.get(oid, 0)

    # -- chunk map I/O -------------------------------------------------------

    def metadata_key(self, oid: str) -> ObjectKey:
        """Fully qualified key of a metadata object."""
        return self.cluster.object_key(self.metadata_pool, oid)

    def peek_chunk_map(self, oid: str) -> Optional[ChunkMap]:
        """Read the chunk map without charging simulated time (tests,
        accounting, planning)."""
        key = self.metadata_key(oid)
        for osd_id in self.metadata_pool.acting_set_for(oid):
            osd = self.cluster.osds[osd_id]
            if osd.up and osd.store.exists(key):
                blob = osd.store.get(key).xattrs.get(CHUNK_MAP_XATTR)
                return ChunkMap.deserialize(blob) if blob else None
        return None

    def load_chunk_map(self, oid: str):
        """Process: fetch the chunk map at the metadata primary.

        The lookup happens server-side as part of whatever operation
        carries it (the map lives in the object's own metadata), so the
        cost is a small primary disk read — no extra network round trip.
        Returns ``None`` for an unknown object.
        """
        primary = self.cluster._primary(self.metadata_pool, oid)
        key = self.metadata_key(oid)
        if not primary.store.exists(key):
            return None
        blob = primary.store.get(key).xattrs.get(CHUNK_MAP_XATTR)
        if blob is None:
            return None
        yield from primary.disk.read(len(blob))
        return ChunkMap.deserialize(blob)

    def read_local_chunk(self, oid: str, offset: int, length: int):
        """Process: read cached chunk bytes at the metadata primary.

        Used by the dedup engine, which runs next to the data: no client
        network transfer, just a local disk read (an EC decode when the
        metadata pool is erasure-coded).
        """
        if self.metadata_pool.is_ec:
            data = yield from self.cluster._ec_read_internal(self.metadata_pool, oid)
            return data[offset : offset + length]
        primary = self.cluster._primary(self.metadata_pool, oid)
        key = self.metadata_key(oid)
        data = yield from primary.execute_read(key, offset, length)
        return data

    # -- chunk pool operations --------------------------------------------------

    def chunk_lock(self, chunk_id: str) -> Resource:
        """Per-chunk-object mutex for reference read-modify-write."""
        lock = self._chunk_locks.get(chunk_id)
        if lock is None:
            lock = Resource(self.sim, capacity=1)
            self._chunk_locks[chunk_id] = lock
        return lock

    def object_lock(self, oid: str) -> Resource:
        """Per-metadata-object mutex for dedup passes."""
        lock = self._object_locks.get(oid)
        if lock is None:
            lock = Resource(self.sim, capacity=1)
            self._object_locks[oid] = lock
        return lock

    def _load_refs(self, chunk_id: str) -> RefSet:
        key = self.cluster.object_key(self.chunk_pool, chunk_id)
        for osd_id in self.chunk_pool.acting_set_for(chunk_id):
            osd = self.cluster.osds[osd_id]
            if osd.up and osd.store.exists(key):
                blob = osd.store.get(key).xattrs.get(REFS_XATTR, b"")
                return RefSet.deserialize(blob)
        return RefSet()

    def _store_refs(self, chunk_id: str, refs: RefSet, via):
        blob = refs.serialize()
        if self.chunk_pool.is_ec:
            yield from self.cluster.setxattr(
                self.chunk_pool, chunk_id, REFS_XATTR, blob, via
            )
        else:
            key = self.cluster.object_key(self.chunk_pool, chunk_id)
            txn = Transaction().setxattr(key, REFS_XATTR, blob)
            yield from self.cluster.submit(self.chunk_pool, chunk_id, txn, via)

    def chunk_ref(self, chunk_id: str, ref: ChunkRef, data: bytes, via):
        """Process: store-or-reference a chunk object (§4.4.1 steps 4-5).

        If no object exists at the content-derived location, store the
        chunk with this first reference; otherwise only append reference
        information — the write of the duplicate data never happens,
        which *is* the deduplication.

        With ``compress_chunks`` on, the payload is compressed before it
        is stored (the chunk's *ID* is always the fingerprint of the
        uncompressed content, so dedup detection is unaffected).

        Returns True when the chunk data was newly stored.
        """
        lock = self.chunk_lock(chunk_id)
        yield lock.acquire()
        try:
            exists = self.cluster.exists(self.chunk_pool, chunk_id)
            refs = self._load_refs(chunk_id) if exists else RefSet()
            refs.add(ref)
            if not exists:
                blob, encoding = data, b"raw"
                if self.config.compress_chunks:
                    node = getattr(via, "node", None)
                    if node is not None:
                        yield from node.cpu.execute(
                            node.cpu.spec.compress_time(len(data))
                        )
                    coded = self.codec.compress(data)
                    if len(coded) < len(data):
                        blob, encoding = coded, b"zlib"
                yield from self.cluster.write_full(self.chunk_pool, chunk_id, blob, via)
                if self.config.compress_chunks:
                    if self.chunk_pool.is_ec:
                        yield from self.cluster.setxattr(
                            self.chunk_pool, chunk_id, CHUNK_ENCODING_XATTR,
                            encoding, via,
                        )
                    else:
                        yield from self._set_encoding(chunk_id, encoding, via)
                yield from self._store_refs(chunk_id, refs, via)
                return True
            yield from self._store_refs(chunk_id, refs, via)
            return False
        finally:
            lock.release()

    def _set_encoding(self, chunk_id: str, encoding: bytes, via):
        key = self.cluster.object_key(self.chunk_pool, chunk_id)
        txn = Transaction().setxattr(key, CHUNK_ENCODING_XATTR, encoding)
        yield from self.cluster.submit(self.chunk_pool, chunk_id, txn, via)

    def chunk_deref(self, chunk_id: str, ref: ChunkRef, via):
        """Process: drop one reference; remove the chunk at zero refs.

        Dereferencing a missing chunk or reference is a no-op (a crashed
        dedup pass may retry a dereference that already happened — the
        paper's §4.6 failure analysis relies on this idempotence).
        """
        lock = self.chunk_lock(chunk_id)
        yield lock.acquire()
        try:
            if not self.cluster.exists(self.chunk_pool, chunk_id):
                return
            refs = self._load_refs(chunk_id)
            if ref not in refs:
                return
            refs.discard(ref)
            if len(refs) == 0:
                yield from self.cluster.remove(self.chunk_pool, chunk_id, via)
            else:
                yield from self._store_refs(chunk_id, refs, via)
        finally:
            lock.release()

    def read_chunk(self, chunk_id: str, offset: int, length: Optional[int], client):
        """Process: read chunk bytes from the chunk pool (redirection).

        Transparently decompresses tier-compressed chunks (the whole
        chunk must be fetched and decoded before slicing — the CPU and
        extra-bytes cost of compression's read path).
        """
        if not self.config.compress_chunks:
            data = yield from self.cluster.read(
                self.chunk_pool, chunk_id, offset, length, client
            )
            return data
        blob = yield from self.cluster.read(self.chunk_pool, chunk_id, 0, None, client)
        encoding = self._chunk_encoding(chunk_id)
        if encoding == b"zlib":
            primary = self.cluster._primary(self.chunk_pool, chunk_id)
            yield from primary.node.cpu.execute(
                primary.node.cpu.spec.compress_time(len(blob))
            )
            blob = self.codec.decompress(blob)
        if length is None:
            return blob[offset:]
        return blob[offset : offset + length]

    def _chunk_encoding(self, chunk_id: str) -> bytes:
        key = self.cluster.object_key(self.chunk_pool, chunk_id)
        for osd_id in self.chunk_pool.acting_set_for(chunk_id):
            osd = self.cluster.osds[osd_id]
            if osd.up and osd.store.exists(key):
                return osd.store.get(key).xattrs.get(CHUNK_ENCODING_XATTR, b"raw")
        return b"raw"

    def chunk_refcount(self, chunk_id: str) -> int:
        """Reference count of a chunk object (map-time, for tests)."""
        return len(self._load_refs(chunk_id))

    # -- accounting ----------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        """Measure current space use (see :class:`SpaceReport`)."""
        report = SpaceReport()
        cluster = self.cluster
        for oid in cluster.list_objects(self.metadata_pool):
            key = self.metadata_key(oid)
            for osd_id in self.metadata_pool.acting_set_for(oid):
                osd = cluster.osds[osd_id]
                if osd.store.exists(key):
                    obj = osd.store.get(key)
                    cmap_blob = obj.xattrs.get(CHUNK_MAP_XATTR, b"")
                    cmap = ChunkMap.deserialize(cmap_blob) if cmap_blob else None
                    report.metadata_objects += 1
                    report.logical_bytes += (
                        cmap.logical_size() if cmap else len(obj.data)
                    )
                    if self.metadata_pool.is_ec:
                        # Each OSD holds one shard; payload-once bytes
                        # are k shards' worth (parity excluded).
                        report.cached_data_bytes += (
                            obj.allocated_bytes() * self.metadata_pool.codec.k
                        )
                    else:
                        report.cached_data_bytes += obj.allocated_bytes()
                    report.metadata_bytes += PER_OBJECT_OVERHEAD + len(cmap_blob)
                    break
        for cid in cluster.list_objects(self.chunk_pool):
            key = cluster.object_key(self.chunk_pool, cid)
            for osd_id in self.chunk_pool.acting_set_for(cid):
                osd = cluster.osds[osd_id]
                if osd.store.exists(key):
                    obj = osd.store.get(key)
                    report.chunk_objects += 1
                    if self.chunk_pool.is_ec:
                        length = int(obj.xattrs["_ec.length"].decode("ascii"))
                        report.chunk_data_bytes += length
                    else:
                        report.chunk_data_bytes += len(obj.data)
                    report.metadata_bytes += PER_OBJECT_OVERHEAD + len(
                        obj.xattrs.get(REFS_XATTR, b"")
                    )
                    break
        report.raw_used_bytes = cluster.pool_used_bytes(
            self.metadata_pool
        ) + cluster.pool_used_bytes(self.chunk_pool)
        return report
