"""Deterministic fault injection and the retry/backoff layer.

The paper's central robustness claim is that self-contained dedup
metadata rides the underlying storage system's fault tolerance for
free.  This package exists to *test* that claim on demand:

* :class:`FaultPlan` — a seeded, replayable schedule of OSD crashes and
  restarts, slow-disk windows, transient EIO windows, and host-pair
  network partitions;
* :class:`FaultInjector` — executes a plan against a
  :class:`~repro.cluster.RadosCluster` through hooks in the OSD execute
  paths and the network transfer path;
* :class:`RetryPolicy` / :func:`call_with_retries` — the consumer-side
  retry-with-exponential-backoff and per-op timeout plumbing the I/O
  paths and the dedup engine use to survive the injected faults.

See ``docs/faults.md`` for the fault model and knobs.
"""

from .elastic import ElasticityResult, run_elastic_workload
from .errors import (
    FaultError,
    NetworkPartitionError,
    OpTimeoutError,
    TransientOpError,
    is_retryable,
)
from .injector import FaultInjector, FaultStats
from .plan import FAULT_KINDS, FaultEvent, FaultPlan
from .retry import RetryPolicy, RetryStats, call_with_retries
from .scenario import ScenarioResult, run_faulted_workload

__all__ = [
    "FaultError",
    "TransientOpError",
    "OpTimeoutError",
    "NetworkPartitionError",
    "is_retryable",
    "FaultEvent",
    "FaultPlan",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultStats",
    "RetryPolicy",
    "RetryStats",
    "call_with_retries",
    "ScenarioResult",
    "run_faulted_workload",
    "ElasticityResult",
    "run_elastic_workload",
]
