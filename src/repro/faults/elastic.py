"""End-to-end online-elasticity scenario.

The acceptance scenario behind the ``repro rebalance`` CLI subcommand
and the CI ``elasticity-smoke`` job: run a client workload against a
deduplicating store and, *while it is running*,

* expand the cluster from 4 to 8 OSDs (two new hosts),
* start a rate-limited background rebalance of the remapped PGs,
* decommission one of the original OSDs,
* (optionally) let a seeded :class:`~repro.faults.FaultPlan` crash OSDs
  and partition hosts throughout —

then heal, finish the rebalance, recover, drain, and check that

* every written object reads back byte-identical (zero data loss),
* the dedup scrub finds zero refcount leaks and zero missing chunks,
* both pools scrub replica/shard-consistent,
* placement is CRUSH-clean (every copy exactly on its new acting set),
* the decommissioned OSD drained and was removed, and
* the op trace is sound, with the ``rebalance.*`` stages present.

Imports of ``repro.core`` stay inside functions: ``repro.core`` itself
imports :mod:`repro.faults` (for the retry layer), so a module-level
import here would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from .errors import is_retryable
from .plan import FaultPlan

__all__ = ["ElasticityResult", "run_elastic_workload"]

KiB = 1024

#: Client-level retry ceiling (see scenario.py): plans heal and remaps
#: drain, so an op eventually lands; the cap guards hand-built plans.
_MAX_CLIENT_ATTEMPTS = 200

#: Stage prefixes the elasticity trace must contain — the standard op
#: pipeline plus the rebalance engine's own stages.
TRACE_STAGES = ("op.", "engine.", "tier.", "rados.", "rebalance.")


@dataclass
class ElasticityResult:
    """Everything a caller needs to judge one elastic run."""

    storage: Any
    injector: Any
    plan: Optional[FaultPlan]
    #: Remap diffs from the two host expansions.
    expand_diffs: List[Any] = field(default_factory=list)
    #: Remap diff from decommissioning one original OSD.
    decommission_diff: Any = None
    #: Cumulative migration counters (one engine serves the online and
    #: the final drain phases).
    rebalance_stats: Any = None
    recovery_stats: Any = None
    #: Dedup scrub (refcount pairing / leaks / missing chunks).
    scrub: Any = None
    #: Replica/shard scrubs of the metadata and chunk pools.
    replica_reports: List[Any] = field(default_factory=list)
    #: CRUSH-cleanliness violations (copies off the acting set, diverged
    #: replicas, mis-slotted shards); must be empty.
    placement_violations: List[str] = field(default_factory=list)
    #: check_trace findings on the op trace; must be empty.
    trace_problems: List[str] = field(default_factory=list)
    #: Objects whose post-recovery read-back did not match what the
    #: client wrote (must be empty).
    corrupted_objects: List[str] = field(default_factory=list)
    objects_written: int = 0
    decommissioned_osd: int = -1
    #: Whether the decommissioned OSD drained fully and was removed.
    finalized: bool = False

    @property
    def zero_data_loss(self) -> bool:
        """No object was lost or corrupted."""
        return not self.corrupted_objects

    @property
    def ok(self) -> bool:
        """The run's overall verdict."""
        return (
            self.zero_data_loss
            and self.scrub is not None
            and bool(self.scrub.clean)
            and all(bool(r.clean) for r in self.replica_reports)
            and not self.placement_violations
            and not self.trace_problems
            and self.finalized
        )


def run_elastic_workload(
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    num_objects: int = 32,
    object_size: int = 64 * KiB,
    dedupe_ratio: float = 0.6,
    horizon: float = 6.0,
    rate_limit_bps: Optional[float] = 64.0 * KiB * KiB,
    with_faults: bool = True,
    decommission_osd: int = 1,
    sanitizer: Any = None,
) -> ElasticityResult:
    """Run the online-elasticity acceptance scenario; returns the result.

    The cluster starts as 2 hosts x 2 OSDs.  Writes are staggered across
    the first 80% of ``horizon``; at 25% of the horizon two more hosts
    (2 OSDs each) join and a rate-limited background rebalance starts; at
    50% ``decommission_osd`` leaves placement.  With ``with_faults`` a
    plan generated from ``seed`` crashes/degrades the *original* OSDs
    throughout, so migration must survive faults on its sources.
    """
    from ..cluster import Rebalancer, placement_report, scrub_pool_sync
    from ..cluster import RadosCluster, recover_sync
    from ..core import DedupConfig, DedupedStorage, scrub_sync
    from ..obs import check_trace
    from ..workloads import ContentGenerator

    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=32)
    storage = DedupedStorage(
        cluster,
        DedupConfig(chunk_size=32 * KiB, trace_ops=True),
        start_engine=True,
    )
    if sanitizer is not None:
        sanitizer.attach(storage.sim)
    injector: Any = None
    if with_faults:
        if plan is None:
            plan = FaultPlan.generate(
                seed,
                horizon,
                osd_ids=sorted(cluster.osds),
                hosts=sorted(cluster.nodes),
            )
        # auto_recover would heal straight to the new map the moment a
        # crashed OSD restarts — the migration the rebalance engine is
        # supposed to do.  Keep recovery manual so the engine's own
        # resumability is what the scenario exercises.
        injector = storage.inject_faults(plan, auto_recover=False)
    sim = storage.sim

    result = ElasticityResult(
        storage=storage,
        injector=injector,
        plan=plan,
        decommissioned_osd=decommission_osd,
    )
    engine = Rebalancer(cluster, rate_limit_bps=rate_limit_bps)
    result.rebalance_stats = engine.stats

    gen = ContentGenerator(seed=seed, dedupe_ratio=dedupe_ratio)
    payloads: Dict[str, bytes] = {
        f"obj-{i}": gen.block(object_size) for i in range(num_objects)
    }

    def client_write(
        oid: str, data: bytes, at: float
    ) -> Generator[Any, Any, None]:
        yield sim.timeout(at)
        for _attempt in range(_MAX_CLIENT_ATTEMPTS):
            try:
                yield from storage.write(oid, data)
                return
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                yield sim.timeout(0.25)
        raise RuntimeError(f"write of {oid!r} never succeeded under {plan!r}")

    def drive_rebalance(max_passes: int) -> Generator[Any, Any, None]:
        # One root span per drive so its children tile the root tightly
        # (a scenario-long root would count the idle gaps as uncovered).
        root = storage.tracer.root_span("op.rebalance")
        try:
            yield from engine.run_to_completion(span=root, max_passes=max_passes)
            root.tag(
                pgs=engine.stats.pgs_completed,
                moved=engine.stats.objects_moved,
                nbytes=engine.stats.bytes_moved,
            )
        except Exception as exc:
            if not is_retryable(exc):
                raise
        finally:
            root.finish()

    background: List[Any] = []

    def topology_driver() -> Generator[Any, Any, None]:
        yield sim.timeout(horizon * 0.25)
        result.expand_diffs.append(cluster.expand("host2", 2))
        result.expand_diffs.append(cluster.expand("host3", 2))
        background.append(sim.process(drive_rebalance(max_passes=8)))
        yield sim.timeout(horizon * 0.25)
        result.decommission_diff = cluster.decommission_osd(decommission_osd)

    sim.process(topology_driver())
    procs = [
        sim.process(
            client_write(oid, data, (i / max(1, num_objects)) * horizon * 0.8)
        )
        for i, (oid, data) in enumerate(sorted(payloads.items()))
    ]

    def workload() -> Generator[Any, Any, Any]:
        results = yield sim.all_of(procs)
        return results

    cluster.run(workload())
    # Let every scheduled fault window open and expire.
    if sim.now < horizon:
        sim.run(until=horizon)

    def wait_background() -> Generator[Any, Any, None]:
        if background:
            yield sim.all_of(background)

    cluster.run(wait_background())
    storage.engine.stop()
    if injector is not None:
        injector.heal_all()
    # Final drain: unthrottled rebalance and recovery, alternating —
    # recovery reconciles restarted OSDs (migration sources the engine
    # had to skip while they were down) and retires remaps whose old
    # side drained; the engine then finishes anything still parked.
    for _round in range(3):
        cluster.run(drive_rebalance(max_passes=8))
        result.recovery_stats = recover_sync(cluster)
        if not cluster.active_remaps():
            break
    if injector is not None:
        injector.detach()
    storage.engine.drain_sync()  # flush everything + offline GC
    try:
        cluster.finalize_decommission(decommission_osd)
        result.finalized = True
    except (KeyError, ValueError):
        result.finalized = False

    result.scrub = scrub_sync(storage.tier)
    result.replica_reports = [
        scrub_pool_sync(cluster, storage.tier.metadata_pool),
        scrub_pool_sync(cluster, storage.tier.chunk_pool),
    ]
    result.placement_violations = placement_report(cluster)
    result.corrupted_objects = [
        oid
        for oid, data in sorted(payloads.items())
        if storage.read_sync(oid, 0, len(data)) != data
    ]
    # Quiesce: verification reads can spawn fire-and-forget cache
    # promotions; run the loop dry so no task is left suspended holding
    # an object lock (the lock sanitizer treats that as a leak).
    sim.run()
    result.objects_written = num_objects
    records = storage.tracer.to_records()
    # Structural soundness (finished, no orphans, all stages present) of
    # the whole trace; the child-coverage bar applies to the rebalance
    # trees only — a faulted client op legitimately spends most of its
    # root waiting out a partition or a retry backoff, outside any
    # child span.
    result.trace_problems = check_trace(
        records, required_stages=TRACE_STAGES, coverage_threshold=0.0
    )
    result.trace_problems += check_trace(
        [
            r
            for r in records
            if str(r["stage"]) == "op.rebalance"
            or str(r["stage"]).startswith("rebalance.")
        ],
        required_stages=("rebalance.",),
    )
    return result
