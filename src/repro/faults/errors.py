"""Typed fault errors and the retryable/fatal classification.

Every error the fault layer can inject — and every substrate error the
retry layer may encounter — carries a boolean ``retryable`` attribute:

* **retryable** — transient by construction (injected EIO, op timeout,
  network partition) or transient by system design (an OSD that is down
  may come back; a degraded PG heals after recovery).  The retry layer
  backs off and tries again.
* **fatal** — retrying cannot help (an OSD over its full ratio stays
  full until something is deleted).  The error propagates immediately.

The classification is attribute-based rather than type-based so the
``cluster`` package never has to import this module (and vice versa):
:class:`~repro.cluster.osd.OsdDownError` et al. simply declare their own
``retryable`` attribute.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "TransientOpError",
    "OpTimeoutError",
    "NetworkPartitionError",
    "is_retryable",
]


class FaultError(RuntimeError):
    """Base class for errors raised by the fault injector."""

    #: Whether a retry-with-backoff can reasonably succeed.
    retryable = True


class TransientOpError(FaultError):
    """An injected transient device error (the simulated EIO).

    Real SSDs return occasional media errors that succeed on retry;
    the injector raises this from an OSD's execute path before any
    state is mutated, so a retry observes an untouched store.
    """

    def __init__(self, osd_id: int, op: str) -> None:
        super().__init__(f"injected EIO on osd.{osd_id} during {op}")
        self.osd_id = osd_id
        self.op = op


class OpTimeoutError(FaultError):
    """An operation exceeded its per-op deadline and was abandoned.

    Raised by the retry layer (not the injector): the in-flight op is
    interrupted and the attempt is charged as failed.
    """

    def __init__(self, op: str, timeout: float) -> None:
        super().__init__(f"{op} timed out after {timeout:.4f}s")
        self.op = op
        self.timeout = timeout


class NetworkPartitionError(FaultError):
    """A transfer was attempted across a partitioned host pair."""

    def __init__(self, src: str, dst: str) -> None:
        super().__init__(f"network partition between {src!r} and {dst!r}")
        self.src = src
        self.dst = dst


def is_retryable(exc: BaseException) -> bool:
    """Whether the retry layer should re-attempt after ``exc``.

    Looks only at the ``retryable`` attribute, defaulting to False:
    unknown errors (bugs, assertion failures) must surface, not loop.
    """
    return bool(getattr(exc, "retryable", False))
