"""The fault injector: executes a :class:`FaultPlan` against a cluster.

Attaching an injector wires it into the substrate's execute paths:

* ``OSD.execute_read/execute_transaction/execute_push`` call
  :meth:`FaultInjector.before_op`, which may raise an injected
  :class:`~repro.faults.errors.TransientOpError` (EIO) or charge extra
  device time (slow-disk degradation);
* ``RadosCluster._transfer`` calls :meth:`FaultInjector.check_link`,
  which raises :class:`~repro.faults.errors.NetworkPartitionError`
  while the two hosts are partitioned;
* crash/restart events drive ``fail_osd(mark_out=False)`` /
  ``restart_osd`` — the disk keeps its contents across the outage, so a
  restarted OSD rejoins *stale* and recovery must reconcile it (the
  scenario where dedup refcounts are easiest to lose).

All per-op randomness (EIO coin flips) comes from a stream derived from
the plan's seed, so a given (plan, workload) pair replays identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Generator, List, Set

from ..cluster import recover
from ..sim.rng import RngRegistry
from .errors import NetworkPartitionError, TransientOpError
from .plan import FaultEvent, FaultPlan

__all__ = ["FaultInjector", "FaultStats"]


@dataclass
class FaultStats:
    """Counters describing what the injector actually did."""

    crashes: int = 0
    restarts: int = 0
    eio_injected: int = 0
    slow_ops_delayed: int = 0
    partition_drops: int = 0
    partitions_started: int = 0
    windows_expired: int = 0

    def summary_lines(self) -> List[str]:
        """Human-readable counter dump."""
        return [
            f"osd crashes        {self.crashes} ({self.restarts} restarts)",
            f"EIO injected       {self.eio_injected} ops",
            f"slow-disk delays   {self.slow_ops_delayed} ops",
            f"partition drops    {self.partition_drops} transfers"
            f" ({self.partitions_started} partitions)",
        ]


class FaultInjector:
    """Schedules a :class:`FaultPlan` onto a cluster's simulated clock."""

    def __init__(self, cluster: Any, plan: FaultPlan, auto_recover: bool = True) -> None:
        self.cluster = cluster
        self.plan = plan
        #: Kick off a recovery pass whenever a crashed OSD restarts
        #: (what Ceph's peering would do); hand-driven tests disable it.
        self.auto_recover = auto_recover
        self.stats = FaultStats()
        self._rng = RngRegistry(plan.seed).stream("faults.injector")
        self._slow: Dict[int, float] = {}
        self._eio: Dict[int, float] = {}
        self._partitions: Set[FrozenSet[str]] = set()
        self._crashed: Set[int] = set()
        self._attached = False

    # -- lifecycle ------------------------------------------------------------

    def attach(self) -> "FaultInjector":
        """Wire into the cluster and schedule every plan event."""
        if self._attached:
            return self
        self._attached = True
        self.cluster.faults = self
        for osd in self.cluster.osds.values():
            osd.faults = self
        for ev in self.plan:
            self.cluster.sim.call_later(ev.time, self._apply, ev)
        return self

    def detach(self) -> None:
        """Stop injecting (already-scheduled crashes still fire)."""
        self.cluster.faults = None
        for osd in self.cluster.osds.values():
            osd.faults = None
        self._slow.clear()
        self._eio.clear()
        self._partitions.clear()

    def heal_all(self) -> None:
        """End every active fault window and restart crashed OSDs.

        Does *not* run recovery — callers decide when to heal data
        (tests heal, recover, then scrub).
        """
        self._slow.clear()
        self._eio.clear()
        self._partitions.clear()
        for osd_id in sorted(self._crashed):
            self._restart(osd_id, recover_after=False)

    @property
    def down_osds(self) -> List[int]:
        """OSD ids currently crashed by this injector."""
        return sorted(self._crashed)

    # -- plan execution -------------------------------------------------------

    def _apply(self, ev: FaultEvent) -> None:
        if ev.kind == "osd_crash":
            self._crash(int(ev.target))
        elif ev.kind == "osd_restart":
            self._restart(int(ev.target))
        elif ev.kind == "slow_disk":
            osd_id = int(ev.target)
            self._slow[osd_id] = float(ev.params.get("factor", 4.0))
            self.cluster.sim.call_later(ev.duration, self._end_slow, osd_id)
        elif ev.kind == "transient_errors":
            osd_id = int(ev.target)
            self._eio[osd_id] = float(ev.params.get("probability", 0.1))
            self.cluster.sim.call_later(ev.duration, self._end_eio, osd_id)
        elif ev.kind == "partition":
            pair = frozenset(ev.target.split("|", 1))
            self._partitions.add(pair)
            self.stats.partitions_started += 1
            self.cluster.sim.call_later(ev.duration, self._end_partition, pair)

    def _crash(self, osd_id: int) -> None:
        osd = self.cluster.osds[osd_id]
        if not osd.up:
            return
        # Down but *in*: placement is unchanged and the dead disk keeps
        # its contents — the restart path rejoins with stale state.
        self.cluster.fail_osd(osd_id, mark_out=False)
        self._crashed.add(osd_id)
        self.stats.crashes += 1

    def _restart(self, osd_id: int, recover_after: bool = True) -> None:
        if osd_id not in self._crashed:
            return
        self.cluster.restart_osd(osd_id)
        self._crashed.discard(osd_id)
        self.stats.restarts += 1
        if recover_after and self.auto_recover:
            self.cluster.sim.process(recover(self.cluster))

    def _end_slow(self, osd_id: int) -> None:
        self._slow.pop(osd_id, None)
        self.stats.windows_expired += 1

    def _end_eio(self, osd_id: int) -> None:
        self._eio.pop(osd_id, None)
        self.stats.windows_expired += 1

    def _end_partition(self, pair: FrozenSet[str]) -> None:
        self._partitions.discard(pair)
        self.stats.windows_expired += 1

    # -- substrate hooks ------------------------------------------------------

    def before_op(self, osd: Any, op: str, nbytes: int) -> Generator[Any, Any, None]:
        """Process: runs at the head of every OSD execute path.

        May raise :class:`TransientOpError` (before any store mutation,
        so a retry observes an untouched object) or charge extra device
        time while the OSD's disk is degraded.
        """
        probability = self._eio.get(osd.osd_id)
        if probability is not None and self._rng.random() < probability:
            self.stats.eio_injected += 1
            raise TransientOpError(osd.osd_id, op)
        factor = self._slow.get(osd.osd_id)
        if factor is not None and factor > 1.0:
            spec = osd.disk.spec
            base = (
                spec.read_time(max(nbytes, 1))
                if op == "read"
                else spec.write_time(max(nbytes, 1))
            )
            self.stats.slow_ops_delayed += 1
            yield osd.sim.timeout((factor - 1.0) * base)

    def check_link(self, src_nic: Any, dst_nic: Any) -> None:
        """Raise :class:`NetworkPartitionError` across a partitioned pair."""
        if not self._partitions:
            return
        src = getattr(src_nic, "owner", None)
        dst = getattr(dst_nic, "owner", None)
        if src is None or dst is None or src == dst:
            return
        if frozenset((src, dst)) in self._partitions:
            self.stats.partition_drops += 1
            raise NetworkPartitionError(src, dst)
