"""Deterministic fault schedules.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent`s on the
simulated clock: OSD crashes and restarts, slow-disk windows, transient
error (EIO) windows, and network partitions between hosts.  Plans are
either hand-built (targeted tests) or generated from a seed via
:meth:`FaultPlan.generate`, which draws every choice from named
:class:`~repro.sim.rng.RngRegistry` streams — the same seed always
yields the same schedule, so any failure a plan provokes is replayable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..sim.rng import RngRegistry

__all__ = ["FaultEvent", "FaultPlan", "FAULT_KINDS"]

#: The fault vocabulary the injector understands.
FAULT_KINDS = (
    "osd_crash",      # target: osd id         — daemon stops serving (disk intact)
    "osd_restart",    # target: osd id         — daemon comes back (disk intact)
    "slow_disk",      # target: osd id         — device latency x factor for duration
    "transient_errors",  # target: osd id      — ops fail with EIO at probability for duration
    "partition",      # target: "hostA|hostB"  — transfers between the pair fail for duration
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``time`` is simulated seconds from injector attach; ``duration`` is
    how long window-style faults (slow disk, EIO window, partition)
    last — crashes persist until a matching ``osd_restart``.
    """

    time: float
    kind: str
    target: str
    duration: float = 0.0
    #: Kind-specific tuning: ``factor`` for slow_disk, ``probability``
    #: for transient_errors.
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"negative fault time {self.time}")
        if self.duration < 0:
            raise ValueError(f"negative fault duration {self.duration}")


class FaultPlan:
    """An ordered, replayable schedule of faults."""

    def __init__(self, events: Sequence[FaultEvent] = (), seed: int = 0) -> None:
        self.events: List[FaultEvent] = sorted(events, key=lambda e: (e.time, e.kind, e.target))
        #: Seed for the injector's own draws (per-op EIO coin flips).
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def describe(self) -> List[str]:
        """Human-readable schedule, one line per event."""
        lines: List[str] = []
        for ev in self.events:
            extra = f" for {ev.duration:.3f}s" if ev.duration else ""
            params = " ".join(f"{k}={v:.3g}" for k, v in sorted(ev.params.items()))
            lines.append(
                f"t={ev.time:8.4f}s  {ev.kind:<16s} {ev.target}{extra}"
                + (f"  ({params})" if params else "")
            )
        return lines

    # -- constructors ---------------------------------------------------------

    @classmethod
    def single_osd_kill(
        cls,
        osd_id: int,
        at: float,
        restart_after: Optional[float] = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Kill one OSD at ``at``; optionally restart it later."""
        events = [FaultEvent(at, "osd_crash", str(osd_id))]
        if restart_after is not None:
            events.append(
                FaultEvent(at + restart_after, "osd_restart", str(osd_id))
            )
        return cls(events, seed=seed)

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: float,
        osd_ids: Sequence[int],
        hosts: Sequence[str] = (),
        crash_rate: float = 0.5,
        slow_rate: float = 0.5,
        eio_rate: float = 0.5,
        partition_rate: float = 0.25,
        max_concurrent_down: int = 1,
    ) -> "FaultPlan":
        """Draw a random-but-deterministic schedule over ``horizon`` seconds.

        ``*_rate`` are expected event counts per horizon (a rate of 0.5
        means the fault appears in about half the seeds).  At most
        ``max_concurrent_down`` OSDs are ever down at once, and every
        crash gets a restart inside the horizon, so a generated plan
        never makes data permanently unreachable on a ``min_size``-1
        cluster — which is exactly what the zero-loss property test
        needs.
        """
        registry = RngRegistry(seed)
        events: List[FaultEvent] = []

        crash_rng = registry.stream("faults.crash")
        for _ in range(_poisson_like(crash_rng, crash_rate, cap=max_concurrent_down)):
            osd = crash_rng.choice(list(osd_ids))
            at = crash_rng.uniform(0.05, 0.6) * horizon
            downtime = crash_rng.uniform(0.1, 0.3) * horizon
            events.append(FaultEvent(at, "osd_crash", str(osd)))
            events.append(FaultEvent(min(at + downtime, horizon * 0.95), "osd_restart", str(osd)))

        slow_rng = registry.stream("faults.slow")
        for _ in range(_poisson_like(slow_rng, slow_rate, cap=2)):
            osd = slow_rng.choice(list(osd_ids))
            at = slow_rng.uniform(0.0, 0.7) * horizon
            events.append(
                FaultEvent(
                    at,
                    "slow_disk",
                    str(osd),
                    duration=slow_rng.uniform(0.1, 0.4) * horizon,
                    params={"factor": slow_rng.uniform(2.0, 10.0)},
                )
            )

        eio_rng = registry.stream("faults.eio")
        for _ in range(_poisson_like(eio_rng, eio_rate, cap=2)):
            osd = eio_rng.choice(list(osd_ids))
            at = eio_rng.uniform(0.0, 0.7) * horizon
            events.append(
                FaultEvent(
                    at,
                    "transient_errors",
                    str(osd),
                    duration=eio_rng.uniform(0.1, 0.4) * horizon,
                    params={"probability": eio_rng.uniform(0.05, 0.3)},
                )
            )

        part_rng = registry.stream("faults.partition")
        if len(hosts) >= 2:
            for _ in range(_poisson_like(part_rng, partition_rate, cap=1)):
                a, b = part_rng.sample(list(hosts), 2)
                at = part_rng.uniform(0.0, 0.6) * horizon
                events.append(
                    FaultEvent(
                        at,
                        "partition",
                        f"{a}|{b}",
                        duration=part_rng.uniform(0.05, 0.25) * horizon,
                    )
                )
        return cls(events, seed=seed)


def _poisson_like(rng: random.Random, rate: float, cap: int) -> int:
    """A small deterministic event count with mean ~``rate``, capped."""
    count = 0
    remaining = rate
    while remaining > 0 and count < cap:
        if rng.random() < min(remaining, 1.0):
            count += 1
        remaining -= 1.0
    return count
