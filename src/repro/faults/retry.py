"""Retry-with-exponential-backoff and per-op timeouts.

:func:`call_with_retries` is the single retry primitive the consumer
side (I/O paths, dedup engine) builds on: it runs an operation process,
optionally races it against a deadline, classifies any failure via the
``retryable`` attribute convention (:mod:`repro.faults.errors`), and
re-attempts after an exponentially growing backoff sleep — all on the
*simulated* clock, so retry storms and backoff behaviour are measurable
like any other load.

Retried operations must be idempotent.  Every substrate op here is:
transactions address absolute offsets (re-applying is a no-op state-wise),
reference-set adds are set inserts, and removes tolerate absence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from ..obs import NULL_SPAN, Span
from .errors import OpTimeoutError, is_retryable

__all__ = ["OpFactory", "RetryPolicy", "RetryStats", "call_with_retries"]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for :func:`call_with_retries`.

    ``max_attempts`` counts the first try: 1 disables retries.
    ``op_timeout`` is a per-attempt deadline in simulated seconds;
    ``None`` disables the deadline race.  Backoff before attempt *n*
    (n >= 2) is ``min(max_delay, base_delay * backoff**(n-2))``.
    """

    max_attempts: int = 4
    base_delay: float = 0.002
    backoff: float = 2.0
    max_delay: float = 0.25
    op_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("retry delays must be >= 0")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.op_timeout is not None and self.op_timeout <= 0:
            raise ValueError(f"op_timeout must be positive, got {self.op_timeout}")

    def delay_before(self, attempt: int) -> float:
        """Backoff sleep before ``attempt`` (2-based; attempt 1 is free)."""
        if attempt <= 1:
            return 0.0
        return min(self.max_delay, self.base_delay * self.backoff ** (attempt - 2))

    @classmethod
    def from_config(cls, config: Any) -> "RetryPolicy":
        """Build from a :class:`~repro.core.DedupConfig`-shaped object."""
        return cls(
            max_attempts=config.retry_max_attempts,
            base_delay=config.retry_base_delay,
            backoff=config.retry_backoff,
            max_delay=config.retry_max_delay,
            op_timeout=config.op_timeout,
        )


@dataclass
class RetryStats:
    """Counters kept by the retry layer (one instance per tier)."""

    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    successes: int = 0
    successes_after_retry: int = 0
    giveups: int = 0

    @property
    def availability(self) -> float:
        """Fraction of logical operations that ultimately succeeded."""
        finished = self.successes + self.giveups
        if finished == 0:
            return 1.0
        return self.successes / finished

    def summary_lines(self) -> List[str]:
        """Human-readable counter dump."""
        return [
            f"op attempts        {self.attempts}"
            f" ({self.retries} retries, {self.timeouts} timeouts)",
            f"op outcomes        {self.successes} ok"
            f" ({self.successes_after_retry} after retry),"
            f" {self.giveups} gave up",
            f"availability       {100.0 * self.availability:.2f}%",
        ]


#: An operation: a zero-argument callable producing a fresh simulation
#: process generator each time it is called (one per attempt).
OpFactory = Callable[[], Generator[Any, Any, Any]]


def call_with_retries(
    sim: Any,
    policy: RetryPolicy,
    factory: OpFactory,
    stats: Optional[RetryStats] = None,
    op: str = "op",
    span: Span = NULL_SPAN,
) -> Generator[Any, Any, Any]:
    """Process: run ``factory()`` (a fresh op generator per attempt)
    with per-attempt timeout and retry-with-backoff.

    Retryable failures (``exc.retryable`` truthy, plus the deadline
    expiring) are retried up to ``policy.max_attempts`` total attempts;
    the final failure — or any fatal error — propagates to the caller.
    A timed-out attempt's process is interrupted: whatever simulated
    work it had in flight completes or unwinds via its own ``finally``
    blocks, mirroring a real client abandoning a slow request.

    ``span`` (a ``repro.obs`` span; defaults to the null span) receives
    timestamped ``fault``/``timeout``/``recovered``/``giveup`` events,
    so a trace shows exactly where an op's time went to backoff.
    """
    last_exc: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        delay = policy.delay_before(attempt)
        if delay > 0:
            yield sim.timeout(delay)
        if stats is not None:
            stats.attempts += 1
            if attempt > 1:
                stats.retries += 1
        proc = sim.process(factory())
        try:
            if policy.op_timeout is None:
                result = yield proc
            else:
                deadline = sim.timeout(policy.op_timeout)
                fired, value = yield sim.any_of([proc, deadline])
                if fired is proc:
                    result = value
                else:
                    proc.interrupt(f"{op} deadline")
                    if stats is not None:
                        stats.timeouts += 1
                    span.annotate("timeout", op=op, attempt=attempt)
                    raise OpTimeoutError(op, policy.op_timeout)
        except BaseException as exc:  # noqa: B036 - classified below
            if not is_retryable(exc):
                raise
            span.annotate("fault", op=op, attempt=attempt, error=type(exc).__name__)
            last_exc = exc
            continue
        if stats is not None:
            stats.successes += 1
            if attempt > 1:
                stats.successes_after_retry += 1
        if attempt > 1:
            span.annotate("recovered", op=op, attempts=attempt)
        return result
    if stats is not None:
        stats.giveups += 1
    assert last_exc is not None  # max_attempts >= 1, so an attempt ran
    span.annotate(
        "giveup",
        op=op,
        attempts=policy.max_attempts,
        error=type(last_exc).__name__,
    )
    raise last_exc  # exhausted: surface the final retryable error
