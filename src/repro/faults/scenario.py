"""End-to-end faulted-workload scenario.

The acceptance scenario behind the ``repro faults`` CLI subcommand, the
fault-injection integration tests, and the CI smoke job: run a client
workload against a deduplicating store *while* a seeded
:class:`~repro.faults.FaultPlan` crashes OSDs, degrades disks, injects
EIO and partitions hosts — then heal, recover, drain, garbage-collect,
and check that

* every written object reads back byte-identical (zero data loss), and
* a scrub finds zero refcount leaks and zero missing chunks.

Imports of ``repro.core`` stay inside functions: ``repro.core`` itself
imports :mod:`repro.faults` (for the retry layer), so a module-level
import here would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from .errors import is_retryable
from .plan import FaultPlan

__all__ = ["ScenarioResult", "run_faulted_workload"]

KiB = 1024

#: Client-level retry ceiling: generated plans always heal (windows
#: expire, crashes restart), so a workload op eventually succeeds; the
#: cap only guards against a hand-built plan that never does.
_MAX_CLIENT_ATTEMPTS = 200


@dataclass
class ScenarioResult:
    """Everything a caller needs to judge one faulted run."""

    storage: Any
    injector: Any
    plan: FaultPlan
    scrub: Any
    #: Objects whose post-recovery read-back did not match what the
    #: client wrote (must be empty).
    corrupted_objects: List[str] = field(default_factory=list)
    objects_written: int = 0

    @property
    def zero_data_loss(self) -> bool:
        """No object was lost or corrupted."""
        return not self.corrupted_objects

    @property
    def ok(self) -> bool:
        """The run's overall verdict: data intact and refcounts clean."""
        return self.zero_data_loss and self.scrub.clean


def run_faulted_workload(
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    num_hosts: int = 4,
    osds_per_host: int = 2,
    num_objects: int = 24,
    object_size: int = 64 * KiB,
    dedupe_ratio: float = 0.6,
    horizon: float = 4.0,
    config: Any = None,
    sanitizer: Any = None,
) -> ScenarioResult:
    """Run the faulted-workload acceptance scenario; returns the result.

    When ``plan`` is omitted, one is generated from ``seed`` over
    ``horizon`` simulated seconds (see :meth:`FaultPlan.generate`).
    Writes are staggered across the first 80% of the horizon so faults
    land mid-workload — including mid-flush, since the background
    engine runs throughout.

    ``sanitizer`` (a :class:`repro.analysis.LockSanitizer`) is attached
    to the simulator before any I/O so every lock acquisition in the run
    is recorded; inspect ``sanitizer.report()`` afterwards.
    """
    from ..cluster import RadosCluster, recover_sync
    from ..core import DedupConfig, DedupedStorage, scrub_sync
    from ..workloads import ContentGenerator

    cluster = RadosCluster(
        num_hosts=num_hosts, osds_per_host=osds_per_host, pg_num=64
    )
    storage = DedupedStorage(
        cluster,
        config if config is not None else DedupConfig(chunk_size=32 * KiB),
        start_engine=True,
    )
    if sanitizer is not None:
        sanitizer.attach(storage.sim)
    if plan is None:
        plan = FaultPlan.generate(
            seed,
            horizon,
            osd_ids=sorted(cluster.osds),
            hosts=sorted(cluster.nodes),
        )
    injector = storage.inject_faults(plan)
    sim = storage.sim

    gen = ContentGenerator(seed=seed, dedupe_ratio=dedupe_ratio)
    payloads: Dict[str, bytes] = {
        f"obj-{i}": gen.block(object_size) for i in range(num_objects)
    }

    def client_write(
        oid: str, data: bytes, at: float
    ) -> Generator[Any, Any, None]:
        # A real client: start at a scheduled time, and when the store's
        # own retries give up (fault window outlasted the op budget),
        # back off and reissue the whole request until it lands.
        yield sim.timeout(at)
        for attempt in range(_MAX_CLIENT_ATTEMPTS):
            try:
                yield from storage.write(oid, data)
                return
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                yield sim.timeout(0.25)
        raise RuntimeError(f"write of {oid!r} never succeeded under {plan!r}")

    procs = [
        sim.process(client_write(oid, data, (i / max(1, num_objects)) * horizon * 0.8))
        for i, (oid, data) in enumerate(sorted(payloads.items()))
    ]

    def workload() -> Generator[Any, Any, Any]:
        results = yield sim.all_of(procs)
        return results

    cluster.run(workload())
    # Let every scheduled fault window open and expire.
    if sim.now < horizon:
        sim.run(until=horizon)

    storage.engine.stop()
    injector.heal_all()
    recover_sync(cluster)
    injector.detach()
    storage.engine.drain_sync()  # flush everything + offline GC
    scrub = scrub_sync(storage.tier)

    corrupted = [
        oid
        for oid, data in sorted(payloads.items())
        if storage.read_sync(oid, 0, len(data)) != data
    ]
    # Quiesce: the verification reads can spawn fire-and-forget cache
    # promotions; run the loop dry so no task is left suspended holding
    # an object lock (the lock sanitizer treats that as a leak).
    sim.run()
    return ScenarioResult(
        storage=storage,
        injector=injector,
        plan=plan,
        scrub=scrub,
        corrupted_objects=corrupted,
        objects_written=num_objects,
    )
