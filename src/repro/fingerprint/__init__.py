"""Fingerprinting and the baseline fingerprint index."""

from .fingerprint import FINGERPRINT_ALGORITHMS, fingerprint, fingerprint_size
from .index import FingerprintIndex, IndexStats

__all__ = [
    "fingerprint",
    "fingerprint_size",
    "FINGERPRINT_ALGORITHMS",
    "FingerprintIndex",
    "IndexStats",
]
