"""Fingerprinting and the baseline fingerprint index."""

from .fingerprint import FINGERPRINT_ALGORITHMS, fingerprint, fingerprint_size
from .index import FingerprintIndex, IndexStats
from .pool import FingerprintHandle, FingerprintPool, PoolStats

__all__ = [
    "fingerprint",
    "fingerprint_size",
    "FINGERPRINT_ALGORITHMS",
    "FingerprintIndex",
    "IndexStats",
    "FingerprintHandle",
    "FingerprintPool",
    "PoolStats",
]
