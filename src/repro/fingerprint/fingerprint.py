"""Chunk fingerprinting.

A fingerprint is a collision-resistant hash of a chunk's content.  In
the paper's design the fingerprint *is* the chunk object's ID ("Obj ID =
Chunk ID = FingerPrint(Chunk)", Figure 8), which is the first half of
double hashing; the second half is the storage system's placement hash
over that ID.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict

__all__ = ["fingerprint", "FINGERPRINT_ALGORITHMS", "fingerprint_size"]

FINGERPRINT_ALGORITHMS: Dict[str, Callable[[bytes], "hashlib._Hash"]] = {
    "sha1": hashlib.sha1,
    "sha256": hashlib.sha256,
    "blake2b": lambda data=b"": hashlib.blake2b(data, digest_size=20),
}


def fingerprint(data: bytes, algorithm: str = "sha1") -> str:
    """Hex fingerprint of ``data`` under ``algorithm``.

    ``sha1`` is the default to match deployed dedup systems (including
    Ceph's); ``sha256`` and ``blake2b`` are available for stronger
    collision resistance.
    """
    try:
        factory = FINGERPRINT_ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown fingerprint algorithm {algorithm!r}; "
            f"choose from {sorted(FINGERPRINT_ALGORITHMS)}"
        ) from None
    return factory(data).hexdigest()


def fingerprint_size(algorithm: str = "sha1") -> int:
    """Digest size in bytes for ``algorithm``."""
    return len(fingerprint(b"", algorithm)) // 2
