"""The conventional fingerprint index — the thing the paper *removes*.

Traditional dedup (paper Figure 1) keeps an in-memory table mapping
``fingerprint -> chunk address``.  Its two scalability problems motivate
the whole design (§3.1):

* memory: at ~32 bytes/entry the index outgrows RAM as capacity grows
  into the PB range;
* placement: in a shared-nothing cluster there is no natural home for
  it short of an MDS (a SPOF and a bottleneck).

We implement it faithfully — including memory accounting and an optional
"representative fingerprint" sampling mode [12][33][37] — so benchmarks
can compare index-based dedup against the index-free double-hashing
design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .fingerprint import fingerprint_size

__all__ = ["IndexStats", "FingerprintIndex"]


@dataclass
class IndexStats:
    """Occupancy and traffic counters for a fingerprint index."""

    entries: int = 0
    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that found an entry."""
        return self.hits / self.lookups if self.lookups else 0.0


class FingerprintIndex:
    """An in-memory fingerprint -> address table with memory accounting.

    ``sample_bits`` > 0 turns it into a representative-fingerprint index:
    only fingerprints whose low ``sample_bits`` bits are zero are
    indexed, shrinking memory by ``2**sample_bits`` at the cost of missed
    duplicates (the trade-off the paper cites as inherent to that line of
    work).

    ``memory_limit`` (bytes) optionally caps the table; beyond it, the
    oldest entries are evicted FIFO — modelling the "cannot reside in
    memory" failure mode of §3.1.
    """

    def __init__(
        self,
        algorithm: str = "sha1",
        address_bytes: int = 12,
        sample_bits: int = 0,
        memory_limit: Optional[int] = None,
    ) -> None:
        if sample_bits < 0:
            raise ValueError(f"sample_bits must be >= 0, got {sample_bits}")
        self.algorithm = algorithm
        self.entry_bytes = fingerprint_size(algorithm) + address_bytes
        self.sample_bits = sample_bits
        self.memory_limit = memory_limit
        self.stats = IndexStats()
        self._table: Dict[str, object] = {}

    def _sampled_out(self, fp: str) -> bool:
        if self.sample_bits == 0:
            return False
        return int(fp, 16) & ((1 << self.sample_bits) - 1) != 0

    def memory_bytes(self) -> int:
        """Bytes of RAM this index occupies."""
        return len(self._table) * self.entry_bytes

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, fp: str) -> Optional[object]:
        """Address stored for ``fp``, or ``None``."""
        self.stats.lookups += 1
        addr = self._table.get(fp)
        if addr is not None:
            self.stats.hits += 1
        return addr

    def insert(self, fp: str, address: object) -> bool:
        """Index ``fp``; returns False if sampled out (not indexed)."""
        if self._sampled_out(fp):
            return False
        if fp not in self._table:
            self.stats.inserts += 1
            self.stats.entries += 1
        self._table[fp] = address
        if self.memory_limit is not None:
            while self.memory_bytes() > self.memory_limit and self._table:
                oldest = next(iter(self._table))
                del self._table[oldest]
                self.stats.evictions += 1
                self.stats.entries -= 1
        return True

    def remove(self, fp: str) -> None:
        """Drop ``fp`` if present."""
        if self._table.pop(fp, None) is not None:
            self.stats.entries -= 1
