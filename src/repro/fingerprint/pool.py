"""Parallel chunk fingerprinting: the dedup pipeline's hash stage.

CPython's hashlib releases the GIL while digesting buffers larger than
~2 KiB, so fanning chunk digests out over a thread pool is a real
wall-clock speedup on multi-core hosts.  :class:`FingerprintPool` wraps
a :class:`concurrent.futures.ThreadPoolExecutor` behind an
*ordered-result* API: callers submit payloads and later collect each
digest through its own :class:`FingerprintHandle`, consuming results in
submission order.  Nothing about the digests themselves depends on
scheduling — ordering is a determinism contract for the caller
(:class:`repro.core.engine.DedupEngine` applies reference-count updates
in submission order so batched and sequential flushes stay equivalent,
the invariant the ``repro lint`` DET rules and the batched==sequential
Hypothesis properties pin down).

Batch submissions are *sharded*: :meth:`FingerprintPool.submit_many`
splits the payload list into at most ``workers`` contiguous slices and
dispatches one executor task per slice, so the per-task hand-off cost
(future + queue + wakeup, easily dwarfing a single small digest) is
paid per shard, not per chunk.  Each payload still gets its own handle
and its own per-digest timing.

With ``workers=1`` the pool degrades to synchronous inline hashing —
no executor, no thread hand-off — which is also the engine-facing
behaviour on single-core machines (``workers=None`` resolves to
``os.cpu_count()``).

Timing note: the pool measures host wall-clock per digest for the perf
stage counters.  That is fine *here* — ``repro.fingerprint`` is outside
the DET001 no-wall-clock scope precisely so hashing cost never feeds
simulated state.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

from ..obs import NULL_SPAN, Span
from .fingerprint import fingerprint

__all__ = ["FingerprintHandle", "FingerprintPool", "PoolStats"]

_ShardResult = List[Tuple[str, float]]


def _digest_shard(payloads: List[bytes], algorithm: str) -> _ShardResult:
    out: _ShardResult = []
    for data in payloads:
        started = perf_counter()
        digest = fingerprint(data, algorithm)
        out.append((digest, perf_counter() - started))
    return out


@dataclass
class PoolStats:
    """Counters for the perf harness (mirrored into ``StageCounters``)."""

    #: Digests submitted over the pool's lifetime.
    tasks: int = 0
    #: Busy spans: maximal periods with at least one digest outstanding.
    spans: int = 0
    #: Sum of per-digest hashing time (across all worker threads).
    busy_seconds: float = 0.0
    #: Wall-clock covered by busy spans; ``busy_seconds / wall_seconds``
    #: estimates the achieved hashing parallelism.
    wall_seconds: float = 0.0


class FingerprintHandle:
    """One pending digest; :meth:`result` is idempotent."""

    __slots__ = ("_pool", "_key", "_future", "_index", "_digest", "_seconds")

    def __init__(
        self,
        pool: "FingerprintPool",
        key: int,
        future: Optional["Future[_ShardResult]"],
        index: int = 0,
        digest: Optional[str] = None,
        seconds: float = 0.0,
    ) -> None:
        self._pool = pool
        self._key = key
        self._future = future  # shared by every handle in the shard
        self._index = index  # this payload's slot in the shard result
        self._digest = digest
        self._seconds = seconds

    @property
    def done(self) -> bool:
        return self._digest is not None

    @property
    def seconds(self) -> float:
        """Hashing wall time for this digest (valid once resolved)."""
        return self._seconds

    def result(self) -> str:
        """Block for and return the hex digest.

        On failure the handle is still settled (removed from the pool's
        outstanding set) before the exception propagates, so an aborted
        pipeline pass cannot strand payload references in the pool.
        """
        if self._digest is None:
            future = self._future
            if future is None:
                raise RuntimeError("fingerprint task already failed")
            self._future = None
            try:
                digest, seconds = future.result()[self._index]
            except BaseException:
                self._pool._settle(self._key, 0.0)
                raise
            self._digest = digest
            self._seconds = seconds
            self._pool._settle(self._key, seconds)
        return self._digest


class FingerprintPool:
    """Ordered-result, shard-dispatched thread pool for chunk digests.

    ``workers=None`` resolves to ``os.cpu_count()``; ``workers=1`` runs
    every digest inline at submit time (no executor is ever created).
    The executor is lazy: threads start on the first parallel submit,
    not at construction.
    """

    def __init__(self, workers: Optional[int] = None, algorithm: str = "sha1") -> None:
        resolved = workers if workers is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise ValueError(f"workers must be >= 1, got {resolved}")
        self.workers = resolved
        self.algorithm = algorithm
        self.stats = PoolStats()
        self._executor: Optional[ThreadPoolExecutor] = None
        # Insertion-ordered (dict, not set — DET003): key -> handle, in
        # submission order, so quiesce() consumes deterministically.
        self._pending: Dict[int, FingerprintHandle] = {}
        self._serial = 0
        self._span_started: Optional[float] = None

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    @property
    def outstanding(self) -> int:
        """Submitted digests not yet consumed via ``result()``."""
        return len(self._pending)

    def submit(self, data: bytes, algorithm: Optional[str] = None) -> FingerprintHandle:
        """Queue one payload for digestion; returns its handle."""
        return self.submit_many([data], algorithm)[0]

    def submit_many(
        self,
        payloads: Iterable[bytes],
        algorithm: Optional[str] = None,
        span: Span = NULL_SPAN,
    ) -> List[FingerprintHandle]:
        """Fan a batch of payloads out across the pool, sharded.

        Returns one handle per payload, in the given order.  At most
        ``workers`` executor tasks are dispatched: contiguous slices of
        the batch, so hand-off overhead is amortised over the shard.

        ``span`` (a ``repro.obs`` span) is tagged with the dispatch
        shape — task, shard, and worker counts.
        """
        items = [bytes(p) for p in payloads]
        algo = algorithm if algorithm is not None else self.algorithm
        if not items:
            return []
        self.stats.tasks += len(items)
        if self._span_started is None:
            self._span_started = perf_counter()
        if not self.parallel:
            span.tag(fp_tasks=len(items), fp_shards=0, fp_workers=1)
            handles = []
            for data in items:
                self._serial += 1
                key = self._serial
                (digest, seconds), = _digest_shard([data], algo)
                handle = FingerprintHandle(
                    self, key, None, digest=digest, seconds=seconds
                )
                self._settle(key, seconds)
                handles.append(handle)
            return handles
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-fp"
            )
        nshards = min(self.workers, len(items))
        span.tag(fp_tasks=len(items), fp_shards=nshards, fp_workers=self.workers)
        per_shard = -(-len(items) // nshards)  # ceil division
        handles = []
        for lo in range(0, len(items), per_shard):
            shard = items[lo : lo + per_shard]
            future = self._executor.submit(_digest_shard, shard, algo)
            for index in range(len(shard)):
                self._serial += 1
                key = self._serial
                handle = FingerprintHandle(self, key, future, index=index)
                self._pending[key] = handle
                handles.append(handle)
        return handles

    def _settle(self, key: int, seconds: float) -> None:
        self._pending.pop(key, None)
        self.stats.busy_seconds += seconds
        if not self._pending and self._span_started is not None:
            self.stats.wall_seconds += perf_counter() - self._span_started
            self.stats.spans += 1
            self._span_started = None

    def quiesce(self) -> int:
        """Consume every outstanding result, in submission order.

        Digest errors are swallowed — they belong to whoever submitted
        the task; quiesce only guarantees nothing stays in flight (the
        engine calls this from ``drain()`` before GC so no chunk payload
        is still referenced by a worker thread).  Returns the number of
        handles settled.
        """
        settled = 0
        while self._pending:
            key = next(iter(self._pending))
            handle = self._pending[key]
            try:
                handle.result()
            except Exception:
                pass
            settled += 1
        return settled

    def shutdown(self) -> None:
        """Quiesce and release the worker threads (idempotent)."""
        self.quiesce()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
