"""Measurement utilities: latencies, throughput series, usage snapshots."""

from .faults import FaultReport, fault_report
from .latency import LatencyRecorder
from .timeseries import ThroughputSeries
from .usage import CpuSnapshot, StorageBreakdown, cpu_usage, storage_breakdown

__all__ = [
    "LatencyRecorder",
    "ThroughputSeries",
    "CpuSnapshot",
    "cpu_usage",
    "StorageBreakdown",
    "storage_breakdown",
    "FaultReport",
    "fault_report",
]
