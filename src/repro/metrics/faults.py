"""Fault-tolerance metrics: what the injector did, how the retry layer
and engine absorbed it, and the resulting availability.

One :func:`fault_report` call snapshots everything an operator (or a CI
smoke job) needs to judge a faulted run: injected faults, retry/timeout
counters, engine requeues, and currently-down OSDs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, List, Optional

from ..faults.injector import FaultStats
from ..faults.retry import RetryStats
from ..obs.registry import MetricsRegistry

__all__ = ["FaultReport", "fault_report"]


@dataclass
class FaultReport:
    """Fault-injection outcome snapshot for one run."""

    sim_time: float = 0.0
    retry: RetryStats = field(default_factory=RetryStats)
    faults: Optional[FaultStats] = None
    #: OSDs still down at snapshot time (should be empty after heal).
    down_osds: List[int] = field(default_factory=list)
    engine_requeues: int = 0
    derefs_deferred: int = 0

    @property
    def availability(self) -> float:
        """Fraction of logical ops that ultimately succeeded (0..1)."""
        return self.retry.availability

    def summary_lines(self) -> List[str]:
        """Human-readable one-screen report."""
        lines = [f"sim time           {self.sim_time:.3f}s"]
        if self.faults is not None:
            lines.extend(self.faults.summary_lines())
        lines.extend(self.retry.summary_lines())
        lines.append(
            f"engine             {self.engine_requeues} fault requeues,"
            f" {self.derefs_deferred} derefs left for GC"
        )
        lines.append(
            "down OSDs          "
            + (",".join(map(str, self.down_osds)) if self.down_osds else "none")
        )
        return lines

    def export_to(self, registry: MetricsRegistry) -> None:
        """Write the snapshot into a registry as labeled gauges."""
        retry = registry.gauge(
            "repro_retry_stats", "Retry-layer counters", labels=("stat",)
        )
        for stat, value in sorted(asdict(self.retry).items()):
            retry.labels(stat=stat).set(value)
        registry.gauge(
            "repro_availability", "Fraction of logical ops that succeeded"
        ).set(self.availability)
        if self.faults is not None:
            injected = registry.gauge(
                "repro_fault_events", "Fault-injector counters", labels=("kind",)
            )
            for kind, value in sorted(asdict(self.faults).items()):
                injected.labels(kind=kind).set(value)
        registry.gauge("repro_down_osds", "OSDs down at snapshot time").set(
            len(self.down_osds)
        )
        registry.gauge(
            "repro_engine_fault_requeues", "Dedup passes requeued by faults"
        ).set(self.engine_requeues)
        registry.gauge(
            "repro_derefs_deferred", "Dereferences left for the offline GC"
        ).set(self.derefs_deferred)


def fault_report(storage: Any) -> FaultReport:
    """Snapshot fault/retry counters of a
    :class:`~repro.core.DedupedStorage` (injector attached or not)."""
    injector = getattr(storage, "faults", None)
    return FaultReport(
        sim_time=storage.sim.now,
        retry=storage.tier.retry_stats,
        faults=injector.stats if injector is not None else None,
        down_osds=list(injector.down_osds) if injector is not None else [],
        engine_requeues=storage.engine.stats.objects_requeued_fault,
        derefs_deferred=storage.engine.stats.derefs_deferred_fault,
    )
