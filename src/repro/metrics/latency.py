"""Latency recording and summary statistics."""

from __future__ import annotations

import math
from typing import Dict, List

from ..obs.registry import MetricsRegistry

__all__ = ["LatencyRecorder"]


class LatencyRecorder:
    """Collects per-operation latencies (seconds) and summarises them."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []

    def record(self, latency: float) -> None:
        """Add one sample (negative latencies are a caller bug)."""
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self._samples.append(latency)

    @property
    def count(self) -> int:
        """Number of samples."""
        return len(self._samples)

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return sum(self._samples)

    @property
    def mean(self) -> float:
        """Average latency, 0.0 when empty."""
        return self.total / len(self._samples) if self._samples else 0.0

    @property
    def minimum(self) -> float:
        """Smallest sample, 0.0 when empty."""
        return min(self._samples) if self._samples else 0.0

    @property
    def maximum(self) -> float:
        """Largest sample, 0.0 when empty."""
        return max(self._samples) if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """p-th percentile (0..100), linear interpolation; 0.0 if empty.

        Defined at both edges: ``percentile(0)`` is the minimum and
        ``percentile(100)`` the maximum, with the interpolation indices
        clamped so float rounding in ``p / 100 * (n - 1)`` can never
        step outside the sample list.
        """
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        top = len(ordered) - 1
        rank = min(p / 100.0 * top, float(top))
        lo = min(math.floor(rank), top)
        hi = min(math.ceil(rank), top)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50)

    @property
    def p99(self) -> float:
        """99th-percentile latency."""
        return self.percentile(99)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        self._samples.extend(other._samples)

    def summary(self) -> Dict[str, float]:
        """Stats as a plain dict (for table printing)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }

    def export_to(self, registry: MetricsRegistry) -> None:
        """Materialise the samples as a labeled registry histogram.

        All recorders share one ``repro_op_latency_seconds`` family,
        labeled by the recorder's ``name`` (idempotent registration, so
        any number of recorders can export into the same registry).
        """
        family = registry.histogram(
            "repro_op_latency_seconds",
            "Per-operation latency distribution",
            labels=("op",),
        )
        series = family.labels(op=self.name or "all")
        for sample in self._samples:
            series.observe(sample)
