"""Per-interval throughput time series (the paper's MB/s-over-time plots:
Figures 5-(b) and 14)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..obs.registry import MetricsRegistry

__all__ = ["ThroughputSeries"]


class ThroughputSeries:
    """Buckets bytes (and ops) into fixed time intervals."""

    def __init__(self, interval: float = 1.0, name: str = "") -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.name = name
        self._bytes: Dict[int, int] = {}
        self._ops: Dict[int, int] = {}

    def note(self, when: float, nbytes: int) -> None:
        """Record ``nbytes`` transferred at time ``when``."""
        bucket = int(when / self.interval)
        self._bytes[bucket] = self._bytes.get(bucket, 0) + nbytes
        self._ops[bucket] = self._ops.get(bucket, 0) + 1

    def series(self) -> List[Tuple[float, float]]:
        """(bucket start time, bytes/second) pairs, gaps filled with 0."""
        if not self._bytes:
            return []
        first, last = min(self._bytes), max(self._bytes)
        return [
            (b * self.interval, self._bytes.get(b, 0) / self.interval)
            for b in range(first, last + 1)
        ]

    def ops_series(self) -> List[Tuple[float, float]]:
        """(bucket start time, ops/second) pairs."""
        if not self._ops:
            return []
        first, last = min(self._ops), max(self._ops)
        return [
            (b * self.interval, self._ops.get(b, 0) / self.interval)
            for b in range(first, last + 1)
        ]

    @property
    def total_bytes(self) -> int:
        """All bytes recorded."""
        return sum(self._bytes.values())

    @property
    def total_ops(self) -> int:
        """All ops recorded."""
        return sum(self._ops.values())

    def mean_throughput(self) -> float:
        """Average bytes/second over the recorded span."""
        points = self.series()
        if not points:
            return 0.0
        return sum(v for _t, v in points) / len(points)

    def min_throughput(self) -> float:
        """Worst bucket's bytes/second (dip depth in Figure 5-b)."""
        points = self.series()
        return min((v for _t, v in points), default=0.0)

    def export_to(self, registry: MetricsRegistry) -> None:
        """Write the series' aggregates into a registry as gauges.

        Every series shares the same label-per-series families (keyed by
        ``name``), so several workload series can land in one registry.
        """
        label = self.name or "all"
        for metric, help_text, value in (
            ("repro_throughput_bytes_total", "Bytes recorded by the series",
             float(self.total_bytes)),
            ("repro_throughput_ops_total", "Ops recorded by the series",
             float(self.total_ops)),
            ("repro_throughput_mean_bps", "Mean bytes/second over the span",
             self.mean_throughput()),
            ("repro_throughput_min_bps", "Worst bucket's bytes/second",
             self.min_throughput()),
        ):
            registry.gauge(metric, help_text, labels=("series",)).labels(
                series=label
            ).set(value)
