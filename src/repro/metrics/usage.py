"""Cluster resource-usage snapshots: CPU and storage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from ..obs.registry import MetricsRegistry

__all__ = ["CpuSnapshot", "cpu_usage", "StorageBreakdown", "storage_breakdown"]


@dataclass
class CpuSnapshot:
    """Average CPU utilisation per node plus the cluster-wide mean."""

    per_node: Dict[str, float]

    @property
    def mean(self) -> float:
        """Cluster-average fraction of cores busy (0..1)."""
        if not self.per_node:
            return 0.0
        return sum(self.per_node.values()) / len(self.per_node)

    @property
    def mean_percent(self) -> float:
        """Cluster-average CPU usage in percent (Figure 10's axis)."""
        return 100.0 * self.mean

    def export_to(self, registry: MetricsRegistry) -> None:
        """Write the snapshot into a registry as labeled gauges."""
        per_node = registry.gauge(
            "repro_cpu_utilization",
            "Fraction of cores busy per node (0..1)",
            labels=("node",),
        )
        for name in sorted(self.per_node):
            per_node.labels(node=name).set(self.per_node[name])
        registry.gauge(
            "repro_cpu_utilization_mean", "Cluster-average fraction of cores busy"
        ).set(self.mean)


def cpu_usage(cluster: Any, since: float = 0.0) -> CpuSnapshot:
    """Measure CPU utilisation of every storage node since ``since``."""
    return CpuSnapshot(
        per_node={
            name: node.cpu.utilization(since) for name, node in cluster.nodes.items()
        }
    )


@dataclass
class StorageBreakdown:
    """Raw space used per pool and in total (Figure 12-e's axis)."""

    per_pool: Dict[str, int]
    total: int

    def export_to(self, registry: MetricsRegistry) -> None:
        """Write the breakdown into a registry as labeled gauges."""
        per_pool = registry.gauge(
            "repro_pool_used_bytes",
            "Raw bytes (all copies/shards) used per pool",
            labels=("pool",),
        )
        for name in sorted(self.per_pool):
            per_pool.labels(pool=name).set(self.per_pool[name])
        registry.gauge(
            "repro_used_bytes_total", "Raw bytes used across every OSD"
        ).set(self.total)


def storage_breakdown(cluster: Any) -> StorageBreakdown:
    """Raw bytes (all replicas/shards + metadata) used by each pool."""
    per_pool = {
        name: cluster.pool_used_bytes(pool) for name, pool in cluster.pools.items()
    }
    return StorageBreakdown(per_pool=per_pool, total=cluster.total_used_bytes())
