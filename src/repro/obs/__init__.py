"""Observability layer: deterministic op tracing and a typed metrics registry.

The package is an import *leaf*: it depends on nothing else in
``repro`` so the hot paths (``repro.core``, ``repro.cluster``,
``repro.faults``) and the collectors (``repro.metrics``) can all import
it without cycles.  Spans run on an *injected* clock — the dedup tier
passes the simulation clock (keeping DET001's no-wall-clock invariant),
while the perf harness may pass ``time.perf_counter``.
"""

from .integrity import check_trace, stage_rollup
from .registry import (
    DEFAULT_BUCKETS,
    CardinalityError,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .trace import NULL_SPAN, NullSpan, Span, Tracer

__all__ = [
    "CardinalityError",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "Tracer",
    "check_trace",
    "stage_rollup",
]
