"""``repro obs`` subcommands: trace, report, and top-spans.

``repro obs trace`` runs a seeded write/dedup/read/delete workload with
op tracing enabled and emits the span tree as JSONL (plus an optional
Prometheus metrics snapshot) — the same artifact the ``obs-smoke`` CI
job uploads.  ``report`` renders a per-stage rollup with root-coverage
figures, and ``top-spans`` lists the slowest individual spans.  Both
accept ``--trace PATH`` to analyse a previously dumped trace instead of
re-running the workload.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List

from .collect import storage_metrics
from .export import dump_trace_jsonl, load_trace_jsonl, prometheus_text, trace_jsonl_lines
from .integrity import check_trace, coverage_by_root, stage_rollup, top_spans

__all__ = [
    "REQUIRED_STAGE_PREFIXES",
    "run_traced_workload",
    "cmd_trace",
    "cmd_report",
    "cmd_top_spans",
]

#: Stage-name prefixes every seeded-workload trace must contain; the
#: obs-smoke job fails if any layer stops emitting spans.
REQUIRED_STAGE_PREFIXES = ("op.", "engine.", "tier.", "rados.")

_KiB = 1024


def run_traced_workload(
    seed: int = 0, objects: int = 24, dedupe_ratio: float = 0.75
) -> Any:
    """Seeded workload with ``trace_ops`` on; returns the storage stack.

    Writes ``objects`` 64 KiB blocks (75 % duplicate content by
    default), drains the dedup engine, reads a third of them back and
    deletes one — so the trace exercises every root-op kind
    (``op.write``, ``op.dedup_pass``, ``op.read``, ``op.delete``).
    """
    # Imported lazily: obs is an import leaf; repro.core must stay free
    # to import repro.obs at module scope.
    from ..cluster import RadosCluster
    from ..core import DedupConfig, DedupedStorage
    from ..workloads import ContentGenerator

    cluster = RadosCluster(num_hosts=4, osds_per_host=4, pg_num=64)
    storage = DedupedStorage(
        cluster,
        DedupConfig(chunk_size=32 * _KiB, trace_ops=True),
        start_engine=False,
    )
    gen = ContentGenerator(seed=seed, dedupe_ratio=dedupe_ratio)
    for i in range(objects):
        storage.write_sync(f"obs-{i}", gen.block(64 * _KiB))
    storage.drain()
    for i in range(0, objects, 3):
        storage.read_sync(f"obs-{i}")
    storage.delete_sync(f"obs-{objects - 1}")
    return storage


def _load_records(args: Any) -> List[Dict[str, Any]]:
    """Trace records from ``--trace PATH`` or a fresh seeded run."""
    if getattr(args, "trace", None):
        return load_trace_jsonl(args.trace)
    storage = run_traced_workload(seed=args.seed, objects=args.objects)
    return storage.tracer.to_records()


def cmd_trace(args: Any) -> int:
    """Run the seeded workload, dump the trace, verify its integrity."""
    storage = run_traced_workload(seed=args.seed, objects=args.objects)
    records = storage.tracer.to_records()
    if args.out:
        count = dump_trace_jsonl(records, args.out)
        print(f"{count} spans written to {args.out}")
    else:
        for line in trace_jsonl_lines(records):
            print(line)
    if args.metrics_out:
        registry = storage_metrics(storage)
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(prometheus_text(registry))
        print(f"metrics snapshot written to {args.metrics_out}")
    problems = check_trace(
        records,
        required_stages=REQUIRED_STAGE_PREFIXES,
        coverage_threshold=args.coverage,
    )
    roots = sum(1 for r in records if r["parent_id"] is None)
    print(
        f"trace: {len(records)} spans, {roots} root ops,"
        f" {len(stage_rollup(records))} stages,"
        f" integrity {'OK' if not problems else 'FAILED'}"
    )
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


def cmd_report(args: Any) -> int:
    """Per-stage rollup plus root-op coverage for a trace."""
    records = _load_records(args)
    if not records:
        print("trace is empty: no spans recorded", file=sys.stderr)
        return 1
    rollup = stage_rollup(records)
    width = max(len(stage) for stage in rollup)
    print(f"{'stage'.ljust(width)}  count  seconds     mean        max")
    for stage, entry in rollup.items():
        print(
            f"{stage.ljust(width)}  {int(entry['count']):5d}"
            f"  {entry['seconds']:.6f}  {entry['mean']:.6f}  {entry['max']:.6f}"
        )
    coverage = coverage_by_root(records)
    if coverage:
        worst = min(coverage.values())
        mean = sum(coverage.values()) / len(coverage)
        print(
            f"root coverage: {len(coverage)} timed roots,"
            f" mean {mean:.1%}, worst {worst:.1%}"
        )
    problems = check_trace(records, required_stages=REQUIRED_STAGE_PREFIXES)
    print(f"integrity: {'OK' if not problems else f'{len(problems)} problem(s)'}")
    for problem in problems:
        print(f"  {problem}", file=sys.stderr)
    return 1 if problems else 0


def cmd_top_spans(args: Any) -> int:
    """The N slowest spans, longest first."""
    records = _load_records(args)
    slowest = top_spans(records, limit=args.limit, stage_prefix=args.stage)
    if not slowest:
        print("no finished spans matched", file=sys.stderr)
        return 1
    for record in slowest:
        duration = record["end"] - record["start"]
        tags = record.get("tags") or {}
        tag_text = " ".join(f"{k}={tags[k]}" for k in sorted(tags))
        print(
            f"{duration:.6f}s  {record['stage']}"
            f"  span={record['span_id']} trace={record['trace_id']}"
            + (f"  {tag_text}" if tag_text else "")
        )
    return 0
