"""One-shot collectors: snapshot a running storage stack into a registry.

:func:`storage_metrics` is the glue between the simulation objects and
the :class:`~repro.obs.registry.MetricsRegistry` — it walks a
``DedupedStorage`` (duck-typed, so this module stays decoupled from
``repro.core``) and materialises engine counters, per-stage hot-path
counters, space accounting, fault/retry outcomes and resource usage as
labeled series.  The ``repro.metrics`` collectors contribute through
their ``export_to(registry)`` hooks.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Optional

from .registry import MetricsRegistry

__all__ = ["storage_metrics"]


def storage_metrics(
    storage: Any, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Snapshot ``storage`` (a ``DedupedStorage``) into a registry.

    Safe to call repeatedly: counter families are registered
    idempotently and gauges are overwritten with current values.
    """
    # Imported lazily: obs is an import leaf; pulling repro.metrics at
    # module scope would re-introduce the cycle the layering avoids.
    from ..metrics.faults import fault_report
    from ..metrics.usage import cpu_usage, storage_breakdown

    reg = registry if registry is not None else MetricsRegistry()

    reg.gauge("repro_sim_seconds", "Simulated clock at snapshot time").set(
        storage.sim.now
    )

    engine_ops = reg.gauge(
        "repro_engine_ops", "Dedup engine counters", labels=("stat",)
    )
    for stat, value in sorted(asdict(storage.engine.stats).items()):
        engine_ops.labels(stat=stat).set(value)

    stage = reg.gauge(
        "repro_stage_counters", "Hot-path per-stage counters", labels=("counter",)
    )
    for counter, value in sorted(storage.tier.stage.snapshot().items()):
        stage.labels(counter=counter).set(value)

    # Hot-path cache traffic, one family across the four read caches so
    # dashboards can plot hit/miss/eviction rates side by side.  The raw
    # counters also appear in repro_stage_counters; this view groups
    # them by (cache, event) instead of flat counter name.
    stages = storage.tier.stage
    cache_events = reg.gauge(
        "repro_cache_events",
        "Cache traffic by cache and event (refset LRU, negative Bloom, "
        "decoded chunk-map LRU, chunk data cache)",
        labels=("cache", "event"),
    )
    cache_events.labels(cache="refset", event="hit").set(stages.refset_cache_hits)
    cache_events.labels(cache="refset", event="miss").set(stages.refset_cache_misses)
    cache_events.labels(cache="bloom", event="negative_hit").set(
        stages.bloom_negative_hits
    )
    cache_events.labels(cache="map", event="hit").set(stages.map_cache_hits)
    cache_events.labels(cache="map", event="miss").set(stages.map_cache_misses)
    cache_events.labels(cache="map", event="invalidation").set(
        stages.map_cache_invalidations
    )
    cache_events.labels(cache="chunk_data", event="hit").set(
        stages.chunk_cache_hits
    )
    cache_events.labels(cache="chunk_data", event="miss").set(
        stages.chunk_cache_misses
    )
    cache_events.labels(cache="chunk_data", event="admission").set(
        stages.chunk_cache_admissions
    )
    cache_events.labels(cache="chunk_data", event="eviction").set(
        stages.chunk_cache_evictions
    )

    chunk_cache = getattr(storage.tier, "chunk_data_cache", None)
    if chunk_cache is not None:
        reg.gauge(
            "repro_chunk_cache_bytes",
            "Bytes resident in the chunk data cache",
        ).set(chunk_cache.bytes_used)
        reg.gauge(
            "repro_chunk_cache_entries",
            "Payloads resident in the chunk data cache",
        ).set(len(chunk_cache))

    read_fanout = reg.gauge(
        "repro_read_fanout", "Read-path fan-out and coalescing", labels=("stat",)
    )
    read_fanout.labels(stat="chunk_reads").set(stages.fanout_chunk_reads)
    read_fanout.labels(stat="batches").set(stages.fanout_batches)
    read_fanout.labels(stat="batched_chunks").set(stages.fanout_batched_chunks)

    space = storage.tier.space_report()
    space_gauge = reg.gauge(
        "repro_space_bytes", "Dedup-tier space accounting", labels=("kind",)
    )
    space_gauge.labels(kind="logical").set(space.logical_bytes)
    space_gauge.labels(kind="chunk_data").set(space.chunk_data_bytes)
    space_gauge.labels(kind="cached_data").set(space.cached_data_bytes)
    space_gauge.labels(kind="metadata").set(space.metadata_bytes)
    space_gauge.labels(kind="raw_used").set(space.raw_used_bytes)
    reg.gauge("repro_dedup_ratio_ideal", "1 - unique/logical data").set(
        space.ideal_dedup_ratio
    )
    reg.gauge("repro_dedup_ratio_actual", "Dedup ratio charged with metadata").set(
        space.actual_dedup_ratio
    )

    fault_report(storage).export_to(reg)
    cpu_usage(storage.cluster).export_to(reg)
    storage_breakdown(storage.cluster).export_to(reg)

    tracer = getattr(storage.tier, "tracer", None)
    if tracer is not None:
        reg.gauge("repro_trace_spans", "Spans buffered by the tier tracer").set(
            len(tracer.spans)
        )
        reg.gauge(
            "repro_trace_spans_dropped", "Spans dropped at the tracer's cap"
        ).set(tracer.dropped)

    return reg
