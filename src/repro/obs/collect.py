"""One-shot collectors: snapshot a running storage stack into a registry.

:func:`storage_metrics` is the glue between the simulation objects and
the :class:`~repro.obs.registry.MetricsRegistry` — it walks a
``DedupedStorage`` (duck-typed, so this module stays decoupled from
``repro.core``) and materialises engine counters, per-stage hot-path
counters, space accounting, fault/retry outcomes and resource usage as
labeled series.  The ``repro.metrics`` collectors contribute through
their ``export_to(registry)`` hooks.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Optional

from .registry import MetricsRegistry

__all__ = ["storage_metrics"]


def storage_metrics(
    storage: Any, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Snapshot ``storage`` (a ``DedupedStorage``) into a registry.

    Safe to call repeatedly: counter families are registered
    idempotently and gauges are overwritten with current values.
    """
    # Imported lazily: obs is an import leaf; pulling repro.metrics at
    # module scope would re-introduce the cycle the layering avoids.
    from ..metrics.faults import fault_report
    from ..metrics.usage import cpu_usage, storage_breakdown

    reg = registry if registry is not None else MetricsRegistry()

    reg.gauge("repro_sim_seconds", "Simulated clock at snapshot time").set(
        storage.sim.now
    )

    engine_ops = reg.gauge(
        "repro_engine_ops", "Dedup engine counters", labels=("stat",)
    )
    for stat, value in sorted(asdict(storage.engine.stats).items()):
        engine_ops.labels(stat=stat).set(value)

    stage = reg.gauge(
        "repro_stage_counters", "Hot-path per-stage counters", labels=("counter",)
    )
    for counter, value in sorted(storage.tier.stage.snapshot().items()):
        stage.labels(counter=counter).set(value)

    space = storage.tier.space_report()
    space_gauge = reg.gauge(
        "repro_space_bytes", "Dedup-tier space accounting", labels=("kind",)
    )
    space_gauge.labels(kind="logical").set(space.logical_bytes)
    space_gauge.labels(kind="chunk_data").set(space.chunk_data_bytes)
    space_gauge.labels(kind="cached_data").set(space.cached_data_bytes)
    space_gauge.labels(kind="metadata").set(space.metadata_bytes)
    space_gauge.labels(kind="raw_used").set(space.raw_used_bytes)
    reg.gauge("repro_dedup_ratio_ideal", "1 - unique/logical data").set(
        space.ideal_dedup_ratio
    )
    reg.gauge("repro_dedup_ratio_actual", "Dedup ratio charged with metadata").set(
        space.actual_dedup_ratio
    )

    fault_report(storage).export_to(reg)
    cpu_usage(storage.cluster).export_to(reg)
    storage_breakdown(storage.cluster).export_to(reg)

    tracer = getattr(storage.tier, "tracer", None)
    if tracer is not None:
        reg.gauge("repro_trace_spans", "Spans buffered by the tier tracer").set(
            len(tracer.spans)
        )
        reg.gauge(
            "repro_trace_spans_dropped", "Spans dropped at the tracer's cap"
        ).set(tracer.dropped)

    return reg
