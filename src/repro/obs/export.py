"""Exporters: JSONL trace dumps and Prometheus-style text exposition.

Both formats are deterministic: trace records keep tracer creation
order (which is itself deterministic under a seeded simulation), and
the text exposition walks families and series in sorted order.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from .registry import MetricsRegistry

__all__ = [
    "dump_trace_jsonl",
    "load_trace_jsonl",
    "trace_jsonl_lines",
    "prometheus_text",
]


def trace_jsonl_lines(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Each span record as one compact JSON line (keys sorted)."""
    return [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in records
    ]


def dump_trace_jsonl(records: Iterable[Dict[str, Any]], path: str) -> int:
    """Write span records to ``path`` as JSONL; returns the span count."""
    lines = trace_jsonl_lines(records)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def load_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read span records back from a JSONL trace dump."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_block(names: Iterable[str], values: Iterable[str]) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Families sorted by name, series by label values; histograms emit
    cumulative ``_bucket`` samples plus ``_sum``/``_count``.
    """
    out: List[str] = []
    for family in registry.families():
        if family.help_text:
            out.append(f"# HELP {family.name} {family.help_text}")
        out.append(f"# TYPE {family.name} {family.kind}")
        for values, series in family.series_items():
            labels = _label_block(family.labelnames, values)
            for sample_name, sample_value in series.sample_lines(family.name, labels):
                out.append(f"{sample_name} {_fmt_value(sample_value)}")
    return "\n".join(out) + ("\n" if out else "")
