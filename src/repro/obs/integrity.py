"""Trace-tree integrity checks and per-stage rollups.

``check_trace`` is the contract behind the ``obs-smoke`` CI job: every
span must be finished, every ``parent_id`` must resolve inside the same
trace, children must nest inside their parents, the expected pipeline
stages must all appear, and for each root op the union of its
descendants' intervals must cover at least ``coverage_threshold`` of
the root's duration — i.e. the trace accounts for where the op's time
actually went instead of leaving dark gaps.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["check_trace", "stage_rollup", "coverage_by_root", "top_spans"]

#: Numerical slack for interval comparisons (sim floats accumulate).
_EPS = 1e-9


def _index(records: Sequence[Dict[str, Any]]) -> Dict[int, Dict[str, Any]]:
    return {int(r["span_id"]): r for r in records}


def check_trace(
    records: Sequence[Dict[str, Any]],
    required_stages: Sequence[str] = (),
    coverage_threshold: float = 0.95,
) -> List[str]:
    """Validate a span-record list; returns problems ([] means OK).

    ``required_stages`` holds stage-name *prefixes* ("engine.",
    "rados.", ...) that must each match at least one span.
    """
    problems: List[str] = []
    by_id = _index(records)
    if len(by_id) != len(records):
        problems.append("duplicate span ids in trace")

    stages_seen = [str(r["stage"]) for r in records]
    for prefix in required_stages:
        if not any(stage.startswith(prefix) for stage in stages_seen):
            problems.append(f"required stage prefix {prefix!r} never appeared")

    for record in records:
        sid = int(record["span_id"])
        stage = record["stage"]
        start = record["start"]
        end = record["end"]
        if end is None:
            problems.append(f"span {sid} ({stage}) was never finished")
            continue
        if end + _EPS < start:
            problems.append(f"span {sid} ({stage}) ends before it starts")
        parent_id = record["parent_id"]
        if parent_id is None:
            continue
        parent = by_id.get(int(parent_id))
        if parent is None:
            problems.append(f"span {sid} ({stage}) is orphaned: parent {parent_id} missing")
            continue
        if parent["trace_id"] != record["trace_id"]:
            problems.append(
                f"span {sid} ({stage}) crosses traces:"
                f" {record['trace_id']} vs parent's {parent['trace_id']}"
            )
        if parent["end"] is not None and (
            start + _EPS < parent["start"] or end > parent["end"] + _EPS
        ):
            problems.append(
                f"span {sid} ({stage}) escapes its parent"
                f" {parent['span_id']} ({parent['stage']}) interval"
            )

    for root_id, coverage in coverage_by_root(records).items():
        if coverage + _EPS < coverage_threshold:
            root = by_id[root_id]
            problems.append(
                f"root span {root_id} ({root['stage']}) has only"
                f" {coverage:.1%} of its time covered by child spans"
                f" (need {coverage_threshold:.0%})"
            )
    return problems


def coverage_by_root(records: Sequence[Dict[str, Any]]) -> Dict[int, float]:
    """Fraction of each root span's duration covered by its descendants.

    Roots with (near-)zero duration are skipped — there is nothing to
    cover.  Descendant intervals are clipped to the root and unioned,
    so overlapping children are not double-counted.
    """
    children: Dict[int, List[Tuple[float, float]]] = {}
    roots: Dict[int, Tuple[int, float, float]] = {}
    for record in records:
        if record["end"] is None:
            continue
        trace_id = int(record["trace_id"])
        if record["parent_id"] is None:
            roots[int(record["span_id"])] = (trace_id, record["start"], record["end"])
        else:
            children.setdefault(trace_id, []).append((record["start"], record["end"]))

    result: Dict[int, float] = {}
    for root_id, (trace_id, start, end) in sorted(roots.items()):
        duration = end - start
        if duration <= _EPS:
            continue
        intervals = sorted(
            (max(lo, start), min(hi, end))
            for lo, hi in children.get(trace_id, [])
            if hi > start and lo < end
        )
        covered = 0.0
        cursor = start
        for lo, hi in intervals:
            lo = max(lo, cursor)
            if hi > lo:
                covered += hi - lo
                cursor = hi
        result[root_id] = covered / duration
    return result


def stage_rollup(records: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by stage name.

    Returns ``{stage: {"count", "seconds", "mean", "max"}}`` with
    seconds summed over span durations (a child's time is *also* inside
    its parent's — rollups answer "how long did stage X run in total",
    not "where did exclusive time go").
    """
    rollup: Dict[str, Dict[str, float]] = {}
    for record in records:
        if record["end"] is None:
            continue
        duration = float(record["end"]) - float(record["start"])
        entry = rollup.setdefault(
            str(record["stage"]), {"count": 0.0, "seconds": 0.0, "max": 0.0}
        )
        entry["count"] += 1
        entry["seconds"] += duration
        entry["max"] = max(entry["max"], duration)
    for entry in rollup.values():
        entry["mean"] = entry["seconds"] / entry["count"] if entry["count"] else 0.0
    return {stage: rollup[stage] for stage in sorted(rollup)}


def top_spans(
    records: Sequence[Dict[str, Any]], limit: int = 10, stage_prefix: Optional[str] = None
) -> List[Dict[str, Any]]:
    """The ``limit`` longest finished spans, longest first.

    Ties break on span id so the ordering is deterministic.
    """
    finished = [
        r
        for r in records
        if r["end"] is not None
        and (stage_prefix is None or str(r["stage"]).startswith(stage_prefix))
    ]
    finished.sort(key=lambda r: (-(r["end"] - r["start"]), int(r["span_id"])))
    return finished[:limit]
