"""Typed metrics registry: counters, gauges, labeled series, histograms.

A :class:`MetricsRegistry` owns *families*; a family owns *series*, one
per unique label-value tuple.  The shape mirrors the Prometheus data
model so the text exposition in :mod:`repro.obs.export` is a direct
walk, but everything here is plain deterministic Python:

* label names are fixed at registration — a ``labels()`` call with a
  different key set is a ``ValueError``;
* per-family series count is capped (:class:`CardinalityError`) so an
  accidental high-cardinality label (e.g. a chunk id) fails fast
  instead of silently eating memory;
* iteration order is sorted (family name, then label values), never
  insertion order, so exports are stable across runs and Python
  versions — including under ``REPRO_NO_NUMPY``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "CardinalityError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Latency-oriented default histogram boundaries (seconds), fixed so two
#: runs of the same workload always land samples in the same buckets.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class CardinalityError(ValueError):
    """A family exceeded its configured maximum number of label series."""


class Counter:
    """Monotonically increasing value (resets only with the registry)."""

    kind = "counter"

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def sample_lines(self, name: str, labels: str) -> List[Tuple[str, float]]:
        """(sample name, value) pairs for text exposition."""
        return [(name + labels, self._value)]


class Gauge:
    """Point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self._value -= amount

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def sample_lines(self, name: str, labels: str) -> List[Tuple[str, float]]:
        """(sample name, value) pairs for text exposition."""
        return [(name + labels, self._value)]


class Histogram:
    """Fixed-boundary histogram with sum/count/min/max and quantiles.

    Boundaries are upper-inclusive (Prometheus ``le`` semantics): an
    observation equal to a boundary lands in that boundary's bucket.
    A final implicit ``+Inf`` bucket catches everything above the last
    boundary.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket boundaries must be strictly increasing: {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.sum += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-quantile (0 <= q <= 1) from buckets.

        Defined for every input: an empty histogram returns 0.0, q=1.0
        returns the exact observed maximum, q=0.0 the observed minimum.
        Interior quantiles interpolate linearly within the bucket that
        holds the target rank, clamped to the observed min/max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        if self.count == 0 or self.min is None or self.max is None:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if not n:
                continue
            cumulative += n
            if cumulative >= target:
                lo = self.buckets[i - 1] if i > 0 else self.min
                hi = self.buckets[i] if i < len(self.buckets) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                frac = 1.0 - (cumulative - target) / n
                return lo + (hi - lo) * frac
        return self.max

    def sample_lines(self, name: str, labels: str) -> List[Tuple[str, float]]:
        """Cumulative ``_bucket``/``_sum``/``_count`` exposition samples."""
        lines: List[Tuple[str, float]] = []
        cumulative = 0
        for bound, n in zip(self.buckets, self.counts):
            cumulative += n
            lines.append((_with_le(name, labels, _fmt_bound(bound)), float(cumulative)))
        cumulative += self.counts[-1]
        lines.append((_with_le(name, labels, "+Inf"), float(cumulative)))
        lines.append((name + "_sum" + labels, self.sum))
        lines.append((name + "_count" + labels, float(self.count)))
        return lines


def _fmt_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound)) + ".0"
    return repr(bound)


def _with_le(name: str, labels: str, le: str) -> str:
    if labels:
        return f"{name}_bucket{labels[:-1]},le=\"{le}\"}}"
    return f'{name}_bucket{{le="{le}"}}'


class MetricFamily:
    """A named metric plus its labeled series.

    ``labels(**kv)`` returns (creating on first use) the series for a
    concrete label assignment; calling value methods directly on the
    family addresses the label-less series, which is only legal when
    the family was registered without label names.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        max_series: int,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.labelnames = labelnames
        self.max_series = max_series
        self.buckets = tuple(buckets) if buckets is not None else None
        self._series: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labelvalues: Any) -> Any:
        """The series for this exact label assignment (created lazily)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {sorted(self.labelnames)},"
                f" got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                raise CardinalityError(
                    f"{self.name}: series cap {self.max_series} reached"
                    f" (rejected labels {dict(zip(self.labelnames, key))})"
                )
            series = self._new_series()
            self._series[key] = series
        return series

    def _new_series(self) -> Any:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets if self.buckets is not None else DEFAULT_BUCKETS)

    # Label-less convenience delegates -------------------------------------
    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less series."""
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the label-less gauge series."""
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        """Set the label-less gauge series."""
        self.labels().set(value)

    def observe(self, value: float) -> None:
        """Observe into the label-less histogram series."""
        self.labels().observe(value)

    def series_items(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """(label values, series) pairs sorted by label values."""
        return sorted(self._series.items())

    def __len__(self) -> int:
        return len(self._series)


class MetricsRegistry:
    """Registry of metric families with idempotent registration.

    Re-registering a name with the same kind/labels returns the
    existing family (so collectors can run repeatedly); re-registering
    with a different shape is an error.
    """

    def __init__(self, max_series_per_family: int = 256) -> None:
        self.max_series_per_family = max_series_per_family
        self._families: Dict[str, MetricFamily] = {}

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, "counter", help_text, labels, None)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, "gauge", help_text, labels, None)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a histogram family with fixed buckets."""
        return self._register(name, "histogram", help_text, labels, buckets)

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]],
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        labelnames = tuple(labels)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        if len(set(labelnames)) != len(labelnames):
            raise ValueError(f"duplicate label names: {labelnames}")
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != labelnames:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                    f"{existing.labelnames}, cannot re-register as {kind}{labelnames}"
                )
            if kind == "histogram" and buckets is not None:
                if existing.buckets != tuple(float(b) for b in buckets):
                    raise ValueError(f"metric {name!r} re-registered with different buckets")
            return existing
        family = MetricFamily(
            name,
            kind,
            help_text,
            labelnames,
            self.max_series_per_family,
            tuple(float(b) for b in buckets) if buckets is not None else None,
        )
        self._families[name] = family
        return family

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, if any."""
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        """All families, sorted by name (deterministic export order)."""
        return [self._families[name] for name in sorted(self._families)]

    def __iter__(self) -> Iterator[MetricFamily]:
        return iter(self.families())

    def __len__(self) -> int:
        return len(self._families)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot: family -> sorted list of series dicts."""
        doc: Dict[str, Any] = {}
        for family in self.families():
            series_docs = []
            for values, series in family.series_items():
                entry: Dict[str, Any] = {
                    "labels": dict(zip(family.labelnames, values)),
                }
                if family.kind == "histogram":
                    entry.update(
                        count=series.count,
                        sum=series.sum,
                        min=series.min,
                        max=series.max,
                        buckets=list(zip(series.buckets, series.counts)),
                        overflow=series.counts[-1],
                    )
                else:
                    entry["value"] = series.value
                series_docs.append(entry)
            doc[family.name] = {
                "kind": family.kind,
                "help": family.help_text,
                "series": series_docs,
            }
        return doc
