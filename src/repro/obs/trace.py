"""Span-tree tracer with an injected clock.

A :class:`Tracer` hands out :class:`Span` objects that form per-op
trees: each root span is one client-visible operation (a write, a read,
a dedup pass) and children mark the stages it passed through (lock
wait, chunk assembly, fingerprinting, the RADOS two-phase commit, ...).

Design constraints baked in here:

* **No wall clock.**  The clock is a constructor argument; code under
  the DET001 lint scope passes ``lambda: sim.now``.  The perf harness
  may pass ``time.perf_counter`` for wall-time traces.
* **Near-zero cost when disabled.**  A disabled tracer returns the
  :data:`NULL_SPAN` singleton whose methods are all no-ops and whose
  ``child()`` returns itself, so the hot path pays only an attribute
  call per stage — no allocation, no clock read.
* **Explicit propagation.**  Spans are passed as parameters, never via
  an ambient context stack: simulation processes interleave on one OS
  thread, so a global "current span" would mis-parent concurrent ops.

Spans must be *closed on every path* — lint rule OBS001 enforces that
every span-starting call (``root_span`` / ``start_span`` / ``child``)
is used as a ``with`` context manager or paired with ``finish()`` in a
``try/finally``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Type
from types import TracebackType

__all__ = ["Span", "NullSpan", "NULL_SPAN", "Tracer"]


class Span:
    """One timed stage in an op's trace tree.

    Spans are context managers; entering is a no-op (the span starts
    when created) and exiting finishes it, annotating the exception
    type if one is in flight.  ``finish()`` is idempotent.
    """

    __slots__ = (
        "tracer",
        "span_id",
        "parent_id",
        "trace_id",
        "stage",
        "start",
        "end",
        "tags",
        "events",
    )

    def __init__(
        self,
        tracer: Optional["Tracer"],
        span_id: int,
        parent_id: Optional[int],
        trace_id: int,
        stage: str,
        start: float,
        tags: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.stage = stage
        self.start = start
        self.end: Optional[float] = None
        self.tags = tags
        # Lazily allocated on first annotate(): most spans carry no events.
        self.events: Optional[List[Dict[str, Any]]] = None

    def child(self, stage: str, **tags: Any) -> "Span":
        """Start a child span of this one (see OBS001: close it!)."""
        if self.tracer is None:  # detached span (tests); keep the tree local
            return NULL_SPAN
        return self.tracer._make(stage, self, tags)

    def tag(self, **tags: Any) -> None:
        """Attach or overwrite key/value tags on this span."""
        self.tags.update(tags)

    def annotate(self, kind: str, **fields: Any) -> None:
        """Append a point-in-time event (e.g. a retry) to this span."""
        event: Dict[str, Any] = {"kind": kind}
        if self.tracer is not None:
            event["t"] = self.tracer.clock()
        event.update(fields)
        if self.events is None:
            self.events = []
        self.events.append(event)

    def finish(self) -> None:
        """Stop the span's clock; safe to call more than once."""
        if self.end is None and self.tracer is not None:
            self.end = self.tracer.clock()

    @property
    def duration(self) -> float:
        """Elapsed clock time, or 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_record(self) -> Dict[str, Any]:
        """JSON-ready dict (one line of a ``trace.jsonl`` dump)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "stage": self.stage,
            "start": self.start,
            "end": self.end,
            "tags": self.tags,
            "events": self.events or [],
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is not None:
            self.annotate("error", type=exc_type.__name__)
        if self.end is None and self.tracer is not None:  # finish(), inlined
            self.end = self.tracer.clock()

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"<Span {self.span_id} {self.stage!r} {state}>"


class NullSpan(Span):
    """No-op span returned when tracing is disabled.

    Every method returns immediately; ``child()`` returns the same
    singleton so disabled call sites never allocate.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(None, -1, None, -1, "", 0.0, {})

    def child(self, stage: str, **tags: Any) -> "Span":
        """Return the singleton itself — children of nothing are nothing."""
        return self

    def tag(self, **tags: Any) -> None:
        """Discard tags."""

    def annotate(self, kind: str, **fields: Any) -> None:
        """Discard events."""

    def finish(self) -> None:
        """Nothing to stop."""

    def __repr__(self) -> str:
        return "<NullSpan>"


#: Shared do-nothing span; the default for every ``span=`` parameter.
NULL_SPAN = NullSpan()


class Tracer:
    """Factory and buffer for :class:`Span` trees.

    ``clock`` is any zero-argument callable returning a monotonic
    float; span ids are sequential integers, so a trace taken from a
    seeded simulation run is bit-for-bit reproducible.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        enabled: bool = True,
        max_spans: int = 250_000,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._next_id = 1

    def root_span(self, stage: str, **tags: Any) -> Span:
        """Start a new trace with a parentless root span."""
        return self._make(stage, parent=None, tags=tags)

    def start_span(self, stage: str, parent: Optional[Span] = None, **tags: Any) -> Span:
        """Start a span, optionally as a child of ``parent``."""
        return self._make(stage, parent=parent, tags=tags)

    def _make(self, stage: str, parent: Optional[Span], tags: Dict[str, Any]) -> Span:
        # ``tags`` is always the caller's fresh ``**kwargs`` dict, so the
        # span takes ownership without copying — this runs once per stage
        # on the hot path and is kept allocation-minimal on purpose.
        if not self.enabled:
            return NULL_SPAN
        if parent is not None and parent.tracer is None:
            # Child of NULL_SPAN (or a foreign tracer's discard): stay null
            # rather than fabricating an orphan.
            return NULL_SPAN
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return NULL_SPAN
        span_id = self._next_id
        self._next_id += 1
        span = Span(
            tracer=self,
            span_id=span_id,
            parent_id=None if parent is None else parent.span_id,
            trace_id=span_id if parent is None else parent.trace_id,
            stage=stage,
            start=self.clock(),
            tags=tags,
        )
        self.spans.append(span)
        return span

    def to_records(self) -> List[Dict[str, Any]]:
        """All buffered spans as JSON-ready dicts, in creation order."""
        return [span.to_record() for span in self.spans]

    def clear(self) -> None:
        """Drop all buffered spans (id sequence keeps counting)."""
        self.spans.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)
