"""Wall-clock performance measurement for the dedup hot path.

Two pieces:

* :mod:`.stages` — the always-on :class:`StageCounters` the tier and
  engine bump inline (chunking / fingerprint / ref / flush);
* :mod:`.harness` — the ``repro perf`` harness: fixed-seed fio and
  backup workloads run in batched and unbatched mode, verified for
  byte-identical read-back, identical refcounts, and a clean scrub,
  and emitted as ``BENCH_perf.json`` (the artifact CI's perf-smoke job
  gates on).

``harness`` is imported lazily (``from repro.perf import harness`` or
via the CLI) because it pulls in the whole core package; importing
``repro.perf`` itself stays cheap so the tier can use the counters
without a circular import.
"""

from .stages import StageCounters

__all__ = ["StageCounters"]
