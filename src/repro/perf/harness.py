"""Wall-clock performance harness for the dedup hot path (``repro perf``).

Runs fixed-seed fio and backup workloads twice — once with the hot-path
optimisations off (no ref batching, no RefSet cache, no negative Bloom
filter: the per-op baseline) and once with them on — and measures real
host time, simulated time, and the per-stage counters
(:class:`~repro.perf.stages.StageCounters`) for each.  A third,
simulator-free ``pipeline-chunk-fingerprint`` workload isolates the
chunk → fingerprint pipeline itself: reference boundary scan + serial
hashing vs the NumPy-vectorized scan + ``FingerprintPool`` fan-out.
The ``read-sequential-deduped`` workload (and a timed read phase on
``fio-small-random``) isolates the read path: sequential chunk fetches
vs the parallel fan-out window + contiguity-aware coalescing + the
hotness-aware chunk data cache.

Every pair is also *verified*: both modes must produce byte-identical
read-back, identical chunk refcounts, and the same (clean) scrub
verdict.  A speedup that corrupts data is a bug, not a win.

The result is written as ``BENCH_perf.json``; CI's perf-smoke job runs
``repro perf --fast --baseline benchmarks/baselines/perf_baseline.json``
and fails on a >25 % calibrated ops/s regression (or a speedup below
the committed floor).  Wall-clock numbers are normalised by a machine
score (a fixed hashing loop) so baselines recorded on one machine
remain meaningful on another; the batched/unbatched *speedup* is a
same-machine ratio and needs no normalisation.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

from collections import Counter

from ..bench.harness import KiB, MiB, build_cluster, proposed
from ..chunking import GearChunker, validate_chunking
from ..chunking._vector import HAVE_NUMPY
from ..core.scrub import scrub_sync
from ..fingerprint import FingerprintPool
from ..obs import stage_rollup
from ..workloads import BackupSpec, BackupStream, ContentGenerator, FioJobSpec, FioRunner
from .stages import StageCounters

__all__ = [
    "FAST",
    "ModeResult",
    "WorkloadResult",
    "run_perf",
    "compare_to_baseline",
    "render_report",
    "write_report",
]

#: Honors the benchmark suite's fast-mode switch.
FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

#: Reference machine score the committed baseline was recorded against;
#: calibrated ops/s = ops/s * (REFERENCE_SCORE / this machine's score).
REFERENCE_SCORE = 1000.0

#: Config overrides that turn every hot-path optimisation off — the
#: pre-optimisation per-op baseline (no ref batching, no RefSet cache,
#: no negative Bloom filter, no decoded-map cache, whole-map commits,
#: and the read path stripped of all three layers: no chunk data cache,
#: no read coalescing, chunk fetches issued one at a time).
UNBATCHED = dict(
    batch_refs=False,
    refset_cache_entries=0,
    chunk_bloom_capacity=0,
    map_cache_entries=0,
    incremental_map_commits=False,
    chunk_cache_bytes=0,
    read_fanout_window=0,
    coalesce_reads=False,
)


def machine_score(repeats: int = 3) -> float:
    """Relative speed of this machine (bigger = faster).

    Best-of-N timing of a fixed pure-Python loop: the simulation's host
    cost is interpreter-bound (event dispatch, generators), so an
    interpreter-speed proxy — not a C-library hash loop — is what makes
    absolute wall-clock numbers comparable across machines.
    """
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        acc = 0
        for i in range(2_000_000):
            acc += i & 7
        best = min(best, perf_counter() - start)
    return 2.0 / best  # mega-iterations per second


@dataclass
class ModeResult:
    """One workload measured in one mode (batched or unbatched).

    Two timed windows: the whole run (foreground writes + dedup
    drains, ``wall_seconds``) and the dedup drains alone
    (``dedup_wall_seconds``).  The foreground write path is identical
    in both modes, so the end-to-end ratio dilutes the hot path this
    PR optimises; the gated metric is the dedup-phase rate.
    """

    mode: str
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    ops: int = 0
    #: Host seconds spent inside the dedup drains only.
    dedup_wall_seconds: float = 0.0
    #: Chunks the engine processed (flushed + deduped) in those drains.
    dedup_ops: int = 0
    #: Host seconds spent inside the timed read phase (0 when the
    #: workload has none) and the object reads it issued.
    read_wall_seconds: float = 0.0
    read_ops: int = 0
    stages: Dict[str, float] = field(default_factory=dict)
    #: Workload-specific extras (e.g. the re-read chunk-cache hit rate);
    #: serialised only when non-empty.
    extra: Dict[str, float] = field(default_factory=dict)
    #: Per-stage span rollup ({stage: {count, seconds, mean, max}} on the
    #: sim clock) when the run was traced; empty otherwise.
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Digest of the full read-back, refcount map, and scrub verdict —
    #: compared across modes by the verification step.
    readback_digest: str = ""
    refcounts: Dict[str, int] = field(default_factory=dict)
    scrub_clean: bool = False

    @property
    def ops_per_sec(self) -> float:
        """End-to-end wall-clock operation rate (host time)."""
        return self.ops / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def dedup_ops_per_sec(self) -> float:
        """Dedup hot-path rate: engine chunk ops per host second."""
        if not self.dedup_wall_seconds:
            return 0.0
        return self.dedup_ops / self.dedup_wall_seconds

    @property
    def read_ops_per_sec(self) -> float:
        """Read-path rate: object reads per host second in the read phase."""
        if not self.read_wall_seconds:
            return 0.0
        return self.read_ops / self.read_wall_seconds

    def to_dict(self) -> dict:
        out = {
            "mode": self.mode,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "ops": self.ops,
            "ops_per_sec": self.ops_per_sec,
            "dedup_wall_seconds": self.dedup_wall_seconds,
            "dedup_ops": self.dedup_ops,
            "dedup_ops_per_sec": self.dedup_ops_per_sec,
            "read_wall_seconds": self.read_wall_seconds,
            "read_ops": self.read_ops,
            "read_ops_per_sec": self.read_ops_per_sec,
            "scrub_clean": self.scrub_clean,
            "readback_digest": self.readback_digest,
            "stages": self.stages,
        }
        # Only attach the keys that carry data: an untraced run has no
        # span rollup, and ``"spans": {}`` in BENCH_perf.json used to
        # read as "traced but recorded nothing".
        if self.spans:
            out["spans"] = self.spans
        if self.extra:
            out["extra"] = self.extra
        return out


@dataclass
class WorkloadResult:
    """Batched-vs-unbatched measurement of one workload."""

    name: str
    unbatched: ModeResult
    batched: ModeResult

    @property
    def speedup(self) -> float:
        """Batched over unbatched dedup-phase ops/s (same machine)."""
        if self.unbatched.dedup_ops_per_sec == 0:
            return 0.0
        return self.batched.dedup_ops_per_sec / self.unbatched.dedup_ops_per_sec

    @property
    def end_to_end_speedup(self) -> float:
        """Batched over unbatched whole-run ops/s (incl. foreground)."""
        if self.unbatched.ops_per_sec == 0:
            return 0.0
        return self.batched.ops_per_sec / self.unbatched.ops_per_sec

    @property
    def read_speedup(self) -> Optional[float]:
        """Batched over unbatched read-phase ops/s; None when the
        workload has no timed read phase."""
        if not self.unbatched.read_wall_seconds or not self.batched.read_wall_seconds:
            return None
        if self.unbatched.read_ops_per_sec == 0:
            return None
        return self.batched.read_ops_per_sec / self.unbatched.read_ops_per_sec

    @property
    def verified(self) -> bool:
        """Byte-identical read-back, identical refcounts, both scrubs clean."""
        return (
            self.batched.readback_digest == self.unbatched.readback_digest
            and self.batched.refcounts == self.unbatched.refcounts
            and self.batched.scrub_clean
            and self.unbatched.scrub_clean
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "unbatched": self.unbatched.to_dict(),
            "batched": self.batched.to_dict(),
            "speedup": self.speedup,
            "end_to_end_speedup": self.end_to_end_speedup,
            "read_speedup": self.read_speedup,
            "verify": {
                "readback_identical": self.batched.readback_digest
                == self.unbatched.readback_digest,
                "refcounts_identical": self.batched.refcounts
                == self.unbatched.refcounts,
                "scrub_clean_both": self.batched.scrub_clean
                and self.unbatched.scrub_clean,
            },
        }


def _collect(storage, mode: str, wall: float, sim0: float, ops: int,
             dedup_wall: float, readback: bytes,
             read_wall: float = 0.0, read_ops: int = 0,
             extra: Optional[Dict[str, float]] = None) -> ModeResult:
    tier = storage.tier
    stats = storage.engine.stats
    result = ModeResult(
        mode=mode,
        wall_seconds=wall,
        sim_seconds=storage.sim.now - sim0,
        ops=ops,
        dedup_wall_seconds=dedup_wall,
        dedup_ops=stats.chunks_flushed + stats.chunks_deduped,
        read_wall_seconds=read_wall,
        read_ops=read_ops,
        stages=tier.stage.snapshot(),
        extra=dict(extra or {}),
        readback_digest=hashlib.sha1(readback).hexdigest(),
    )
    if tier.tracer.enabled:
        result.spans = stage_rollup(tier.tracer.to_records())
    # Verification is outside the timed window on purpose.
    result.refcounts = {
        cid: tier.chunk_refcount(cid)
        for cid in storage.cluster.list_objects(tier.chunk_pool)
    }
    result.scrub_clean = scrub_sync(tier).clean
    return result


def _run_fio_mode(
    mode: str, overrides: dict, seed: int, fast: bool, trace: bool = False
) -> ModeResult:
    """Small-random fio: chunk-aligned random writes, heavy dedup, two
    write+drain cycles (the second hits existing chunks, exercising the
    ref-append path the batching collapses), then a timed random-read
    phase over the deduplicated objects (exercising the read fan-out,
    coalescing, and the chunk data cache on the second pass)."""
    if trace:
        overrides = dict(overrides, trace_ops=True)
    spec = FioJobSpec(
        pattern="randwrite",
        block_size=32 * KiB,
        object_size=512 * KiB,
        file_size=(2 if fast else 4) * MiB,
        numjobs=2,
        iodepth=4,
        dedupe_percentage=90.0,
        seed=seed,
    )
    # Wide objects (16 chunks) over few placement groups: a pass's
    # chunks genuinely share PGs, so the batch merges into fewer
    # prepared transactions.  With the default 64 PGs, 8 chunks almost
    # never collide and a batch degenerates to per-PG singletons.
    # ``cache_on_flush=False`` keeps flushed chunk payloads out of the
    # foreground object cache so the read phase actually exercises the
    # chunk-pool read path rather than the metadata tier's local cache.
    storage = proposed(
        build_cluster(pg_num=4), start_engine=False,
        **dict(overrides, cache_on_flush=False),
    )
    runner = FioRunner(storage, spec)
    sim0 = storage.sim.now
    started = perf_counter()
    total_ops = 0
    dedup_wall = 0.0
    for _cycle in range(2):
        fio = runner.run()
        total_ops += fio.total_ops
        drain_started = perf_counter()
        storage.drain()
        dedup_wall += perf_counter() - drain_started
    total_ops += (
        storage.engine.stats.chunks_flushed + storage.engine.stats.chunks_deduped
    )
    # Timed read phase: two full sweeps over every fio object.  The
    # first is cold (fan-out + coalescing against the chunk pool); the
    # second re-reads the same chunks, so with the data cache enabled
    # most fetches never reach the pool.
    names = [
        f"fio.j{job}.o{obj}"
        for job in range(spec.numjobs)
        for obj in range(spec.file_size // spec.object_size)
    ]
    read_ops = 0
    pieces: List[bytes] = []
    read_started = perf_counter()
    for _pass in range(2):
        pieces = [storage.read_sync(name) for name in names]
        read_ops += len(names)
    read_wall = perf_counter() - read_started
    total_ops += read_ops
    wall = perf_counter() - started
    readback = b"".join(pieces)
    return _collect(
        storage, mode, wall, sim0, total_ops, dedup_wall, readback,
        read_wall=read_wall, read_ops=read_ops,
    )


def _run_backup_mode(
    mode: str, overrides: dict, seed: int, fast: bool, trace: bool = False
) -> ModeResult:
    """Incremental backup: each generation is mostly duplicate blocks of
    the previous one, drained between generations."""
    if trace:
        overrides = dict(overrides, trace_ops=True)
    spec = BackupSpec(
        dataset_size=(1 if fast else 2) * MiB,
        block_size=512 * KiB,  # 16 chunks per backup object
        mutation_rate=0.1,
        generations=2 if fast else 3,
        seed=seed,
    )
    storage = proposed(build_cluster(pg_num=4), start_engine=False, **overrides)
    stream = BackupStream(spec)
    sim0 = storage.sim.now
    started = perf_counter()
    dedup_wall = 0.0
    for gen in range(spec.generations):
        stream.write_generation(storage, gen)
        drain_started = perf_counter()
        storage.drain()
        dedup_wall += perf_counter() - drain_started
    ops = spec.blocks * spec.generations + (
        storage.engine.stats.chunks_flushed + storage.engine.stats.chunks_deduped
    )
    wall = perf_counter() - started
    readback = b"".join(
        stream.restore_generation(storage, gen) for gen in range(spec.generations)
    )
    return _collect(storage, mode, wall, sim0, ops, dedup_wall, readback)


def _run_pipeline_mode(
    mode: str, overrides: dict, seed: int, fast: bool, trace: bool = False
) -> ModeResult:
    """Chunk → fingerprint pipeline in isolation (no simulator, so
    ``trace`` is accepted but has nothing to record).

    Measures the two stages this PR vectorizes/parallelises on a seeded
    content stream: ``unbatched`` is the pre-optimisation path (pure-
    Python reference boundary scan, serial inline hashing) and
    ``batched`` is the optimised one (NumPy-vectorized scan when
    available, digest fan-out over the configured ``fingerprint_workers``).
    Verification doubles as an end-to-end equivalence check: both modes
    must produce identical (offset, length, digest) streams, which is
    exactly the byte-identical-boundaries invariant.
    """
    total = (4 if fast else 16) * MiB
    gen = ContentGenerator(seed=seed, dedupe_ratio=0.5)
    data = b"".join(gen.block(64 * KiB) for _ in range(total // (64 * KiB)))
    optimised = mode == "batched"
    chunker = GearChunker(
        avg_size=8 * KiB, vectorized=(HAVE_NUMPY if optimised else False)
    )
    workers = overrides.get("fingerprint_workers") if optimised else 1
    pool = FingerprintPool(workers=workers)
    started = perf_counter()
    spans = chunker.chunk(data)
    handles = pool.submit_many(span.as_bytes() for span in spans)
    digests = [handle.result() for handle in handles]
    wall = perf_counter() - started
    pool.shutdown()
    validate_chunking(data, spans)
    readback = hashlib.sha1()
    for span, digest in zip(spans, digests):
        readback.update(f"{span.offset}:{span.length}:{digest};".encode())
    stage = StageCounters(
        chunking_ops=len(spans),
        chunking_bytes=total,
        fingerprint_ops=len(spans),
        fingerprint_bytes=total,
        fingerprint_seconds=pool.stats.busy_seconds,
        fingerprint_workers=pool.workers,
        fingerprint_pool_tasks=pool.stats.tasks,
        fingerprint_pool_spans=pool.stats.spans,
        fingerprint_pool_busy_seconds=pool.stats.busy_seconds,
        fingerprint_pool_wall_seconds=pool.stats.wall_seconds,
    )
    return ModeResult(
        mode=mode,
        wall_seconds=wall,
        sim_seconds=0.0,
        ops=len(spans),
        dedup_wall_seconds=wall,
        dedup_ops=len(spans),
        stages=stage.snapshot(),
        readback_digest=readback.hexdigest(),
        refcounts=dict(Counter(digests)),
        scrub_clean=True,  # validate_chunking() above did not raise
    )


def _run_metadata_mode(
    mode: str, overrides: dict, seed: int, fast: bool, trace: bool = False
) -> ModeResult:
    """Small I/O against wide chunk maps: the per-op metadata tax.

    8 KiB chunks over 512 KiB objects give 64-entry maps; after an
    initial full write + drain, every cycle issues one sub-chunk write
    and one small read per object and drains the single dirty chunk.
    Pre-optimisation, each of those ops decodes the whole map and each
    commit re-serialises all 64 entries; with the versioned map cache
    and incremental commits, the decode is a cache hit and the commit
    serialises one entry."""
    if trace:
        overrides = dict(overrides, trace_ops=True)
    chunk = 8 * KiB
    object_size = 512 * KiB
    nchunks = object_size // chunk
    objects = 2 if fast else 4
    cycles = 6 if fast else 12
    storage = proposed(
        build_cluster(pg_num=4), start_engine=False,
        **dict(overrides, chunk_size=chunk),
    )
    gen = ContentGenerator(seed=seed, dedupe_ratio=0.5)
    payloads = [gen.block(object_size) for _ in range(objects)]
    sim0 = storage.sim.now
    started = perf_counter()
    ops = 0
    dedup_wall = 0.0
    for obj in range(objects):
        storage.write_sync(f"meta.o{obj}", payloads[obj])
        ops += 1
    drain_started = perf_counter()
    storage.drain()
    dedup_wall += perf_counter() - drain_started
    patch = bytes(64)
    for cycle in range(cycles):
        for obj in range(objects):
            # Deterministic stride over the chunk indices: every cycle
            # dirties exactly one of the 64 entries.
            idx = (cycle * 7 + obj * 3) % nchunks
            storage.write_sync(f"meta.o{obj}", patch, offset=idx * chunk + 17)
            data = storage.read_sync(f"meta.o{obj}", offset=idx * chunk, length=chunk)
            assert len(data) == chunk
            ops += 2
        drain_started = perf_counter()
        storage.drain()
        dedup_wall += perf_counter() - drain_started
    ops += (
        storage.engine.stats.chunks_flushed + storage.engine.stats.chunks_deduped
    )
    wall = perf_counter() - started
    readback = b"".join(
        storage.read_sync(f"meta.o{obj}") for obj in range(objects)
    )
    return _collect(storage, mode, wall, sim0, ops, dedup_wall, readback)


def _run_read_mode(
    mode: str, overrides: dict, seed: int, fast: bool, trace: bool = False
) -> ModeResult:
    """Sequential re-reads of a deduplicated dataset: the read path in
    isolation.

    Writes a 50 %-duplicate dataset of wide (16-chunk) objects, drains
    it once, then runs four timed sequential read sweeps: a cold pass
    (every chunk fetch reaches the pool; first sightings land on the
    cache's ghost list), a warm-up pass (second sightings get admitted),
    and two measured re-read passes whose chunk-cache hit rate is
    captured into ``extra["reread_chunk_cache_hit_rate"]``.
    ``cache_on_flush=False`` and ``selective_dedup=False`` force every
    read through the chunk pool so the fan-out window, coalescing, and
    the data cache are the only things between the client and the OSDs.
    """
    if trace:
        overrides = dict(overrides, trace_ops=True)
    object_size = 512 * KiB
    objects = 4 if fast else 8
    storage = proposed(
        build_cluster(pg_num=4), start_engine=False,
        **dict(overrides, cache_on_flush=False, selective_dedup=False),
    )
    gen = ContentGenerator(seed=seed, dedupe_ratio=0.5)
    payloads = [gen.block(object_size) for _ in range(objects)]
    sim0 = storage.sim.now
    started = perf_counter()
    ops = 0
    for obj in range(objects):
        storage.write_sync(f"read.o{obj}", payloads[obj])
        ops += 1
    drain_started = perf_counter()
    storage.drain()
    dedup_wall = perf_counter() - drain_started
    tier = storage.tier
    read_ops = 0
    read_started = perf_counter()
    for _pass in range(2):  # cold + warm-up
        for obj in range(objects):
            storage.read_sync(f"read.o{obj}")
            read_ops += 1
    stage_before = tier.stage.copy()
    pieces: List[bytes] = []
    for _pass in range(2):  # measured re-reads
        pieces = [storage.read_sync(f"read.o{obj}") for obj in range(objects)]
        read_ops += objects
    read_wall = perf_counter() - read_started
    reread = tier.stage.diff(stage_before)
    hits = reread.get("chunk_cache_hits", 0)
    misses = reread.get("chunk_cache_misses", 0)
    extra: Dict[str, float] = {}
    if hits + misses:
        extra["reread_chunk_cache_hit_rate"] = hits / (hits + misses)
    ops += read_ops + (
        storage.engine.stats.chunks_flushed + storage.engine.stats.chunks_deduped
    )
    wall = perf_counter() - started
    readback = b"".join(pieces)
    return _collect(
        storage, mode, wall, sim0, ops, dedup_wall, readback,
        read_wall=read_wall, read_ops=read_ops, extra=extra,
    )


WORKLOADS = {
    "fio-small-random": _run_fio_mode,
    "backup-incremental": _run_backup_mode,
    "metadata-small-io": _run_metadata_mode,
    "read-sequential-deduped": _run_read_mode,
    "pipeline-chunk-fingerprint": _run_pipeline_mode,
}


def run_perf(
    fast: Optional[bool] = None,
    seed: int = 0,
    repeats: int = 5,
    workers: Optional[int] = None,
    trace: bool = False,
) -> dict:
    """Run every workload in both modes; returns the report dict.

    Each (workload, mode) pair is measured ``repeats`` times with the
    modes interleaved (u, b, u, b, ...) and the fastest wall time kept:
    the simulation is deterministic, so every repeat does identical
    work, and scheduler jitter or allocator state only ever slow a run
    down — the minimum is the least-noise estimate of the host cost,
    and interleaving keeps slow drift from biasing one mode.

    ``workers`` sizes the engine's fingerprint pool (default
    ``os.cpu_count()``).  It applies to *both* modes of the simulated
    workloads — hashing parallelism is orthogonal to the optimisations
    those pairs isolate, and keeping it symmetric keeps their speedup
    ratio comparable across machines with different core counts.  The
    ``pipeline-chunk-fingerprint`` workload is the one that contrasts
    it: serial reference scan vs vectorized scan + ``workers`` threads.

    ``trace`` runs the simulated workloads with op tracing enabled
    (``DedupConfig.trace_ops``), attaching a per-stage span rollup to
    each ``ModeResult`` — this is the leg the obs-overhead CI gate
    measures against the untraced baseline.
    """
    fast = FAST if fast is None else fast
    resolved_workers = workers if workers is not None else (os.cpu_count() or 1)
    score = machine_score()
    workloads: List[WorkloadResult] = []
    for name, runner in WORKLOADS.items():
        unbatched: Optional[ModeResult] = None
        batched: Optional[ModeResult] = None
        for _ in range(repeats):
            u = runner(
                "unbatched",
                dict(UNBATCHED, fingerprint_workers=resolved_workers),
                seed,
                fast,
                trace,
            )
            if unbatched is None or u.dedup_wall_seconds < unbatched.dedup_wall_seconds:
                unbatched = u
            b = runner(
                "batched", dict(fingerprint_workers=resolved_workers), seed, fast, trace
            )
            if batched is None or b.dedup_wall_seconds < batched.dedup_wall_seconds:
                batched = b
        workloads.append(WorkloadResult(name, unbatched, batched))
    calibration = REFERENCE_SCORE / score
    by_name = {w.name: w for w in workloads}
    meta = by_name.get("metadata-small-io")
    map_cache_hit_rate = None
    if meta is not None:
        hits = meta.batched.stages.get("map_cache_hits", 0)
        misses = meta.batched.stages.get("map_cache_misses", 0)
        if hits + misses:
            map_cache_hit_rate = hits / (hits + misses)
    read_wl = by_name.get("read-sequential-deduped")
    chunk_cache_hit_rate = None
    if read_wl is not None:
        chunk_cache_hit_rate = read_wl.batched.extra.get(
            "reread_chunk_cache_hit_rate"
        )
    read_speedups = [
        w.read_speedup for w in workloads if w.read_speedup is not None
    ]
    report = {
        "schema": 1,
        "fast": fast,
        "seed": seed,
        "trace": trace,
        "workers": resolved_workers,
        "machine_score": score,
        "workloads": {w.name: w.to_dict() for w in workloads},
        "summary": {
            "min_speedup": min(w.speedup for w in workloads),
            #: Smallest read-phase speedup across the workloads that
            #: have a timed read phase (None when none do).
            "min_read_speedup": min(read_speedups) if read_speedups else None,
            "all_verified": all(w.verified for w in workloads),
            #: Decoded-map cache hit rate on the metadata-small-io
            #: workload's optimised mode (None when not measurable).
            "map_cache_hit_rate": map_cache_hit_rate,
            #: Chunk data cache hit rate over the read workload's
            #: measured re-read passes (None when not measurable).
            "chunk_cache_hit_rate": chunk_cache_hit_rate,
            # Dedup-phase ops/s normalised to the reference machine, per
            # workload (what the CI baseline compares against).
            "calibrated_ops_per_sec": {
                w.name: w.batched.dedup_ops_per_sec * calibration
                for w in workloads
            },
        },
    }
    return report


def compare_to_baseline(
    report: dict, baseline: dict, max_regression: float = 0.25
) -> List[str]:
    """Gate a report against a committed baseline; returns failures.

    Fails on a calibrated ops/s regression beyond ``max_regression``
    on any workload the baseline covers, on a speedup below the
    baseline's ``min_speedup_floor``, or on failed verification.
    An empty list means the gate passes.
    """
    failures: List[str] = []
    if not report["summary"]["all_verified"]:
        failures.append("verification failed: modes disagree or scrub unclean")
    floor = baseline.get("min_speedup_floor")
    if floor is not None and report["summary"]["min_speedup"] < floor:
        failures.append(
            f"speedup {report['summary']['min_speedup']:.2f}x below "
            f"required floor {floor:.2f}x"
        )
    read_floor = baseline.get("min_read_speedup_floor")
    if read_floor is not None:
        min_read = report["summary"].get("min_read_speedup")
        if min_read is None or min_read < read_floor:
            shown = "n/a" if min_read is None else f"{min_read:.2f}x"
            failures.append(
                f"read speedup {shown} below required floor {read_floor:.2f}x"
            )
    if "read-sequential-deduped" in report.get("workloads", {}):
        cache_rate = report["summary"].get("chunk_cache_hit_rate")
        if cache_rate is None or cache_rate <= 0.6:
            shown = "n/a" if cache_rate is None else f"{cache_rate:.1%}"
            failures.append(
                f"read-sequential-deduped: chunk cache re-read hit rate "
                f"{shown} not above required 60%"
            )
    meta = report.get("workloads", {}).get("metadata-small-io")
    if meta is not None:
        hit_rate = report["summary"].get("map_cache_hit_rate")
        if hit_rate is None or hit_rate <= 0.8:
            shown = "n/a" if hit_rate is None else f"{hit_rate:.1%}"
            failures.append(
                f"metadata-small-io: map cache hit rate {shown} "
                f"not above required 80%"
            )
        # The incremental writer must beat whole-map rewrites on actual
        # serialised metadata bytes, not just wall time.
        batched_bytes = meta["batched"]["stages"].get("map_bytes_serialized", 0)
        whole_bytes = meta["unbatched"]["stages"].get("map_bytes_serialized", 0)
        if batched_bytes >= whole_bytes:
            failures.append(
                f"metadata-small-io: incremental commits serialized "
                f"{batched_bytes} map bytes, not below whole-map "
                f"baseline {whole_bytes}"
            )
    base_rates = baseline.get("calibrated_ops_per_sec", {})
    for name, base_rate in base_rates.items():
        rate = report["summary"]["calibrated_ops_per_sec"].get(name)
        if rate is None:
            failures.append(f"workload {name!r} missing from report")
            continue
        if rate < base_rate * (1.0 - max_regression):
            failures.append(
                f"{name}: calibrated ops/s {rate:.0f} regressed more than "
                f"{max_regression:.0%} below baseline {base_rate:.0f}"
            )
    return failures


def render_report(report: dict) -> List[str]:
    """Human-readable summary lines for the CLI."""
    lines = [
        f"perf harness (fast={report['fast']}, seed={report['seed']}, "
        f"workers={report.get('workers', 1)}, "
        f"machine score {report['machine_score']:.0f})"
    ]
    for name, w in report["workloads"].items():
        u, b = w["unbatched"], w["batched"]
        lines.append(
            f"  {name}: dedup {u['dedup_ops_per_sec']:.0f} -> "
            f"{b['dedup_ops_per_sec']:.0f} ops/s wall ({w['speedup']:.2f}x), "
            f"end-to-end {u['ops_per_sec']:.0f} -> {b['ops_per_sec']:.0f} "
            f"({w['end_to_end_speedup']:.2f}x), sim {u['sim_seconds']:.3f}s -> "
            f"{b['sim_seconds']:.3f}s"
        )
        st_u, st_b = u["stages"], b["stages"]
        lines.append(
            f"    ref commits {st_u['ref_commits']} -> {st_b['ref_commits']} "
            f"(batches {st_b['ref_batches']}), cache hits {st_b['refset_cache_hits']}, "
            f"bloom negatives {st_b['bloom_negative_hits']}"
        )
        if b.get("read_wall_seconds") or u.get("read_wall_seconds"):
            read_speedup = w.get("read_speedup")
            shown = f"{read_speedup:.2f}x" if read_speedup else "n/a"
            cache_lookups = st_b.get("chunk_cache_hits", 0) + st_b.get(
                "chunk_cache_misses", 0
            )
            lines.append(
                f"    read: {u.get('read_ops_per_sec', 0):.0f} -> "
                f"{b.get('read_ops_per_sec', 0):.0f} ops/s ({shown}), "
                f"cache {st_b.get('chunk_cache_hits', 0)}/{cache_lookups} hits, "
                f"{st_b.get('fanout_chunk_reads', 0)} chunk fetches in "
                f"{st_b.get('fanout_batches', 0)} coalesced round trips"
            )
        map_loads = st_b.get("map_cache_hits", 0) + st_b.get("map_cache_misses", 0)
        if map_loads:
            lines.append(
                f"    map cache: {st_b['map_cache_hits']}/{map_loads} hits "
                f"({st_b['map_cache_hits'] / map_loads:.0%}), "
                f"entries serialized {st_b.get('map_entries_serialized', 0)}"
                f"/{st_b.get('map_entries_total', 0)} "
                f"({st_b.get('map_bytes_serialized', 0)} B vs "
                f"{st_u.get('map_bytes_serialized', 0)} B whole-map)"
            )
        pool_tasks = st_b.get("fingerprint_pool_tasks", 0)
        if pool_tasks:
            busy = st_b.get("fingerprint_pool_busy_seconds", 0.0)
            pool_wall = st_b.get("fingerprint_pool_wall_seconds", 0.0)
            parallelism = busy / pool_wall if pool_wall else 0.0
            lines.append(
                f"    fingerprint pool: {st_b.get('fingerprint_workers', 1)} workers, "
                f"{pool_tasks} digests, parallelism {parallelism:.2f}x"
            )
        v = w["verify"]
        lines.append(
            f"    verify: readback={'ok' if v['readback_identical'] else 'MISMATCH'} "
            f"refcounts={'ok' if v['refcounts_identical'] else 'MISMATCH'} "
            f"scrub={'clean' if v['scrub_clean_both'] else 'UNCLEAN'}"
        )
    summary = report["summary"]
    tail = (
        f"  min speedup {summary['min_speedup']:.2f}x, "
        f"verified={summary['all_verified']}"
    )
    if summary.get("min_read_speedup") is not None:
        tail += f", min read speedup {summary['min_read_speedup']:.2f}x"
    if summary.get("chunk_cache_hit_rate") is not None:
        tail += f", chunk cache {summary['chunk_cache_hit_rate']:.0%} re-read hits"
    lines.append(tail)
    return lines


def write_report(report: dict, path: str) -> None:
    """Write the report as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
