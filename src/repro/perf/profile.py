"""cProfile → JSON artifact for ``repro perf --profile``.

The perf harness answers "how fast"; this answers "where the time
went".  The artifact is a machine-readable top-N by cumulative time so
CI can archive it next to ``BENCH_perf.json`` and a regression hunt
starts from the uploaded profile instead of a local re-run.  The
profiled pass is separate from (and after) the gated measurement run —
cProfile's per-call overhead is far from uniform, so wrapping the
measured run would skew both the wall clocks and the machine-score
calibration against an unprofiled baseline.
"""

from __future__ import annotations

import json
import pstats
from typing import List

__all__ = ["profile_to_dict", "write_profile"]


def profile_to_dict(profiler, top: int = 40) -> dict:
    """Summarise a (stopped) ``cProfile.Profile`` as a JSON-ready dict.

    Keeps the ``top`` functions by cumulative time, each with its call
    counts and per-function totals — the same columns
    ``pstats.sort_stats("cumulative")`` prints, minus the callers.
    """
    stats = pstats.Stats(profiler)
    total_calls = stats.total_calls  # type: ignore[attr-defined]
    total_tt = stats.total_tt  # type: ignore[attr-defined]
    rows: List[dict] = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, lineno, name = func
        rows.append(
            {
                "function": name,
                "file": filename,
                "line": lineno,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": tt,
                "cumtime": ct,
            }
        )
    rows.sort(key=lambda r: r["cumtime"], reverse=True)
    return {
        "schema": 1,
        "sort": "cumulative",
        "total_calls": total_calls,
        "total_tottime": total_tt,
        "top": rows[:top],
    }


def write_profile(profile: dict, path: str) -> None:
    """Write the profile summary as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(profile, fh, indent=2)
        fh.write("\n")
