"""Per-stage counters for the dedup hot path.

The tier and engine keep one :class:`StageCounters` per
:class:`~repro.core.tier.DedupTier` and bump it inline as work flows
through the four hot-path stages the perf harness reports on:

* **chunking** — dirty-chunk assembly (cache reads + merge) in the
  engine;
* **fingerprint** — content hashing (count, bytes, and the wall-clock
  seconds spent inside the hash call itself);
* **ref** — chunk-pool reference traffic: logical ref/deref operations,
  the round trips (prepared commits) they cost, how many were collapsed
  into batches, and how often the RefSet LRU / negative Bloom filter
  short-circuited a lookup;
* **flush** — chunk payloads newly stored in the chunk pool.

Counters are plain ints/floats — cheap enough to stay always-on — and
live here (not in ``repro.core``) so the perf harness can snapshot and
diff them without reaching into engine internals.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["StageCounters"]


@dataclass
class StageCounters:
    """Always-on counters for the dedup hot path, by stage."""

    # -- chunking: dirty chunk assembly ---------------------------------
    chunking_ops: int = 0
    chunking_bytes: int = 0

    # -- fingerprint ----------------------------------------------------
    fingerprint_ops: int = 0
    fingerprint_bytes: int = 0
    #: Wall-clock seconds inside the hash call (synchronous, so this is
    #: real host time, not simulated time).
    fingerprint_seconds: float = 0.0
    #: Digest-pool parallelism (see ``repro.fingerprint.FingerprintPool``):
    #: configured worker threads, digests fanned out, busy spans, and the
    #: busy/wall second pair whose ratio estimates achieved parallelism.
    fingerprint_workers: int = 0
    fingerprint_pool_tasks: int = 0
    fingerprint_pool_spans: int = 0
    fingerprint_pool_busy_seconds: float = 0.0
    fingerprint_pool_wall_seconds: float = 0.0

    # -- ref: chunk-pool reference traffic ------------------------------
    #: Logical reference mutations (each ref or deref counts once).
    ref_ops: int = 0
    #: Prepared commits those mutations cost (round trips).  Unbatched,
    #: this tracks ``ref_ops``; batched, it collapses toward one per
    #: placement group per pass.
    ref_commits: int = 0
    #: Batched commits (each covers >= 1 ref_ops).
    ref_batches: int = 0
    #: RefSet lookups served from the LRU without deserializing.
    refset_cache_hits: int = 0
    refset_cache_misses: int = 0
    #: Existence probes answered "definitely not stored" by the Bloom
    #: filter (the chunk-pool lookup was skipped entirely).
    bloom_negative_hits: int = 0

    # -- map: chunk-map codec traffic -----------------------------------
    #: ``load_chunk_map`` calls served from the versioned decoded-map
    #: LRU (no disk read, no deserialize).
    map_cache_hits: int = 0
    map_cache_misses: int = 0
    #: Cache entries dropped by explicit invalidation (faulted commits,
    #: GC, recovery, rebalance, deletes) — LRU evictions not included.
    map_cache_invalidations: int = 0
    #: Chunk-map entries actually serialised by commits vs. the entries
    #: the committed maps held in total.  Incremental (v2) commits keep
    #: the first well below the second on small-I/O workloads; whole-map
    #: rewrites pin them equal.
    map_entries_serialized: int = 0
    map_entries_total: int = 0
    #: Bytes of map metadata written by commits (headers + entries).
    map_bytes_serialized: int = 0
    #: Map commits by writer format.
    map_commits_incremental: int = 0
    map_commits_full: int = 0

    # -- read path: fan-out, coalescing, chunk data cache ---------------
    #: Chunk-pool reads served entirely from the chunk data cache
    #: (content-addressed payload LRU; no simulated I/O at all), and the
    #: lookups that fell through to the pool.  Counted only when the
    #: cache is enabled, and folded in once per *completed* read attempt
    #: so retries never double-count.
    chunk_cache_hits: int = 0
    chunk_cache_misses: int = 0
    #: Payloads admitted past the two-hit filter / entries dropped (LRU
    #: pressure, GC reclaim, repair fences).
    chunk_cache_admissions: int = 0
    chunk_cache_evictions: int = 0
    #: Chunk-object fetches the read path issued to the pool (after the
    #: data cache, with same-chunk pieces merged).
    fanout_chunk_reads: int = 0
    #: Coalesced ``read_batch`` round trips, and the chunk fetches they
    #: carried (fanout_batched_chunks / fanout_batches = merge factor).
    fanout_batches: int = 0
    fanout_batched_chunks: int = 0

    # -- read path anomalies --------------------------------------------
    #: Chunk segments that came back short from the substrate and were
    #: zero-padded to the expected length (see ``io_path._read_once``).
    read_short_segments: int = 0

    # -- flush: new chunk payloads --------------------------------------
    flush_ops: int = 0
    flush_bytes: int = 0

    def snapshot(self) -> dict:
        """A plain-dict copy (JSON-ready)."""
        return asdict(self)

    def diff(self, since: "StageCounters") -> dict:
        """Counter deltas relative to an earlier snapshot."""
        now, then = asdict(self), asdict(since)
        return {k: now[k] - then[k] for k in now}

    def copy(self) -> "StageCounters":
        """An independent snapshot object."""
        return StageCounters(**asdict(self))
