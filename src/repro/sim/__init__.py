"""Discrete-event simulation kernel (clock, processes, resources, RNG)."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Resource, Store, TokenBucket
from .rng import RngRegistry, derive_seed

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "Resource",
    "Store",
    "TokenBucket",
    "RngRegistry",
    "derive_seed",
]
