"""Discrete-event simulation kernel.

The cluster substrate and the deduplication tier are exercised on a
simulated clock rather than wall time: every disk access, network
message, and CPU-bound operation (hashing, erasure coding) advances the
clock by the amount of time the modelled device would take.  This module
provides the minimal machinery for that style of simulation:

* :class:`Simulator` — the event loop and clock.
* :class:`Event` — a one-shot occurrence processes can wait on.
* :class:`Process` — a generator-driven activity; ``yield``-ing an event
  suspends the process until the event fires.
* :class:`Timeout`, :class:`AllOf`, :class:`AnyOf` — composite events.

The design deliberately mirrors a small subset of SimPy (which is not
available offline); it is implemented from scratch and only contains the
features this project needs.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Iterator, List, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (for instance, an OSD failure notice).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence with a value (or an exception).

    Processes wait on events by ``yield``-ing them.  An event fires when
    :meth:`succeed` or :meth:`fail` is called; all subscribed callbacks
    run at the simulated time of the trigger.
    """

    __slots__ = (
        "sim", "callbacks", "_value", "_exc", "triggered", "processed",
        "cancelled",
    )

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        #: True once succeed()/fail() has been called.
        self.triggered = False
        #: True once callbacks have run.
        self.processed = False
        #: True when the waiter that created this event abandoned it (an
        #: interrupted process detaching from a queued wait).  Producers
        #: holding the event in a wait queue — :class:`~repro.sim.Resource`
        #: slot grants, :class:`~repro.sim.Store` getters/putters,
        #: :class:`~repro.sim.TokenBucket` grants — must skip cancelled
        #: events instead of succeeding them, otherwise the granted slot,
        #: item, or token budget is handed to a process that will never
        #: consume it (a silent leak; for a capacity-1 lock, a deadlock).
        self.cancelled = False

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (no exception)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value. Only meaningful once triggered and ``ok``."""
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or ``None``."""
        return self._exc

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self.triggered = True
        self._value = value
        self.sim._enqueue(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception ``exc``.

        Any process waiting on the event will have ``exc`` thrown into it.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._exc = exc
        self.sim._enqueue(self)
        return self

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been processed the callback is scheduled
        to run immediately (at the current simulated time).
        """
        if self.callbacks is None:
            self.sim.call_soon(callback, self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self.processed = True
        for callback in callbacks or ():
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self.triggered = True
        self._value = value
        sim._enqueue(self, delay)


class Process(Event):
    """A generator-driven activity.

    The generator may ``yield`` any :class:`Event`; the process resumes
    with the event's value (or has the event's exception thrown into it).
    A process is itself an event that fires with the generator's return
    value, so processes can wait on each other.
    """

    __slots__ = ("gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any]) -> None:
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError(f"process() requires a generator, got {gen!r}")
        self.gen = gen
        self._waiting_on: Optional[Event] = None
        # Kick off at the current time.
        bootstrap = Event(sim)
        bootstrap.succeed(None)
        bootstrap.subscribe(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op.
        """
        if not self.is_alive:
            return
        self.sim.call_soon(self._do_interrupt, Interrupt(cause))

    def _do_interrupt(self, exc: Interrupt) -> None:
        if not self.is_alive:
            return
        # Detach from whatever we were waiting on; the stale event callback
        # checks `_waiting_on` identity before resuming.  Mark the
        # abandoned event cancelled so queue-holding producers (Resource,
        # Store, TokenBucket) drop it instead of granting to a waiter
        # that is no longer listening.
        stale = self._waiting_on
        if stale is not None and not stale.triggered:
            stale.cancelled = True
        self._waiting_on = None
        self._step(exc=exc)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            return  # stale wake-up from a pre-interrupt subscription
        self._waiting_on = None
        if event.ok:
            self._step(value=event._value)
        else:
            self._step(exc=event.exception)

    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        # Track the running process on the simulator while the generator
        # executes: synchronous callees (resource acquire/release, the
        # lock sanitizer) can attribute their effects to this task.
        previous = self.sim._current_task
        self.sim._current_task = self
        try:
            while True:
                try:
                    if exc is None:
                        target = self.gen.send(value)
                    else:
                        target = self.gen.throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as error:
                    self.fail(error)
                    return
                if not isinstance(target, Event):
                    value, exc = None, SimulationError(
                        f"process yielded non-event {target!r}"
                    )
                    continue
                if target.sim is not self.sim:
                    value, exc = None, SimulationError(
                        "event belongs to another simulator"
                    )
                    continue
                self._waiting_on = target
                target.subscribe(self._resume)
                return
        finally:
            self.sim._current_task = previous


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events: List[Event] = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.subscribe(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* child events have fired.

    Succeeds with the list of child values (in construction order).
    Fails with the first child exception observed.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child._value for child in self.events])


class AnyOf(_Condition):
    """Fires when *any* child event fires; value is ``(event, value)``."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)
            return
        self.succeed((event, event._value))


class Simulator:
    """The event loop: a clock plus a priority queue of pending events.

    All times are floats in **seconds** of simulated time.
    """

    def __init__(self) -> None:
        #: Current simulated time, in seconds.
        self.now: float = 0.0
        self._queue: List[Any] = []
        self._seq: Iterator[int] = itertools.count()
        self._processed_events = 0
        #: The process whose generator is currently executing (set by
        #: :meth:`Process._step`); ``None`` between process steps.
        self._current_task: Optional[Process] = None
        #: Optional runtime lock-discipline checker (see
        #: ``repro.analysis.concurrency.LockSanitizer.attach``).  When
        #: set, labelled :class:`~repro.sim.Resource` acquires/releases
        #: report to it; ``None`` costs one attribute check per call.
        self.lock_sanitizer: Any = None

    @property
    def current_task(self) -> Optional[Process]:
        """The process currently executing, or ``None`` (kernel context)."""
        return self._current_task

    # -- scheduling ------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), event))

    def call_soon(self, func: Callable[..., None], *args: Any) -> None:
        """Schedule ``func(*args)`` at the current simulated time."""
        self.call_later(0.0, func, *args)

    def call_later(self, delay: float, func: Callable[..., None], *args: Any) -> None:
        """Schedule ``func(*args)`` after ``delay`` simulated seconds."""
        event = Event(self)
        event.triggered = True
        event.callbacks = [lambda _ev: func(*args)]
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), event))

    # -- event / process constructors -------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        """Start ``gen`` as a :class:`Process` at the current time."""
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- running -----------------------------------------------------------

    def step(self) -> None:
        """Process exactly one queued event, advancing the clock to it."""
        when, _seq, event = heapq.heappop(self._queue)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        self._processed_events += 1
        event._process()

    def peek(self) -> float:
        """Time of the next queued event, or ``float('inf')`` if idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or until simulated time ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier.
        """
        if until is None:
            while self._queue:
                self.step()
            return
        if until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._queue and self._queue[0][0] <= until:
            self.step()
        self.now = until

    def run_until_complete(self, event: Event) -> Any:
        """Run until ``event`` fires; return its value (or raise).

        This is the bridge between synchronous test/bench code and the
        simulated world: wrap an operation in a process and drive the loop
        until it resolves.
        """
        while not event.triggered:
            if not self._queue:
                raise SimulationError("deadlock: event queue drained while waiting")
            self.step()
        # Let same-timestamp callbacks (e.g. resource releases) settle.
        return event.value
