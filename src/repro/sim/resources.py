"""Shared, contended resources for the simulation kernel.

* :class:`Resource` — a counted semaphore with FIFO queuing; models a
  device that can serve ``capacity`` requests concurrently (e.g. an SSD
  with an internal queue depth, or a CPU with N cores).
* :class:`Store` — an unbounded/bounded FIFO buffer of items; models
  mailboxes and work queues between processes.
* :class:`TokenBucket` — a rate limiter with burst capacity; models
  bandwidth caps and the deduplication rate controller's I/O budget.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional, Tuple

from .core import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "TokenBucket"]


class Resource:
    """A counted FIFO resource (semaphore) on the simulated clock.

    Usage from a process::

        yield resource.acquire()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()

    or the equivalent one-liner ``yield sim.process(resource.serve(t))``.

    ``label`` marks the resource as a *lock* for the runtime lock
    sanitizer (``repro.analysis.concurrency``): a ``"class:key"`` string
    such as ``"rados.write:1/7/obj-3"``.  Labelled resources report
    acquire/grant/release to ``sim.lock_sanitizer`` when one is
    attached; unlabelled resources (devices, CPU slots) are not lock-like
    and stay invisible to it.
    """

    def __init__(
        self, sim: Simulator, capacity: int = 1, label: Optional[str] = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.label = label
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        #: Total simulated time during which at least one slot was busy.
        self.busy_time = 0.0
        #: Integral of (slots in use) over time; divide by elapsed time and
        #: capacity for average utilisation.
        self.busy_integral = 0.0
        self._last_change = sim.now

    def _sanitizer(self) -> Any:
        if self.label is None:
            return None
        return self.sim.lock_sanitizer

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_len(self) -> int:
        """Number of acquirers waiting for a slot."""
        return len(self._waiters)

    def _account(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_change
        if elapsed > 0:
            self.busy_integral += elapsed * self._in_use
            if self._in_use > 0:
                self.busy_time += elapsed
        self._last_change = now

    def utilization(self, since: float = 0.0) -> float:
        """Average fraction of capacity in use since time ``since``."""
        self._account()
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self.busy_integral / (elapsed * self.capacity)

    def acquire(self) -> Event:
        """Return an event that fires once a slot is granted (FIFO)."""
        event = Event(self.sim)
        sanitizer = self._sanitizer()
        if sanitizer is not None:
            sanitizer.on_acquire(self, event)
        if self._in_use < self.capacity and not self._waiters:
            self._account()
            self._in_use += 1
            event.succeed(self)
            if sanitizer is not None:
                sanitizer.on_grant(self, event)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one held slot, waking the next FIFO waiter if any.

        Waiters whose event was cancelled (the waiting process was
        interrupted and detached) are dropped instead of granted — a
        cancelled waiter would never release the slot back.
        """
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        self._account()
        sanitizer = self._sanitizer()
        if sanitizer is not None:
            sanitizer.on_release(self)
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.cancelled:
                if sanitizer is not None:
                    sanitizer.on_cancelled(self, waiter)
                continue
            # Hand the slot straight to the next waiter; occupancy unchanged.
            waiter.succeed(self)
            if sanitizer is not None:
                sanitizer.on_grant(self, waiter)
            return
        self._in_use -= 1

    def serve(self, duration: float) -> Generator[Event, Any, None]:
        """Process generator: hold one slot for ``duration`` seconds."""
        yield self.acquire()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Store:
    """A FIFO buffer of items between producer and consumer processes."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    def _next_getter(self) -> Optional[Event]:
        while self._getters:
            getter = self._getters.popleft()
            if not getter.cancelled:
                return getter
        return None

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` has been accepted."""
        event = Event(self.sim)
        getter = self._next_getter()
        if getter is not None:
            getter.succeed(item)
            event.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Return an event that fires with the next item (FIFO)."""
        event = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            while self._putters:
                put_event, pending = self._putters.popleft()
                if put_event.cancelled:
                    continue
                self._items.append(pending)
                put_event.succeed(None)
                break
            event.succeed(item)
        else:
            self._getters.append(event)
        return event


class TokenBucket:
    """A token-bucket rate limiter on the simulated clock.

    Tokens accrue at ``rate`` per second up to ``capacity``.  An
    :meth:`acquire` for ``n`` tokens fires once ``n`` tokens are
    available; acquirers are served FIFO so a large request cannot be
    starved by a stream of small ones.
    """

    def __init__(
        self, sim: Simulator, rate: float, capacity: Optional[float] = None
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.sim = sim
        self.rate = rate
        self.capacity = capacity if capacity is not None else rate
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        self._tokens = self.capacity
        self._last_refill = sim.now
        self._waiters: Deque[Tuple[Event, float]] = deque()  # (event, amount)
        self._drain_scheduled = False

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(
            self.capacity, self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now

    @property
    def tokens(self) -> float:
        """Tokens available right now."""
        self._refill()
        return self._tokens

    def acquire(self, amount: float = 1.0) -> Event:
        """Return an event firing when ``amount`` tokens are granted."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"amount {amount} exceeds bucket capacity {self.capacity}"
            )
        event = Event(self.sim)
        self._waiters.append((event, amount))
        self._drain()
        return event

    def _drain(self) -> None:
        self._refill()
        while self._waiters:
            event, amount = self._waiters[0]
            if event.cancelled:
                # The waiting process was interrupted; don't burn budget
                # on a grant nobody consumes.
                self._waiters.popleft()
                continue
            if amount <= self._tokens + 1e-12:
                self._tokens -= amount
                self._waiters.popleft()
                event.succeed(None)
                continue
            if not self._drain_scheduled:
                wait = (amount - self._tokens) / self.rate
                self._drain_scheduled = True
                self.sim.call_later(wait, self._drain_tick)
            break

    def _drain_tick(self) -> None:
        self._drain_scheduled = False
        self._drain()
