"""Deterministic random-number streams.

Every stochastic component (workload generators, failure injectors,
placement jitter) draws from its own named stream so that adding a new
consumer of randomness never perturbs the draws seen by existing ones.
All streams derive deterministically from a single experiment seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 so the mapping is stable across Python versions and
    processes (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of independent, named ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Calling repeatedly with the same name returns the *same* object so
        draws continue where they left off.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))
