"""Small shared utilities (interval sets, bloom filters, formatting)."""

from .bloom import BloomFilter
from .intervals import IntervalSet

__all__ = ["IntervalSet", "BloomFilter"]
