"""A counting-free Bloom filter.

The paper's cache manager persists its HitSets to storage and keeps an
in-memory Bloom filter for existence checks (§5, "Cache management").
This is that filter: ``k`` hash probes into an ``m``-bit array derived
from the target capacity and false-positive rate.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..sim.rng import derive_seed

__all__ = ["BloomFilter"]


class BloomFilter:
    """Standard Bloom filter with double hashing for the k probes."""

    def __init__(self, capacity: int, error_rate: float = 0.01) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not (0.0 < error_rate < 1.0):
            raise ValueError(f"error_rate must be in (0, 1), got {error_rate}")
        self.capacity = capacity
        self.error_rate = error_rate
        self.num_bits = max(8, int(-capacity * math.log(error_rate) / (math.log(2) ** 2)))
        self.num_hashes = max(1, round(self.num_bits / capacity * math.log(2)))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.count = 0

    def _probes(self, item: str) -> Iterator[int]:
        h1 = derive_seed(0, item)
        h2 = derive_seed(1, item) | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, item: str) -> None:
        """Insert ``item``."""
        for bit in self._probes(item):
            self._bits[bit >> 3] |= 1 << (bit & 7)
        self.count += 1

    def __contains__(self, item: str) -> bool:
        return all(
            self._bits[bit >> 3] & (1 << (bit & 7)) for bit in self._probes(item)
        )

    def memory_bytes(self) -> int:
        """RAM footprint of the bit array."""
        return len(self._bits)
