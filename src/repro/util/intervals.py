"""Disjoint integer interval sets.

Used by the object store to track *holes*: byte ranges of an object's
payload that have been punched out (deallocated).  The dedup tier
punches a chunk's range out of a metadata object when the chunk has been
flushed to the chunk pool and evicted from the cache, so space
accounting must subtract holes from the payload length.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

__all__ = ["IntervalSet"]


class IntervalSet:
    """A set of disjoint, half-open integer intervals ``[start, end)``.

    Intervals are kept sorted and coalesced; ``add``/``remove`` are
    O(n) in the number of stored intervals, which is plenty for
    per-object hole tracking (a handful of chunks).
    """

    def __init__(self) -> None:
        self._ivs: List[Tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._ivs)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntervalSet):
            return self._ivs == other._ivs
        return NotImplemented

    @staticmethod
    def _check(start: int, end: int) -> None:
        if start < 0 or end < start:
            raise ValueError(f"invalid interval [{start}, {end})")

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, merging with any overlap/adjacency."""
        self._check(start, end)
        if start == end:
            return
        out: List[Tuple[int, int]] = []
        for s, e in self._ivs:
            if e < start or s > end:  # disjoint (adjacency merges)
                out.append((s, e))
            else:
                start = min(start, s)
                end = max(end, e)
        out.append((start, end))
        out.sort()
        self._ivs = out

    def remove(self, start: int, end: int) -> None:
        """Delete ``[start, end)`` from the set, splitting as needed."""
        self._check(start, end)
        if start == end:
            return
        out: List[Tuple[int, int]] = []
        for s, e in self._ivs:
            if e <= start or s >= end:
                out.append((s, e))
                continue
            if s < start:
                out.append((s, start))
            if e > end:
                out.append((end, e))
        self._ivs = out

    def clip(self, end: int) -> None:
        """Drop everything at or beyond ``end`` (used by truncate)."""
        self.remove(end, max(end, self.max_end()))

    def max_end(self) -> int:
        """Largest covered offset, or 0 when empty."""
        return self._ivs[-1][1] if self._ivs else 0

    def total(self) -> int:
        """Total covered length."""
        return sum(e - s for s, e in self._ivs)

    def total_within(self, start: int, end: int) -> int:
        """Covered length intersecting ``[start, end)``."""
        self._check(start, end)
        return sum(
            max(0, min(e, end) - max(s, start)) for s, e in self._ivs
        )

    def contains(self, point: int) -> bool:
        """Whether ``point`` falls inside any interval."""
        return any(s <= point < e for s, e in self._ivs)

    def copy(self) -> "IntervalSet":
        """An independent copy."""
        dup = IntervalSet()
        dup._ivs = list(self._ivs)
        return dup
