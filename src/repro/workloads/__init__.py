"""Workload generators: FIO-like, SPEC-SFS-2014-DB-like, cloud images,
deterministic content generation, and trace record/replay."""

from .backup import BackupSpec, BackupStream
from .cloud import VmImagePopulation, VmPopulationSpec, private_cloud_spec
from .datagen import ContentGenerator
from .fio import FioJobSpec, FioResult, FioRunner
from .sfs import SfsDatabaseSpec, SfsDatabaseWorkload, SfsResult
from .traces import Trace, TraceOp

__all__ = [
    "BackupSpec",
    "BackupStream",
    "ContentGenerator",
    "FioJobSpec",
    "FioRunner",
    "FioResult",
    "SfsDatabaseSpec",
    "SfsDatabaseWorkload",
    "SfsResult",
    "VmPopulationSpec",
    "VmImagePopulation",
    "private_cloud_spec",
    "Trace",
    "TraceOp",
]
