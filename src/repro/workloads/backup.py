"""Versioned backup streams — the classic deduplication workload.

Nightly backups re-store mostly unchanged data: generation *g* differs
from generation *g−1* in a small mutated fraction of blocks.  Global
dedup collapses the unchanged blocks across all generations, so the
cluster stores roughly ``base + generations x churn`` instead of
``generations x base`` (the HYDRAstor/backup-system scenario the paper
contrasts itself with in §7).

Each generation is written under its own object namespace so every
generation remains independently restorable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..sim import RngRegistry
from .datagen import compressible_bytes

__all__ = ["BackupSpec", "BackupStream"]

KiB = 1024
MiB = 1024 * KiB


@dataclass
class BackupSpec:
    """Shape of a backup series."""

    dataset_size: int = 4 * MiB
    block_size: int = 32 * KiB
    #: Fraction of blocks rewritten between consecutive generations.
    mutation_rate: float = 0.05
    generations: int = 5
    compress_ratio: float = 0.3
    seed: int = 0

    def __post_init__(self):
        if self.dataset_size % self.block_size != 0:
            raise ValueError("dataset_size must be a multiple of block_size")
        if not (0.0 <= self.mutation_rate <= 1.0):
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")

    @property
    def blocks(self) -> int:
        """Blocks per generation."""
        return self.dataset_size // self.block_size


class BackupStream:
    """Deterministically generates every generation's blocks."""

    def __init__(self, spec: BackupSpec):
        self.spec = spec
        self._rng = RngRegistry(spec.seed)
        # block index -> generation at which its content last changed.
        self._last_changed = [0] * spec.blocks

    def _block_content(self, index: int, changed_at: int) -> bytes:
        rng = self._rng.fork(f"b{index}.g{changed_at}").stream("content")
        return compressible_bytes(rng, self.spec.block_size, self.spec.compress_ratio)

    def generation_blocks(self, generation: int) -> Iterator[Tuple[str, bytes]]:
        """Yield ``(object id, block)`` for one generation.

        Must be called for generations in order (the mutation history is
        stateful).
        """
        spec = self.spec
        if generation > 0:
            mut_rng = self._rng.stream("mutations")
            for index in range(spec.blocks):
                if mut_rng.random() < spec.mutation_rate:
                    self._last_changed[index] = generation
        for index in range(spec.blocks):
            yield (
                f"backup.g{generation}.o{index}",
                self._block_content(index, self._last_changed[index]),
            )

    def write_generation(self, storage, generation: int) -> int:
        """Write one generation; returns bytes written."""
        written = 0
        for oid, block in self.generation_blocks(generation):
            storage.write_sync(oid, block)
            written += len(block)
        return written

    def restore_generation(self, storage, generation: int) -> bytes:
        """Read a full generation back, concatenated in block order."""
        parts = []
        for index in range(self.spec.blocks):
            parts.append(storage.read_sync(f"backup.g{generation}.o{index}"))
        return b"".join(parts)

    def expected_generation(self, generation: int, history=None) -> bytes:
        """Recompute a generation's expected content (for verification).

        ``history`` is the per-block last-changed list *as of that
        generation*; by default the stream's current state is used
        (valid for the most recently generated generation).
        """
        history = history if history is not None else self._last_changed
        return b"".join(
            self._block_content(i, history[i]) for i in range(self.spec.blocks)
        )
