"""Private-cloud VM image datasets.

Two of the paper's datasets are cloud images:

* **Figure 13**: ten 8 GB Ubuntu VM images whose OS parts are identical
  and whose user home data differs — dedup collapses them to ~2.2 GB
  plus ~200 MB per additional image.
* **Figure 3 / Tables 1-2**: SK Telecom's private cloud (~100 developer
  VMs, 3.3 TB), with global dedup ratio ~92.7 % and local ~44.8 %.

We synthesise populations with the same *sharing structure*, scaled
down (sizes here are simulation-scale; the generators take the real
shape parameters).  Blocks come from three pools: a per-template OS
base (identical across VMs of the same template), cross-VM common user
data (packages, frameworks), and per-VM unique data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..sim import RngRegistry
from .datagen import ContentGenerator, compressible_bytes

__all__ = ["VmPopulationSpec", "VmImagePopulation"]

KiB = 1024
MiB = 1024 * KiB


@dataclass
class VmPopulationSpec:
    """Shape of a VM-image population.

    ``os_base_fraction`` of each image is the shared OS template;
    ``common_fraction`` is user data duplicated across VMs (with some
    probability per block); the rest is unique per VM.
    """

    num_vms: int = 10
    image_size: int = 8 * MiB  # paper: 8 GB, scaled 1/1000
    block_size: int = 64 * KiB
    num_templates: int = 1  # distinct OS templates in the population
    os_base_fraction: float = 0.90
    common_fraction: float = 0.05
    common_dup_probability: float = 0.5
    compress_ratio: float = 0.4  # OS images compress reasonably well
    #: Fraction of each VM's base blocks that diverge slightly from the
    #: template: the first ``perturb_bytes`` of the block are unique to
    #: the VM (config files, logs inside otherwise-identical extents).
    #: This gives the dataset sub-block duplicate granularity, so small
    #: chunks find duplicates that large chunks miss (Table 2's "ideal
    #: dedup ratio falls as chunk size grows").
    perturb_fraction: float = 0.0
    perturb_bytes: int = 8 * KiB
    #: Fraction of each image that is untouched (all-zero) space — thin
    #: images are mostly empty, which is why the paper's ten "8 GB"
    #: Ubuntu images dedup to ~2.2 GB: the zero blocks collapse to one
    #: chunk.  Zero blocks sit at the end of the image.
    zero_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.num_vms < 1:
            raise ValueError("num_vms must be >= 1")
        if self.image_size % self.block_size != 0:
            raise ValueError("image_size must be a multiple of block_size")
        total = self.os_base_fraction + self.common_fraction + self.zero_fraction
        if not (0.0 <= total <= 1.0):
            raise ValueError("fractions must sum to at most 1")
        if self.num_templates < 1:
            raise ValueError("num_templates must be >= 1")
        if not (0.0 <= self.perturb_fraction <= 1.0):
            raise ValueError("perturb_fraction must be in [0, 1]")
        if not (0 < self.perturb_bytes <= self.block_size):
            raise ValueError("perturb_bytes must be in (0, block_size]")

    @property
    def blocks_per_image(self) -> int:
        """Number of blocks in one image."""
        return self.image_size // self.block_size


class VmImagePopulation:
    """Deterministically generates the block contents of every VM image."""

    def __init__(self, spec: VmPopulationSpec):
        self.spec = spec
        self._rng = RngRegistry(spec.seed)
        self._base_blocks: dict = {}
        self._common_gen = ContentGenerator(
            seed=spec.seed + 7,
            dedupe_ratio=spec.common_dup_probability,
            compress_ratio=spec.compress_ratio,
        )

    def _template_of(self, vm: int) -> int:
        return vm % self.spec.num_templates

    def _base_block(self, template: int, index: int) -> bytes:
        key = (template, index)
        block = self._base_blocks.get(key)
        if block is None:
            rng = self._rng.stream(f"base.t{template}.b{index}")
            block = compressible_bytes(
                rng, self.spec.block_size, self.spec.compress_ratio
            )
            self._base_blocks[key] = block
        return block

    def _unique_block(self, vm: int, index: int) -> bytes:
        rng = self._rng.stream(f"vm{vm}.b{index}")
        return compressible_bytes(
            rng, self.spec.block_size, self.spec.compress_ratio / 2
        )

    def image_blocks(self, vm: int) -> Iterator[Tuple[str, bytes]]:
        """Yield ``(object id, block bytes)`` for one VM image."""
        spec = self.spec
        template = self._template_of(vm)
        n_base = int(spec.blocks_per_image * spec.os_base_fraction)
        n_common = int(spec.blocks_per_image * spec.common_fraction)
        n_perturbed = int(n_base * spec.perturb_fraction)
        n_zero = int(spec.blocks_per_image * spec.zero_fraction)
        first_zero = spec.blocks_per_image - n_zero
        for index in range(spec.blocks_per_image):
            if index >= first_zero:
                yield f"vm{vm}.b{index}", b"\x00" * spec.block_size
                continue
            if index < n_perturbed:
                base = self._base_block(template, index)
                head = self._rng.stream(f"perturb.vm{vm}.b{index}").randbytes(
                    spec.perturb_bytes
                )
                block = head + base[spec.perturb_bytes :]
            elif index < n_base:
                block = self._base_block(template, index)
            elif index < n_base + n_common:
                block = self._common_gen.block(spec.block_size)
            else:
                block = self._unique_block(vm, index)
            yield f"vm{vm}.b{index}", block

    def write_vm(self, storage, vm: int, object_size: Optional[int] = None) -> int:
        """Write one VM's image; returns bytes written.

        ``object_size`` aggregates consecutive blocks into larger
        storage objects (the way RBD stripes an image over 4 MiB RADOS
        objects); default is one object per block.
        """
        spec = self.spec
        object_size = object_size if object_size is not None else spec.block_size
        if object_size % spec.block_size != 0:
            raise ValueError("object_size must be a multiple of block_size")
        per_object = object_size // spec.block_size
        written = 0
        pending = []
        obj_index = 0
        for _oid, block in self.image_blocks(vm):
            pending.append(block)
            if len(pending) == per_object:
                storage.write_sync(f"vm{vm}.obj{obj_index}", b"".join(pending))
                obj_index += 1
                pending = []
            written += len(block)
        if pending:
            storage.write_sync(f"vm{vm}.obj{obj_index}", b"".join(pending))
        return written

    def write_all(self, storage, object_size: Optional[int] = None) -> int:
        """Write the whole population; returns bytes written."""
        return sum(
            self.write_vm(storage, vm, object_size)
            for vm in range(self.spec.num_vms)
        )


def private_cloud_spec(
    num_vms: int = 16, image_size: int = 2 * MiB, seed: int = 0
) -> VmPopulationSpec:
    """A population shaped like the paper's SK Telecom private cloud.

    Developer VMs cloned from a couple of templates, with user data that
    dominates the footprint ("the data excluding OS images is
    over-provisioned"): the template part dedups across VMs, a slice of
    user data is common, the rest is unique.  Tuned so the global dedup
    ratio lands near the paper's 44.8 % (Figure 3 / Table 2) with a
    local (per-OSD) ratio around half of that.
    """
    return VmPopulationSpec(
        num_vms=num_vms,
        image_size=image_size,
        num_templates=2,
        os_base_fraction=0.42,
        common_fraction=0.12,
        common_dup_probability=0.55,
        compress_ratio=0.35,
        perturb_fraction=0.08,
        seed=seed,
    )
