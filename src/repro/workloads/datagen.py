"""Deterministic content generation with controlled redundancy.

Workloads need payloads whose *dedupability* and *compressibility* are
dialled in, like FIO's ``dedupe_percentage`` and
``buffer_compress_percentage``:

* dedupe ratio ``d``: a generated block is, with probability ``d``, a
  repeat of a previously generated block; otherwise fresh unique bytes.
* compressibility ``c``: a fraction ``c`` of each block is zeros, the
  rest incompressible random bytes — zlib then saves roughly ``c``.

All draws come from named, seeded streams, so a workload regenerates
byte-identical data on every run.
"""

from __future__ import annotations

from typing import List

from ..sim import RngRegistry

__all__ = ["ContentGenerator", "compressible_bytes"]

#: Zeros are interleaved at this granularity so compressibility never
#: creates whole chunks of zeros (which would dedup as an artifact of
#: chunk size rather than of the dataset).
_COMPRESS_CELL = 1024


def compressible_bytes(rng, size: int, ratio: float) -> bytes:
    """``size`` bytes, a ``ratio`` fraction of which is zeros.

    Zeros are spread in small runs (one per KiB cell) rather than one
    prefix, so zlib saves ~``ratio`` while no chunk-sized region is all
    zeros.
    """
    if ratio <= 0.0:
        return rng.randbytes(size)
    zeros_per_cell = int(_COMPRESS_CELL * ratio)
    parts = []
    remaining = size
    while remaining > 0:
        cell = min(_COMPRESS_CELL, remaining)
        z = min(zeros_per_cell, cell)
        parts.append(b"\x00" * z)
        parts.append(rng.randbytes(cell - z))
        remaining -= cell
    return b"".join(parts)


class ContentGenerator:
    """Generates blocks with target dedupe and compression ratios."""

    def __init__(
        self,
        seed: int = 0,
        dedupe_ratio: float = 0.0,
        compress_ratio: float = 0.0,
        duplicate_pool_size: int = 256,
    ):
        if not (0.0 <= dedupe_ratio <= 1.0):
            raise ValueError(f"dedupe_ratio must be in [0, 1], got {dedupe_ratio}")
        if not (0.0 <= compress_ratio <= 1.0):
            raise ValueError(
                f"compress_ratio must be in [0, 1], got {compress_ratio}"
            )
        if duplicate_pool_size < 1:
            raise ValueError("duplicate_pool_size must be >= 1")
        self.dedupe_ratio = dedupe_ratio
        self.compress_ratio = compress_ratio
        self.duplicate_pool_size = duplicate_pool_size
        self._rng = RngRegistry(seed)
        self._dup_pool: List[bytes] = []
        #: Counters for tests.
        self.blocks_emitted = 0
        self.duplicates_emitted = 0

    def _fresh_block(self, size: int) -> bytes:
        rng = self._rng.stream("content")
        return compressible_bytes(rng, size, self.compress_ratio)

    def block(self, size: int) -> bytes:
        """Produce the next block of ``size`` bytes.

        With probability ``dedupe_ratio`` it repeats an earlier block of
        the same size (truncated/refreshed if sizes differ); otherwise
        it is unique.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.blocks_emitted += 1
        choice_rng = self._rng.stream("choice")
        pool = [b for b in self._dup_pool if len(b) == size]
        if pool and choice_rng.random() < self.dedupe_ratio:
            self.duplicates_emitted += 1
            return pool[choice_rng.randrange(len(pool))]
        block = self._fresh_block(size)
        self._dup_pool.append(block)
        if len(self._dup_pool) > self.duplicate_pool_size:
            del self._dup_pool[0]
        return block

    def stream(self, total_bytes: int, block_size: int) -> List[bytes]:
        """A list of blocks totalling ``total_bytes`` (last may be short)."""
        blocks = []
        remaining = total_bytes
        while remaining > 0:
            size = min(block_size, remaining)
            blocks.append(self.block(size))
            remaining -= size
        return blocks
