"""A FIO-like workload generator.

Models the subset of FIO the paper uses (§2.2, §6.2): sequential and
random read/write jobs with a configurable block size, number of jobs,
I/O depth, and ``dedupe_percentage``.  Each job addresses a virtual
"file" striped over fixed-size storage objects, the way a Ceph RBD
block device stripes over RADOS objects.

Workers are closed-loop: each of the ``numjobs * iodepth`` lanes issues
its next I/O as soon as the previous one completes, so measured IOPS
and latency reflect the storage system's service capability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..metrics import LatencyRecorder, ThroughputSeries, cpu_usage
from ..sim import RngRegistry
from .datagen import ContentGenerator

__all__ = ["FioJobSpec", "FioResult", "FioRunner"]

KiB = 1024
MiB = 1024 * KiB

_PATTERNS = ("write", "randwrite", "read", "randread")


@dataclass
class FioJobSpec:
    """One FIO job description (mirrors the fio options it models)."""

    pattern: str = "write"
    block_size: int = 4 * KiB
    file_size: int = 1 * MiB
    numjobs: int = 1
    iodepth: int = 1
    dedupe_percentage: float = 0.0  # 0..100, like fio
    compress_percentage: float = 0.0  # 0..100
    object_size: int = 64 * KiB
    runtime: Optional[float] = None  # simulated seconds; None = size-bound
    seed: int = 0

    def __post_init__(self):
        if self.pattern not in _PATTERNS:
            raise ValueError(
                f"pattern must be one of {_PATTERNS}, got {self.pattern!r}"
            )
        if self.object_size % self.block_size != 0:
            raise ValueError(
                f"object_size ({self.object_size}) must be a multiple of "
                f"block_size ({self.block_size})"
            )
        if self.file_size % self.block_size != 0:
            raise ValueError(
                f"file_size ({self.file_size}) must be a multiple of "
                f"block_size ({self.block_size})"
            )
        if not (0.0 <= self.dedupe_percentage <= 100.0):
            raise ValueError("dedupe_percentage must be in [0, 100]")

    @property
    def is_read(self) -> bool:
        """Whether the job issues reads."""
        return self.pattern in ("read", "randread")

    @property
    def is_random(self) -> bool:
        """Whether offsets are random rather than sequential."""
        return self.pattern in ("randwrite", "randread")


@dataclass
class FioResult:
    """Aggregated outcome of a FIO run."""

    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    series: ThroughputSeries = field(default_factory=ThroughputSeries)
    total_bytes: int = 0
    total_ops: int = 0
    duration: float = 0.0
    cpu_percent: float = 0.0

    @property
    def bandwidth(self) -> float:
        """Bytes/second over the whole run."""
        return self.total_bytes / self.duration if self.duration else 0.0

    @property
    def iops(self) -> float:
        """Operations/second over the whole run."""
        return self.total_ops / self.duration if self.duration else 0.0


class FioRunner:
    """Executes a :class:`FioJobSpec` against a storage facade.

    ``storage`` is anything exposing the write/read process API:
    :class:`~repro.core.DedupedStorage`,
    :class:`~repro.core.InlineDedupStorage`, or
    :class:`~repro.core.PlainStorage`.
    """

    def __init__(self, storage, spec: FioJobSpec):
        self.storage = storage
        self.spec = spec
        self.sim = storage.sim
        self._rng = RngRegistry(spec.seed)

    def _oid(self, job: int, obj_index: int) -> str:
        return f"fio.j{job}.o{obj_index}"

    def _locate(self, offset: int):
        return offset // self.spec.object_size, offset % self.spec.object_size

    def prefill(self) -> None:
        """Write every object of every job's file (before read tests)."""
        gen = ContentGenerator(
            seed=self.spec.seed + 1,
            dedupe_ratio=self.spec.dedupe_percentage / 100.0,
            compress_ratio=self.spec.compress_percentage / 100.0,
        )
        for job in range(self.spec.numjobs):
            for obj_index in range(self.spec.file_size // self.spec.object_size):
                data = b"".join(
                    gen.stream(self.spec.object_size, self.spec.block_size)
                )
                self.storage.write_sync(self._oid(job, obj_index), data)

    def run(self) -> FioResult:
        """Run the job to completion and return aggregated metrics."""
        spec = self.spec
        result = FioResult()
        start = self.sim.now
        blocks_per_file = spec.file_size // spec.block_size
        procs = []
        for job in range(spec.numjobs):
            client = self.storage.client(f"fio-client-{job}")
            gen = ContentGenerator(
                seed=spec.seed + 1000 + job,
                dedupe_ratio=spec.dedupe_percentage / 100.0,
                compress_ratio=spec.compress_percentage / 100.0,
            )
            cursor = {"next": 0, "remaining": blocks_per_file}
            rng = self._rng.stream(f"job{job}")
            for _lane in range(spec.iodepth):
                procs.append(
                    self.sim.process(
                        self._worker(job, client, gen, cursor, rng, result, start)
                    )
                )
        self.sim.run_until_complete(self.sim.all_of(procs))
        result.duration = self.sim.now - start
        result.cpu_percent = cpu_usage(self.storage.cluster, since=start).mean_percent
        return result

    def _next_offset(self, cursor, rng) -> Optional[int]:
        spec = self.spec
        blocks_per_file = spec.file_size // spec.block_size
        if spec.runtime is None:
            if cursor["remaining"] <= 0:
                return None
            cursor["remaining"] -= 1
        if spec.is_random:
            return rng.randrange(blocks_per_file) * spec.block_size
        offset = cursor["next"] * spec.block_size
        cursor["next"] = (cursor["next"] + 1) % blocks_per_file
        return offset

    def _worker(self, job, client, gen, cursor, rng, result, start):
        spec = self.spec
        while True:
            if spec.runtime is not None and self.sim.now - start >= spec.runtime:
                return
            offset = self._next_offset(cursor, rng)
            if offset is None:
                return
            obj_index, obj_offset = self._locate(offset)
            oid = self._oid(job, obj_index)
            issued = self.sim.now
            if spec.is_read:
                data = yield from self.storage.read(
                    oid, obj_offset, spec.block_size, client
                )
                nbytes = len(data)
            else:
                block = gen.block(spec.block_size)
                yield from self.storage.write(oid, block, obj_offset, client)
                nbytes = spec.block_size
            now = self.sim.now
            result.latency.record(now - issued)
            result.series.note(now, nbytes)
            result.total_bytes += nbytes
            result.total_ops += 1
