"""A SPEC SFS 2014 DATABASE-like workload.

The paper evaluates high availability with the SPEC SFS 2014 database
workload at several load levels (LD1/LD3/LD10; §2.2, §6.4.1).  The
defining properties reproduced here:

* **open-loop fixed op rate**: each LOAD unit requests a fixed number of
  operations per second, regardless of how fast the system responds
  ("the database workload in SPEC SFS 2014 issues fixed number of
  requests per second. That's why there is no difference between
  replication and the proposed method" in throughput, while latency
  explodes when the system cannot keep up — the EC rows of Figure 12);
* **mixed op types**: sequential reads, random reads, and random writes
  are in flight simultaneously;
* a dataset that scales with LOAD, with database-page content that is
  substantially dedupable (Figure 3 measures 21-50 % global dedup on
  SFS DB data depending on load).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..metrics import LatencyRecorder, ThroughputSeries
from ..sim import RngRegistry
from .datagen import ContentGenerator

__all__ = ["SfsDatabaseSpec", "SfsResult", "SfsDatabaseWorkload"]

KiB = 1024
MiB = 1024 * KiB

#: Op mix of the DATABASE-like workload: weights must sum to 1.
_DEFAULT_MIX = {"read": 0.10, "randread": 0.50, "randwrite": 0.40}


@dataclass
class SfsDatabaseSpec:
    """Parameters of the DB workload (sizes are simulation-scaled)."""

    load: int = 1
    ops_per_load: float = 200.0  # requested op/s per LOAD unit
    dataset_per_load: int = 2 * MiB  # paper: 24 GB at LOAD 10, scaled ~1/1000
    block_size: int = 8 * KiB
    object_size: int = 64 * KiB
    duration: float = 10.0  # simulated seconds of measurement
    dedupe_ratio: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.load < 1:
            raise ValueError(f"load must be >= 1, got {self.load}")
        if self.object_size % self.block_size != 0:
            raise ValueError("object_size must be a multiple of block_size")

    @property
    def op_rate(self) -> float:
        """Requested operations per second."""
        return self.load * self.ops_per_load

    @property
    def dataset_bytes(self) -> int:
        """Total dataset size (rounded to whole objects)."""
        raw = self.load * self.dataset_per_load
        return (raw // self.object_size) * self.object_size


@dataclass
class SfsResult:
    """Outcome: overall and per-op-type metrics (Figure 12 a-d)."""

    total_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    per_op_latency: Dict[str, LatencyRecorder] = field(default_factory=dict)
    per_op_count: Dict[str, int] = field(default_factory=dict)
    series: ThroughputSeries = field(default_factory=ThroughputSeries)
    requested_ops: int = 0
    completed_ops: int = 0
    duration: float = 0.0

    @property
    def throughput(self) -> float:
        """Achieved bytes/second."""
        return self.series.total_bytes / self.duration if self.duration else 0.0

    @property
    def achieved_iops(self) -> float:
        """Completed operations per second."""
        return self.completed_ops / self.duration if self.duration else 0.0

    def op_iops(self, op: str) -> float:
        """Per-op-type achieved IOPS."""
        return self.per_op_count.get(op, 0) / self.duration if self.duration else 0.0


class SfsDatabaseWorkload:
    """Drives the DB-like workload against a storage facade."""

    def __init__(self, storage, spec: SfsDatabaseSpec, mix: Dict[str, float] = None):
        self.storage = storage
        self.spec = spec
        self.mix = dict(mix) if mix is not None else dict(_DEFAULT_MIX)
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"op mix must sum to 1, got {total}")
        self.sim = storage.sim
        self._rng = RngRegistry(spec.seed)

    def _oid(self, obj_index: int) -> str:
        return f"sfsdb.o{obj_index}"

    @property
    def num_objects(self) -> int:
        """Dataset objects backing the database."""
        return self.spec.dataset_bytes // self.spec.object_size

    def prefill(self) -> None:
        """Lay down the database files before measurement."""
        gen = ContentGenerator(
            seed=self.spec.seed + 1, dedupe_ratio=self.spec.dedupe_ratio
        )
        for obj_index in range(self.num_objects):
            data = b"".join(
                gen.stream(self.spec.object_size, self.spec.block_size)
            )
            self.storage.write_sync(self._oid(obj_index), data)

    def run(self) -> SfsResult:
        """Issue the fixed-rate mixed op stream; return metrics."""
        spec = self.spec
        result = SfsResult()
        for op in self.mix:
            result.per_op_latency[op] = LatencyRecorder(op)
            result.per_op_count[op] = 0
        client = self.storage.client("sfs-client")
        gen = ContentGenerator(seed=spec.seed + 2, dedupe_ratio=spec.dedupe_ratio)
        start = self.sim.now
        arrival = self.sim.process(
            self._arrival_loop(client, gen, result, start)
        )
        # The arrival loop itself waits for every in-flight op, so this
        # returns once the last issued op completes (possibly well past
        # the issue window when the system cannot keep up — that tail is
        # the latency explosion Figure 12 shows for EC).
        self.sim.run_until_complete(arrival)
        result.duration = self.sim.now - start
        return result

    def _pick_op(self, rng) -> str:
        roll = rng.random()
        acc = 0.0
        for op, weight in self.mix.items():
            acc += weight
            if roll < acc:
                return op
        return next(iter(self.mix))

    def _arrival_loop(self, client, gen, result, start):
        spec = self.spec
        rng = self._rng.stream("arrivals")
        interarrival = 1.0 / spec.op_rate
        seq_cursor = {"next": 0}
        ops_in_flight = []
        while self.sim.now - start < spec.duration:
            op = self._pick_op(rng)
            result.requested_ops += 1
            ops_in_flight.append(
                self.sim.process(
                    self._one_op(op, client, gen, rng, seq_cursor, result)
                )
            )
            yield self.sim.timeout(interarrival)
        yield self.sim.all_of(ops_in_flight)

    def _one_op(self, op, client, gen, rng, seq_cursor, result):
        spec = self.spec
        blocks_per_obj = spec.object_size // spec.block_size
        total_blocks = self.num_objects * blocks_per_obj
        if op == "read":
            block_no = seq_cursor["next"]
            seq_cursor["next"] = (seq_cursor["next"] + 1) % total_blocks
        else:
            block_no = rng.randrange(total_blocks)
        obj_index, block_in_obj = divmod(block_no, blocks_per_obj)
        offset = block_in_obj * spec.block_size
        issued = self.sim.now
        if op == "randwrite":
            block = gen.block(spec.block_size)
            yield from self.storage.write(
                self._oid(obj_index), block, offset, client
            )
            nbytes = spec.block_size
        else:
            data = yield from self.storage.read(
                self._oid(obj_index), offset, spec.block_size, client
            )
            nbytes = len(data)
        now = self.sim.now
        latency = now - issued
        result.total_latency.record(latency)
        result.per_op_latency[op].record(latency)
        result.per_op_count[op] += 1
        result.completed_ops += 1
        result.series.note(now, nbytes)
