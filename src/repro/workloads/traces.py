"""I/O trace recording and replay.

A trace is a list of timestamped operations with deterministic content
seeds (contents regenerate from the seed, so traces stay small).  Traces
make experiments repeatable across storage configurations: record once,
replay against Original / Proposed / EC variants.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Optional

from ..sim import RngRegistry

__all__ = ["TraceOp", "Trace"]


@dataclass(frozen=True)
class TraceOp:
    """One operation: when, what, where, and (for writes) which content."""

    at: float
    op: str  # "write" | "read"
    oid: str
    offset: int
    length: int
    content_seed: int = 0

    def __post_init__(self):
        if self.op not in ("write", "read"):
            raise ValueError(f"op must be 'write' or 'read', got {self.op!r}")
        if self.offset < 0 or self.length < 0:
            raise ValueError("offset/length must be non-negative")

    def content(self) -> bytes:
        """The deterministic payload of a write op."""
        rng = RngRegistry(self.content_seed).stream("trace-content")
        return rng.randbytes(self.length)


class Trace:
    """An ordered sequence of :class:`TraceOp`."""

    def __init__(self, ops: Optional[List[TraceOp]] = None):
        self.ops: List[TraceOp] = list(ops or [])

    def __len__(self) -> int:
        return len(self.ops)

    def append(self, op: TraceOp) -> None:
        """Add an op (must not go back in time)."""
        if self.ops and op.at < self.ops[-1].at:
            raise ValueError("trace ops must be time-ordered")
        self.ops.append(op)

    # -- persistence ----------------------------------------------------------

    def dumps(self) -> str:
        """Serialise to JSON lines."""
        return "\n".join(json.dumps(asdict(op)) for op in self.ops)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        """Inverse of :meth:`dumps`."""
        ops = [
            TraceOp(**json.loads(line)) for line in text.splitlines() if line.strip()
        ]
        return cls(ops)

    def save(self, path: str) -> None:
        """Write to a file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read from a file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())

    # -- replay ------------------------------------------------------------------

    def replay(self, storage, paced: bool = True, client=None):
        """Process: replay all ops against ``storage``.

        ``paced`` honours the recorded timestamps (waiting between ops);
        otherwise ops run back-to-back as fast as the system allows.
        """
        sim = storage.sim
        t0 = sim.now
        for op in self.ops:
            if paced:
                target = t0 + op.at
                if target > sim.now:
                    yield sim.timeout(target - sim.now)
            if op.op == "write":
                yield from storage.write(op.oid, op.content(), op.offset, client)
            else:
                yield from storage.read(op.oid, op.offset, op.length, client)

    def replay_sync(self, storage, paced: bool = True) -> None:
        """Synchronous :meth:`replay`."""
        storage.cluster.run(self.replay(storage, paced))
