"""API001 fixture: imports bypassing the RadosCluster facade.

Linted with a module override placing it under ``repro.workloads``.
"""

import repro.cluster.osd  # line 6: API001
from repro.cluster.recovery import recover  # line 7: API001

from repro.cluster import RadosCluster  # facade import: clean
