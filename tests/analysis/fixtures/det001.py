"""DET001 fixture: wall-clock reads in a simulated component.

Linted with a module override placing it under ``repro.core``.
"""

import datetime
import time
from time import perf_counter as pc


def stamp():
    t = time.time()  # line 12: DET001
    u = pc()  # line 13: DET001 (aliased import)
    d = datetime.datetime.now()  # line 14: DET001
    return t, u, d


def referenced_not_called():
    return time.perf_counter  # no call: clean
