"""DET002 fixture: randomness outside the registry streams.

Linted with a module override placing it under ``repro.workloads``
(the rule scope is the whole ``repro`` package).
"""

import random

import numpy as np


def draws():
    a = random.random()  # line 13: DET002 (global stream)
    b = random.Random()  # line 14: DET002 (unseeded)
    c = random.SystemRandom()  # line 15: DET002 (OS entropy)
    d = np.random.rand()  # line 16: DET002 (numpy global)
    e = np.random.default_rng()  # line 17: DET002 (unseeded generator)
    return a, b, c, d, e


def sanctioned(seed):
    table_rng = random.Random(seed)  # seeded: clean
    gen = np.random.default_rng(seed)  # seeded: clean
    return table_rng, gen
