"""DET003 fixture: iteration over sets with unpinned order.

Linted with a module override placing it under ``repro.core``.
"""


def loop_over_set(items):
    acc = []
    s = set(items)
    for x in s:  # line 10: DET003 (set-typed local)
        acc.append(x)
    return acc


def literal_comprehension():
    return [x for x in {1, 2, 3}]  # line 16: DET003 (set literal)


def list_of_setcomp(items):
    return list({i for i in items})  # line 20: DET003 (list(set))


def union_iteration(a, b):
    left = set(a)
    right = set(b)
    for x in left | right:  # line 26: DET003 (set union)
        yield x


def order_insensitive(items):
    s = set(items)
    total = sum(v for v in s)  # sum collapses order: clean
    flags = any(v > 0 for v in s)  # any collapses order: clean
    for x in sorted(s):  # sorted pins order: clean
        total += x
    return total, flags
