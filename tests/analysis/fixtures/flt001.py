"""FLT001 fixture: substrate mutations in and out of fault scopes.

Linted with a module override placing it under ``repro.core``.
"""

from repro.faults.errors import is_retryable


def unguarded(cluster, pool, oid, txn, via):
    yield from cluster.submit(pool, oid, txn, via)  # line 10: FLT001


def unguarded_remove(cluster, pool, oid, via):
    yield from cluster.remove(pool, oid, via)  # line 14: FLT001


def guarded_by_retry(tier, pool, oid, txn, via):
    result = yield from tier.retrying(
        lambda: tier.cluster.submit(pool, oid, txn, via), op="submit"
    )
    return result


def guarded_by_handler(cluster, pool, oid, txn, via):
    try:
        yield from cluster.submit(pool, oid, txn, via)
    except Exception as exc:
        if not is_retryable(exc):
            raise
        return "faulted"
    return "done"


def guarded_by_swallow(cluster, pool, oid, via):
    try:
        yield from cluster.remove(pool, oid, via)
    except Exception:
        pass  # best-effort cleanup: a fault here is absorbed


# repro-lint: flt-scope -- fixture: commit primitive whose callers own the fault scope
def guarded_by_marker(cluster, pool, oid, txn, via):
    yield from cluster.submit(pool, oid, txn, via)
