"""LCK001 fixture: unsorted multi-acquire, a two-class cycle, and the
clean sorted counterpart.

Linted with a module override placing it under ``repro.core``.
"""


def unsorted_multi(self, chunk_ids):
    locks = [self.chunk_lock(c) for c in chunk_ids]
    acquired = []
    try:
        for lock in locks:
            yield lock.acquire()  # line 13: LCK001 (unsorted self-cycle)
            acquired.append(lock)
        yield None
    finally:
        for lock in reversed(acquired):
            lock.release()


def take_object_then_chunk(self, oid, cid):
    outer = self.object_lock(oid)
    yield outer.acquire()  # line 23: LCK001 (edge object -> chunk)
    try:
        inner = self.chunk_lock(cid)
        yield inner.acquire()
        try:
            yield None
        finally:
            inner.release()
    finally:
        outer.release()


def take_chunk_then_object(self, oid, cid):
    outer = self.chunk_lock(cid)
    yield outer.acquire()  # line 37: LCK001 (edge chunk -> object)
    try:
        inner = self.object_lock(oid)
        yield inner.acquire()
        try:
            yield None
        finally:
            inner.release()
    finally:
        outer.release()


def sorted_multi(self, chunk_ids):
    # Clean: the collection iterates sorted(...) keys, so every task
    # acquires in the same global order.
    locks = [self.chunk_lock(c) for c in sorted(chunk_ids)]
    acquired = []
    try:
        for lock in locks:
            yield lock.acquire()
            acquired.append(lock)
        yield None
    finally:
        for lock in reversed(acquired):
            lock.release()
