"""Deliberately deadlock-prone fixture, runnable under the simulator.

Two tasks calling ``swap("a", "b")`` and ``swap("b", "a")`` acquire the
same pair of ``tier.object`` locks in opposite orders and wedge.  The
static prong (LCK001) flags the nested same-class acquire; the dynamic
prong (:class:`repro.analysis.LockSanitizer`) observes the inversion at
runtime.  Linted with a module override placing it under ``repro.core``.
"""

from repro.sim import Resource, Simulator


class DeadlockTier:
    """Two-object store with per-object locks and no acquisition order."""

    def __init__(self, sim):
        self.sim = sim
        self._locks = {}

    def object_lock(self, oid):
        lock = self._locks.get(oid)
        if lock is None:
            lock = Resource(self.sim, capacity=1, label=f"tier.object:{oid}")
            self._locks[oid] = lock
        return lock

    def swap(self, first, second):
        """Hold ``first`` while taking ``second`` — opposite callers hang."""
        outer = self.object_lock(first)
        yield outer.acquire()  # line 30: LCK001 (same class under itself)
        try:
            inner = self.object_lock(second)
            yield inner.acquire()
            try:
                yield self.sim.timeout(0.1)
            finally:
                inner.release()
        finally:
            outer.release()


def run_deadlock(sim=None):
    """Drive both tasks to the deadlock; returns the simulator used."""
    if sim is None:
        sim = Simulator()
    tier = DeadlockTier(sim)
    sim.process(tier.swap("a", "b"))
    sim.process(tier.swap("b", "a"))
    sim.run()
    return sim
