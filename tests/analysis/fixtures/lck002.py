"""LCK002 fixture: I/O, retry entries, and blocking waits under locks.

Linted with a module override placing it under ``repro.core`` (which is
also FLT001's scope: the unguarded submit lines fire both rules).
"""


def io_under_write_lock(self, key, txn, via):
    lock = self._write_lock(key)
    yield lock.acquire()
    try:
        yield from self.cluster.submit(self.pool, key, txn, via)  # line 12
    finally:
        lock.release()


def retry_under_write_lock(self, tier, key):
    lock = self._write_lock(key)
    yield lock.acquire()
    try:
        result = yield from tier.retrying(lambda: key, op="noop")  # line 21
    finally:
        lock.release()
    return result


def throttle_under_chunk_lock(self, limiter, cid, nbytes):
    lock = self.chunk_lock(cid)
    yield lock.acquire()
    try:
        yield from limiter.throttle(nbytes)  # line 31: blocking, any class
    finally:
        lock.release()


def retry_under_tier_lock(self, tier, oid):
    # Clean for LCK002: the tier deliberately retries its two-phase
    # commits under its own object/chunk locks (the paper's serialised
    # write path); only rados.write regions forbid retry entries.
    lock = self.object_lock(oid)
    yield lock.acquire()
    try:
        result = yield from tier.retrying(lambda: oid, op="noop")
    finally:
        lock.release()
    return result
