"""LCK003 fixture: leaked acquisitions vs properly released shapes.

Linted with a module override placing it under ``repro.core``.
"""


def chain_no_handle(self, key):
    yield self._write_lock(key).acquire()  # line 8: LCK003 (no handle)


def scalar_unguarded(self, key):
    lock = self._write_lock(key)
    yield lock.acquire()  # line 13: LCK003 (no try/finally)
    lock.release()


def multi_across_loop(self, keys):
    locks = [self._write_lock(k) for k in sorted(keys)]
    for lock in locks:
        yield lock.acquire()  # line 20: LCK003 (leaks on mid-loop exit)
    try:
        yield None
    finally:
        for lock in locks:
            lock.release()


def scalar_guarded(self, key):
    lock = self._write_lock(key)
    yield lock.acquire()
    try:
        yield None
    finally:
        lock.release()


def acquired_list_guarded(self, keys):
    locks = [self._write_lock(k) for k in sorted(keys)]
    acquired = []
    try:
        for lock in locks:
            yield lock.acquire()
            acquired.append(lock)
        yield None
    finally:
        for lock in reversed(acquired):
            lock.release()
