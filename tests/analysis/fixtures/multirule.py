"""Multi-rule same-line fixture: LCK002 and FLT001 both fire on an
unguarded substrate submit under a write lock; a targeted suppression
silences exactly one of them.

Linted with a module override placing it under ``repro.core``.
"""


def both_fire(self, key, txn, via):
    lock = self._write_lock(key)
    yield lock.acquire()
    try:
        yield from self.cluster.submit(self.pool, key, txn, via)  # line 13
    finally:
        lock.release()


def one_suppressed(self, key, txn, via):
    lock = self._write_lock(key)
    yield lock.acquire()
    try:
        yield from self.cluster.submit(self.pool, key, txn, via)  # repro-lint: disable=FLT001 -- fixture: lock rule must still fire
    finally:
        lock.release()
