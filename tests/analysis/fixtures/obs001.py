"""OBS001 fixture: span-starting calls that leak vs. properly closed.

Linted with a module override placing it under ``repro.core``.  Line
numbers are asserted in ``test_rules.py`` — keep them stable.
"""


class Worker:
    def leaky(self, tracer, parent):
        s = tracer.root_span("op.write")  # line 10: OBS001 (never closed)
        parent.child("tier.lock_wait")  # line 11: OBS001 (discarded)
        s.tag(oid="x")

    def leaky_partial_finish(self, tracer):
        s = tracer.start_span("op.read")  # line 15: OBS001 (finish not in finally)
        do_work()
        s.finish()

    def closed_with(self, tracer, parent):
        with tracer.root_span("op.write") as op:  # clean: with closes it
            with op.child("tier.lock_wait"):  # clean: bare with
                do_work()

    def closed_try_finally(self, tracer):
        s = tracer.start_span("op.read")  # clean: finally finishes it
        try:
            do_work()
        finally:
            s.finish()

    def closed_with_later(self, parent):
        s = parent.child("engine.fingerprint")  # clean: entered below
        prepare()
        with s:
            do_work()

    def factory(self, tracer):
        return tracer.root_span("op.delete")  # clean: caller owns it

    def unrelated_child_method(self, node):
        node.child("left")  # line 41: OBS001 (name-based rule is blunt;
        # non-span .child() calls in repro.* must suppress or rename)


def do_work():
    pass


def prepare():
    pass
