"""REF001 fixture: chunk_ref acquisitions with no release path.

Linted with a module override placing it under ``repro.core`` so the
component under check is ``core``; the paired fixture adds the release.
"""


def take_reference(tier, fp, ref, data, via):
    stored = yield from tier.chunk_ref(fp, ref, data, via)  # line 9: REF001 when unpaired
    return stored
