"""REF001 companion fixture: the component's release path.

Linting this together with ``ref001.py`` (same ``core`` component)
pairs the acquisition with a reachable release, so REF001 stays quiet.
"""


def drop_reference(tier, fp, ref, via):
    yield from tier.chunk_deref(fp, ref, via)
