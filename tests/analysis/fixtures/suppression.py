"""Suppression fixture: justified, unjustified, and standalone forms.

Linted with a module override placing it under ``repro.core``.
"""

import time


def justified_trailing():
    return time.time()  # repro-lint: disable=DET001 -- fixture: observability only


def unjustified_trailing():
    return time.time()  # repro-lint: disable=DET001


def justified_standalone():
    # repro-lint: disable=DET001 -- fixture: next-line suppression form
    return time.time()
