"""CLI behaviour of ``repro lint`` plus the live-tree meta-test."""

import json

from repro.cli import main


def seeded_violation_tree(tmp_path):
    """A tiny ``repro`` tree with one deliberate DET001 violation."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "clocky.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n",
        encoding="utf-8",
    )
    return tmp_path


def test_lint_exits_nonzero_on_seeded_violation(tmp_path, capsys):
    tree = seeded_violation_tree(tmp_path)
    assert main(["lint", str(tree)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "clocky.py" in out


def test_lint_json_output_and_artifact(tmp_path, capsys):
    tree = seeded_violation_tree(tmp_path)
    artifact = tmp_path / "findings.json"
    code = main(
        ["lint", "--format", "json", "--out", str(artifact), str(tree)]
    )
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["errors"] == 1
    assert doc["findings"][0]["rule"] == "DET001"
    assert json.loads(artifact.read_text(encoding="utf-8")) == doc


def test_lint_rules_filter(tmp_path):
    tree = seeded_violation_tree(tmp_path)
    # Only FLT001 selected: the DET001 violation is out of scope.
    assert main(["lint", "--rules", "FLT001", str(tree)]) == 0
    assert main(["lint", "--rules", "DET001", str(tree)]) == 1


def test_lint_unknown_rule_id_is_a_usage_error(tmp_path):
    assert main(["lint", "--rules", "NOPE999", str(tmp_path)]) == 2


def test_lint_baseline_write_then_pass(tmp_path, capsys):
    tree = seeded_violation_tree(tmp_path)
    baseline = tmp_path / "lint-baseline.json"
    assert (
        main(["lint", "--baseline", str(baseline), "--write-baseline", str(tree)])
        == 0
    )
    assert baseline.exists()
    # With the violation grandfathered, the same tree now passes...
    assert main(["lint", "--baseline", str(baseline), str(tree)]) == 0
    # ...but a missing baseline file is a usage error, not a silent pass.
    assert main(["lint", "--baseline", str(tmp_path / "absent.json"), str(tree)]) == 2


def test_live_tree_lints_clean(capsys):
    """Meta-test: the shipped source tree passes its own linter.

    Guards the acceptance invariant that all true-positive violations
    are fixed (not baselined) and every suppression carries a
    justification.
    """
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out
