"""CLI behaviour of ``repro lint`` / ``repro sanitize`` plus the
live-tree meta-tests."""

import json
import shutil
import subprocess

import pytest

from repro.cli import main


def seeded_violation_tree(tmp_path):
    """A tiny ``repro`` tree with one deliberate DET001 violation."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "clocky.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n",
        encoding="utf-8",
    )
    return tmp_path


def test_lint_exits_nonzero_on_seeded_violation(tmp_path, capsys):
    tree = seeded_violation_tree(tmp_path)
    assert main(["lint", str(tree)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "clocky.py" in out


def test_lint_json_output_and_artifact(tmp_path, capsys):
    tree = seeded_violation_tree(tmp_path)
    artifact = tmp_path / "findings.json"
    code = main(
        ["lint", "--format", "json", "--out", str(artifact), str(tree)]
    )
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["errors"] == 1
    assert doc["findings"][0]["rule"] == "DET001"
    assert json.loads(artifact.read_text(encoding="utf-8")) == doc


def test_lint_rules_filter(tmp_path):
    tree = seeded_violation_tree(tmp_path)
    # Only FLT001 selected: the DET001 violation is out of scope.
    assert main(["lint", "--rules", "FLT001", str(tree)]) == 0
    assert main(["lint", "--rules", "DET001", str(tree)]) == 1


def test_lint_unknown_rule_id_is_a_usage_error(tmp_path):
    assert main(["lint", "--rules", "NOPE999", str(tmp_path)]) == 2


def test_lint_baseline_write_then_pass(tmp_path, capsys):
    tree = seeded_violation_tree(tmp_path)
    baseline = tmp_path / "lint-baseline.json"
    assert (
        main(["lint", "--baseline", str(baseline), "--write-baseline", str(tree)])
        == 0
    )
    assert baseline.exists()
    # With the violation grandfathered, the same tree now passes...
    assert main(["lint", "--baseline", str(baseline), str(tree)]) == 0
    # ...but a missing baseline file is a usage error, not a silent pass.
    assert main(["lint", "--baseline", str(tmp_path / "absent.json"), str(tree)]) == 2


def _git(tree, *args):
    subprocess.run(
        ["git", *args],
        cwd=str(tree),
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(tree),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


def _json_tail(out):
    """Parse the JSON document that follows the notice lines."""
    return json.loads(out[out.index("{"):])


needs_git = pytest.mark.skipif(
    shutil.which("git") is None, reason="git not available"
)


@needs_git
def test_changed_only_matches_full_run(tmp_path, monkeypatch, capsys):
    tree = seeded_violation_tree(tmp_path)
    _git(tree, "init", "-q")
    _git(tree, "add", "-A")
    _git(tree, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tree)

    # Nothing changed: the changed-only run checks zero files and passes
    # even though the tree as a whole has a violation.
    assert main(["lint", "--changed-only", "HEAD", str(tree)]) == 0
    out = capsys.readouterr().out
    assert "0 changed file(s)" in out

    # Touch the violating file: the changed-only run must now report
    # exactly what a full run reports for the per-module rules.
    clocky = tree / "repro" / "core" / "clocky.py"
    clocky.write_text(
        clocky.read_text(encoding="utf-8") + "\n# touched\n", encoding="utf-8"
    )
    assert main(["lint", "--format", "json", str(tree)]) == 1
    full = _json_tail(capsys.readouterr().out)
    assert (
        main(["lint", "--changed-only", "HEAD", "--format", "json", str(tree)])
        == 1
    )
    changed = _json_tail(capsys.readouterr().out)
    assert changed["findings"] == full["findings"]
    assert changed["summary"]["files_checked"] == 1


@needs_git
def test_changed_only_sees_untracked_files(tmp_path, monkeypatch, capsys):
    tree = seeded_violation_tree(tmp_path)
    _git(tree, "init", "-q")
    _git(tree, "add", "-A")
    _git(tree, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tree)
    (tree / "repro" / "core" / "fresh.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n",
        encoding="utf-8",
    )
    assert main(["lint", str(tree), "--changed-only"]) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out and "DET001" in out


def test_changed_only_skips_cross_module_rules(tmp_path, monkeypatch, capsys):
    if shutil.which("git") is None:
        pytest.skip("git not available")
    tree = seeded_violation_tree(tmp_path)
    _git(tree, "init", "-q")
    _git(tree, "add", "-A")
    _git(tree, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tree)
    assert (
        main(["lint", str(tree), "--changed-only", "--rules", "LCK001"]) == 0
    )
    out = capsys.readouterr().out
    assert "skipping cross-module rule(s) LCK001" in out


def test_sanitize_cli_runs_clean_and_writes_artifact(tmp_path, capsys):
    artifact = tmp_path / "sanitize.json"
    assert main(["--seed", "11", "sanitize", "--out", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "verdict: CLEAN" in out
    doc = json.loads(artifact.read_text(encoding="utf-8"))
    assert doc["clean"] is True and doc["seed"] == 11
    assert set(doc["scenarios"]) == {"faults", "elasticity"}
    for scenario in doc["scenarios"].values():
        assert scenario["scenario_ok"] is True
        assert scenario["sanitizer"]["clean"] is True
        assert scenario["sanitizer"]["violations"] == []
        assert scenario["sanitizer"]["acquires"] > 0


def test_live_tree_lints_clean(capsys):
    """Meta-test: the shipped source tree passes its own linter.

    Guards the acceptance invariant that all true-positive violations
    are fixed (not baselined) and every suppression carries a
    justification.
    """
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out
