"""Engine-level behaviour: suppressions, baselines, JSON output."""

import json
from pathlib import Path

from repro.analysis import Baseline, Linter, default_rules, format_json

FIXTURES = Path(__file__).parent / "fixtures"


def lint(path, module, baseline=None):
    linter = Linter(default_rules(), baseline=baseline)
    return linter.run_paths(
        [str(path)], module_overrides={str(path): module}
    )


def test_justified_suppressions_suppress_and_are_counted():
    result = lint(FIXTURES / "suppression.py", "repro.core.fixture_sup")
    # Lines 10 (trailing) and 19 (standalone next-line form) are
    # suppressed with justification; line 14 lacks one.
    assert result.suppressed == 2
    by_rule = {(f.rule, f.line) for f in result.findings}
    assert ("DET001", 14) in by_rule  # unjustified: violation kept
    assert ("LINT000", 14) in by_rule  # ...and the directive is flagged
    assert ("DET001", 10) not in by_rule
    assert ("DET001", 19) not in by_rule


def test_unrecognised_directive_is_a_meta_finding(tmp_path):
    bad = tmp_path / "repro" / "core" / "bad_directive.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("# repro-lint: frobnicate=yes\nx = 1\n", encoding="utf-8")
    result = Linter(default_rules()).run_paths([str(bad)])
    assert [f.rule for f in result.findings] == ["LINT000"]
    assert "unrecognised" in result.findings[0].message


def test_baseline_roundtrip_grandfathers_findings(tmp_path):
    fixture = FIXTURES / "det001.py"
    first = lint(fixture, "repro.core.fixture_det001")
    assert len(first.findings) == 3 and not first.ok

    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(first.findings).save(str(baseline_path))
    loaded = Baseline.load(str(baseline_path))

    second = lint(fixture, "repro.core.fixture_det001", baseline=loaded)
    assert second.findings == []
    assert len(second.baselined) == 3
    assert second.ok


def test_baseline_budget_does_not_cover_new_findings(tmp_path):
    fixture = FIXTURES / "det001.py"
    first = lint(fixture, "repro.core.fixture_det001")
    # Grandfather only one of the three findings: the budget covers one
    # occurrence, the other two stay new.
    partial = Baseline.from_findings(first.findings[:1])
    second = lint(fixture, "repro.core.fixture_det001", baseline=partial)
    assert len(second.baselined) == 1
    assert len(second.findings) == 2
    assert not second.ok


def test_baseline_file_is_line_number_free(tmp_path):
    first = lint(FIXTURES / "det001.py", "repro.core.fixture_det001")
    path = tmp_path / "baseline.json"
    Baseline.from_findings(first.findings).save(str(path))
    doc = json.loads(path.read_text(encoding="utf-8"))
    assert doc["version"] == 1
    for item in doc["findings"]:
        assert set(item) == {"rule", "module", "message", "count"}


def test_json_output_shape():
    result = lint(FIXTURES / "det001.py", "repro.core.fixture_det001")
    doc = json.loads(format_json(result))
    assert doc["version"] == 1
    assert doc["summary"]["errors"] == 3
    assert doc["summary"]["ok"] is False
    assert doc["summary"]["files_checked"] == 1
    finding = doc["findings"][0]
    assert finding["rule"] == "DET001"
    assert finding["module"] == "repro.core.fixture_det001"
    assert finding["line"] == 12
    assert finding["severity"] == "error"


def test_syntax_error_becomes_parse_error_finding(tmp_path):
    bad = tmp_path / "repro" / "core" / "broken.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n", encoding="utf-8")
    result = Linter(default_rules()).run_paths([str(bad)])
    assert not result.ok
    assert result.parse_errors and result.parse_errors[0].rule == "LINT000"


def test_module_name_derivation(tmp_path):
    from repro.analysis import module_name_for

    assert (
        module_name_for(Path("src/repro/core/tier.py")) == "repro.core.tier"
    )
    assert module_name_for(Path("src/repro/util/__init__.py")) == "repro.util"
    assert module_name_for(Path("elsewhere/thing.py")) == "thing"
