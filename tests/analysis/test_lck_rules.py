"""Static prong of the concurrency checker: the LCK rule family fires
on the seeded fixtures (at the asserted lines), stays quiet on the clean
counterparts, and composes with suppressions and baselines when two
rules hit the same line."""

from pathlib import Path

from repro.analysis import Baseline, Linter, default_rules

from .test_rules import found, lint_fixtures

FIXTURES = Path(__file__).parent / "fixtures"


def test_lck001_flags_unsorted_multi_and_cross_class_cycle():
    result = lint_fixtures({"lck001.py": "repro.core.fixture_lck001"})
    # 13: unsorted multi-acquire self-cycle; 23/37: the object->chunk /
    # chunk->object edges that close a cross-class cycle.  The sorted
    # multi-acquire stays quiet.
    assert found(result, "LCK001") == (13, 23, 37)
    assert not result.ok


def test_lck001_acyclic_tree_is_clean():
    # lck003.py acquires plenty of locks but only sorted multi-acquires
    # and single-class regions: no edge participates in a cycle.
    result = lint_fixtures({"lck003.py": "repro.core.fixture_lck003"})
    assert found(result, "LCK001") == ()


def test_lck002_flags_io_retry_and_blocking_under_locks():
    result = lint_fixtures({"lck002.py": "repro.core.fixture_lck002"})
    # 12: substrate I/O under a write lock; 21: retry entry under a
    # write lock; 31: unbounded throttle under a chunk lock.  The
    # retry-under-tier-lock counterpart (the paper's serialised write
    # path) stays quiet.
    assert found(result, "LCK002") == (12, 21, 31)
    assert not result.ok


def test_lck003_flags_leaks_but_not_guarded_shapes():
    result = lint_fixtures({"lck003.py": "repro.core.fixture_lck003"})
    # 8: factory chain with no handle; 13: scalar without try/finally;
    # 20: multi-acquire loop whose try sits beyond the loop.  Both
    # guarded shapes (scalar and acquired-list) stay quiet.
    assert found(result, "LCK003") == (8, 13, 20)
    assert not result.ok


def test_lck001_flags_deadlock_fixture_statically():
    result = lint_fixtures(
        {"lck001_deadlock.py": "repro.core.fixture_lck001_deadlock"}
    )
    assert found(result, "LCK001") == (30,)


def test_two_rules_fire_on_one_line():
    result = lint_fixtures({"multirule.py": "repro.core.fixture_multirule"})
    by_line = {(f.rule, f.line) for f in result.findings}
    assert ("LCK002", 13) in by_line
    assert ("FLT001", 13) in by_line


def test_suppression_is_per_rule_on_a_shared_line():
    result = lint_fixtures({"multirule.py": "repro.core.fixture_multirule"})
    by_line = {(f.rule, f.line) for f in result.findings}
    # Line 22 suppresses FLT001 with a justification; LCK002 still fires.
    assert ("LCK002", 22) in by_line
    assert ("FLT001", 22) not in by_line
    assert result.suppressed == 1


def test_baseline_is_per_rule_on_a_shared_line():
    path = FIXTURES / "multirule.py"
    module = "repro.core.fixture_multirule"
    first = Linter(default_rules()).run_paths(
        [str(path)], module_overrides={str(path): module}
    )
    # Grandfather only the FLT001 findings: LCK002 must stay new even
    # though it anchors to the very same line.
    partial = Baseline.from_findings(
        [f for f in first.findings if f.rule == "FLT001"]
    )
    second = Linter(default_rules(), baseline=partial).run_paths(
        [str(path)], module_overrides={str(path): module}
    )
    assert {f.rule for f in second.findings} == {"LCK002"}
    assert all(f.rule == "FLT001" for f in second.baselined)
    assert not second.ok
