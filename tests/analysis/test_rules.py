"""Per-rule fixture tests: every rule fires on its seeded violations —
at the asserted rule IDs *and* line numbers — and stays quiet on the
clean counterparts in the same file."""

from pathlib import Path

from repro.analysis import Linter, default_rules

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixtures(spec, rules=None):
    """Lint fixture files "as if" at package locations.

    ``spec`` maps fixture filename -> dotted module override.
    """
    paths = [str(FIXTURES / name) for name in spec]
    overrides = {
        str(FIXTURES / name): module for name, module in spec.items()
    }
    linter = Linter(rules if rules is not None else default_rules())
    return linter.run_paths(paths, module_overrides=overrides)


def found(result, rule):
    """(line, ...) tuple of ``rule``'s findings, sorted."""
    return tuple(sorted(f.line for f in result.findings if f.rule == rule))


def test_det001_flags_wall_clock_calls():
    result = lint_fixtures({"det001.py": "repro.core.fixture_det001"})
    assert found(result, "DET001") == (12, 13, 14)
    assert not result.ok


def test_det001_out_of_scope_module_is_clean():
    # The same file placed under repro.perf (the sanctioned home for
    # wall-clock timing) must not trigger DET001.
    result = lint_fixtures({"det001.py": "repro.perf.fixture_det001"})
    assert found(result, "DET001") == ()


def test_det002_flags_global_and_unseeded_randomness():
    result = lint_fixtures({"det002.py": "repro.workloads.fixture_det002"})
    assert found(result, "DET002") == (13, 14, 15, 16, 17)


def test_det003_flags_set_iteration_but_not_safe_consumers():
    result = lint_fixtures({"det003.py": "repro.core.fixture_det003"})
    assert found(result, "DET003") == (10, 16, 20, 26)


def test_ref001_flags_unpaired_acquisition():
    result = lint_fixtures({"ref001.py": "repro.core.fixture_ref001"})
    assert found(result, "REF001") == (9,)


def test_ref001_quiet_when_component_has_release_path():
    result = lint_fixtures(
        {
            "ref001.py": "repro.core.fixture_ref001",
            "ref001_release.py": "repro.core.fixture_ref001_release",
        }
    )
    assert found(result, "REF001") == ()


def test_flt001_flags_only_unguarded_io():
    result = lint_fixtures({"flt001.py": "repro.core.fixture_flt001"})
    assert found(result, "FLT001") == (10, 14)


def test_api001_flags_cluster_submodule_imports():
    result = lint_fixtures({"api001.py": "repro.workloads.fixture_api001"})
    assert found(result, "API001") == (6, 7)


def test_api001_allows_cluster_package_importing_itself():
    result = lint_fixtures({"api001.py": "repro.cluster.fixture_api001"})
    assert found(result, "API001") == ()


def test_obs001_flags_leaked_spans_but_not_closed_ones():
    result = lint_fixtures({"obs001.py": "repro.core.fixture_obs001"})
    assert found(result, "OBS001") == (10, 11, 15, 41)
    assert not result.ok


def test_obs001_out_of_scope_module_is_clean():
    result = lint_fixtures({"obs001.py": "fixture_obs001"})
    assert found(result, "OBS001") == ()


def test_rule_filtering_runs_only_selected_rules():
    from repro.analysis import rules_by_id

    only_det001 = [rules_by_id()["DET001"]]
    result = lint_fixtures(
        {"det002.py": "repro.workloads.fixture_det002"}, rules=only_det001
    )
    assert result.findings == []


def test_every_rule_has_id_title_and_severity():
    ids = set()
    for rule in default_rules():
        assert rule.id and rule.id not in ids
        ids.add(rule.id)
        assert rule.title
        assert rule.severity in ("warning", "error")
    assert len(ids) == 10
