"""Dynamic prong of the concurrency checker: the runtime LockSanitizer.

Covers report determinism and JSON round-tripping, the clean verdict on
well-ordered lock traffic, the deadlock fixture being caught by *both*
prongs, and the abandoned-waiter regression (an interrupted queued
acquirer must not wedge the resource)."""

import importlib.util
import json
from pathlib import Path

from repro.analysis import LockSanitizer
from repro.sim import Interrupt, Resource, Simulator

from .test_rules import found, lint_fixtures

FIXTURES = Path(__file__).parent / "fixtures"


def load_fixture(name):
    """Import a fixture file as a throwaway module (it is runnable)."""
    spec = importlib.util.spec_from_file_location(
        f"lck_fixture_{name}", FIXTURES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_clean_ordered_traffic_reports_clean():
    sim = Simulator()
    sanitizer = LockSanitizer().attach(sim)
    locks = [
        Resource(sim, capacity=1, label=f"tier.chunk:{i}") for i in range(3)
    ]

    def worker(delay):
        yield sim.timeout(delay)
        acquired = []
        try:
            for lock in locks:  # same global order in every task
                yield lock.acquire()
                acquired.append(lock)
            yield sim.timeout(0.1)
        finally:
            for lock in reversed(acquired):
                lock.release()

    sim.process(worker(0.0))
    sim.process(worker(0.05))
    sim.run()
    report = sanitizer.report()
    assert report["clean"] is True
    assert report["violations"] == []
    assert report["tasks"] == 2
    assert report["acquires"] == report["grants"] == report["releases"] == 6
    # Same-class edges from the multi-acquire are recorded but benign.
    assert all(e["from"] == e["to"] == "tier.chunk" for e in report["edges"])


def test_report_round_trips_through_json():
    sim = Simulator()
    sanitizer = LockSanitizer().attach(sim)
    lock = Resource(sim, capacity=1, label="rados.write:0/1/obj")

    def worker():
        yield lock.acquire()
        try:
            yield sim.timeout(0.1)
        finally:
            lock.release()

    sim.process(worker())
    sim.run()
    report = sanitizer.report()
    assert json.loads(sanitizer.to_json()) == report
    # Deterministic: building the report twice yields the same document.
    assert sanitizer.report() == report


def test_deadlock_fixture_is_caught_by_both_prongs():
    # Static: LCK001 flags the nested same-class acquire.
    result = lint_fixtures(
        {"lck001_deadlock.py": "repro.core.fixture_lck001_deadlock"}
    )
    assert found(result, "LCK001") == (30,)

    # Dynamic: the same code, actually run, wedges — and the sanitizer
    # names the inversion rather than just the symptom.
    fixture = load_fixture("lck001_deadlock")
    sim = Simulator()
    sanitizer = LockSanitizer().attach(sim)
    fixture.run_deadlock(sim)
    report = sanitizer.report()
    assert report["clean"] is False
    kinds = {v["type"] for v in report["violations"]}
    assert "order-inversion" in kinds
    assert "waiting-at-finish" in kinds  # the wedged tasks themselves
    inversion = next(
        v for v in report["violations"] if v["type"] == "order-inversion"
    )
    assert inversion["lock_class"] == "tier.object"
    assert inversion["locks"] == ["tier.object:a", "tier.object:b"]


def test_unlabelled_resources_are_invisible():
    sim = Simulator()
    sanitizer = LockSanitizer().attach(sim)
    lock = Resource(sim, capacity=1)  # no label: not a tracked lock

    def worker():
        yield lock.acquire()
        lock.release()

    sim.process(worker())
    sim.run()
    report = sanitizer.report()
    assert report["acquires"] == 0 and report["clean"] is True


def test_interrupted_waiter_does_not_wedge_the_resource():
    # Regression: task B queues on a held lock and is interrupted (a
    # retry deadline); its abandoned waiter slot must not absorb the
    # release, or C can never acquire.
    sim = Simulator()
    sanitizer = LockSanitizer().attach(sim)
    lock = Resource(sim, capacity=1, label="tier.object:x")
    order = []

    def holder():
        yield lock.acquire()
        try:
            yield sim.timeout(1.0)
        finally:
            lock.release()

    def impatient():
        yield sim.timeout(0.1)
        try:
            yield lock.acquire()
        except Interrupt:
            order.append("interrupted")
            return
        lock.release()

    def successor():
        yield sim.timeout(0.2)
        yield lock.acquire()
        order.append("acquired")
        lock.release()

    sim.process(holder())
    victim = sim.process(impatient())

    def killer():
        yield sim.timeout(0.5)
        victim.interrupt("deadline")

    sim.process(killer())
    sim.process(successor())
    sim.run()
    assert order == ["interrupted", "acquired"]
    report = sanitizer.report()
    assert report["cancelled"] == 1
    assert report["clean"] is True
