"""Tests for the content-defined (gear/FastCDC-style) chunker."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking import GearChunker, validate_chunking


def random_bytes(n, seed=0):
    return random.Random(seed).randbytes(n)


def test_chunks_tile_payload():
    data = random_bytes(100_000)
    chunker = GearChunker(avg_size=1024)
    validate_chunking(data, chunker.chunk(data))


def test_respects_min_and_max():
    data = random_bytes(200_000)
    chunker = GearChunker(avg_size=1024)
    spans = chunker.chunk(data)
    for span in spans[:-1]:
        assert chunker.min_size <= span.length <= chunker.max_size
    assert spans[-1].length <= chunker.max_size


def test_average_size_near_target():
    data = random_bytes(1_000_000)
    chunker = GearChunker(avg_size=2048)
    spans = chunker.chunk(data)
    avg = sum(s.length for s in spans) / len(spans)
    assert 0.5 * 2048 < avg < 2.0 * 2048


def test_boundaries_are_content_defined():
    """Inserting bytes near the front shifts boundaries only locally:
    most chunks further in are identical (the CDC selling point)."""
    base = random_bytes(300_000, seed=1)
    shifted = b"INSERTED" + base
    chunker = GearChunker(avg_size=1024)
    chunks_a = {s.data for s in chunker.chunk(base)}
    chunks_b = {s.data for s in chunker.chunk(shifted)}
    common = len(chunks_a & chunks_b)
    assert common / len(chunks_a) > 0.9


def test_static_misses_shifted_duplicates_cdc_finds():
    """The contrast that motivates CDC: under a byte shift, static
    chunking finds almost no duplicate chunks."""
    from repro.chunking import StaticChunker

    base = random_bytes(300_000, seed=2)
    shifted = b"X" + base
    static = StaticChunker(1024)
    a = {s.data for s in static.chunk(base)}
    b = {s.data for s in static.chunk(shifted)}
    assert len(a & b) / len(a) < 0.05


def test_deterministic():
    data = random_bytes(50_000, seed=3)
    assert GearChunker(avg_size=512).chunk(data) == GearChunker(avg_size=512).chunk(data)


def test_empty_payload():
    assert GearChunker(avg_size=1024).chunk(b"") == []


def test_invalid_params():
    with pytest.raises(ValueError):
        GearChunker(avg_size=1000)  # not a power of two
    with pytest.raises(ValueError):
        GearChunker(avg_size=32)  # too small
    with pytest.raises(ValueError):
        GearChunker(avg_size=1024, min_size=2048)  # min > avg


@given(data=st.binary(max_size=20_000))
@settings(max_examples=30, deadline=None)
def test_cdc_tiles_any_payload(data):
    chunker = GearChunker(avg_size=256)
    validate_chunking(data, chunker.chunk(data))
