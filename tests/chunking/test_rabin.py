"""Tests for the Rabin-fingerprint chunker."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking import RabinChunker, validate_chunking
from repro.chunking.rabin import _MOD_TABLE, _OUT_TABLE, _WINDOW_SIZE, _append_byte_raw


def random_bytes(n, seed=0):
    return random.Random(seed).randbytes(n)


def rolling_fp(data: bytes) -> int:
    """Reference: roll the fingerprint over all of ``data``."""
    fp = 0
    window = bytearray(_WINDOW_SIZE)
    wpos = 0
    for byte in data:
        fp = _append_byte_raw(fp, byte, _MOD_TABLE) ^ _OUT_TABLE[window[wpos]]
        window[wpos] = byte
        wpos = (wpos + 1) % _WINDOW_SIZE
    return fp


def test_fingerprint_depends_only_on_window():
    """The defining Rabin property: after >= window bytes, the rolling
    fingerprint is a function of the last WINDOW_SIZE bytes only."""
    suffix = random_bytes(_WINDOW_SIZE, seed=1)
    a = random_bytes(500, seed=2) + suffix
    b = random_bytes(123, seed=3) + suffix
    assert rolling_fp(a) == rolling_fp(b)


def test_fingerprint_differs_for_different_windows():
    a = rolling_fp(random_bytes(200, seed=4))
    b = rolling_fp(random_bytes(200, seed=5))
    assert a != b


def test_chunks_tile_payload():
    data = random_bytes(120_000, seed=6)
    chunker = RabinChunker(avg_size=1024)
    validate_chunking(data, chunker.chunk(data))


def test_respects_min_max():
    data = random_bytes(200_000, seed=7)
    chunker = RabinChunker(avg_size=1024)
    spans = chunker.chunk(data)
    for span in spans[:-1]:
        assert chunker.min_size <= span.length <= chunker.max_size


def test_average_near_target():
    data = random_bytes(1_000_000, seed=8)
    chunker = RabinChunker(avg_size=2048)
    spans = chunker.chunk(data)
    avg = sum(s.length for s in spans) / len(spans)
    assert 0.4 * 2048 < avg < 2.5 * 2048


def test_shift_resistance():
    """Insertion early in the stream leaves later boundaries intact."""
    base = random_bytes(300_000, seed=9)
    chunker = RabinChunker(avg_size=1024)
    a = {s.data for s in chunker.chunk(base)}
    b = {s.data for s in chunker.chunk(b"INSERT" + base)}
    assert len(a & b) / len(a) > 0.9


def test_deterministic():
    data = random_bytes(50_000, seed=10)
    assert RabinChunker(avg_size=512).chunk(data) == RabinChunker(avg_size=512).chunk(data)


def test_param_validation():
    with pytest.raises(ValueError):
        RabinChunker(avg_size=100)
    with pytest.raises(ValueError):
        RabinChunker(avg_size=1000)  # not a power of two
    with pytest.raises(ValueError):
        RabinChunker(avg_size=1024, min_size=4096)


@given(data=st.binary(max_size=20_000))
@settings(max_examples=20, deadline=None)
def test_tiles_any_payload(data):
    validate_chunking(data, RabinChunker(avg_size=512).chunk(data))
