"""Tests for the static chunker."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chunking import ChunkSpan, StaticChunker, validate_chunking


def test_exact_multiple():
    spans = StaticChunker(4).chunk(b"abcdefgh")
    assert [(s.offset, s.length) for s in spans] == [(0, 4), (4, 4)]
    assert spans[0].data == b"abcd"
    assert spans[1].data == b"efgh"


def test_trailing_short_chunk():
    spans = StaticChunker(4).chunk(b"abcdef")
    assert [(s.offset, s.length) for s in spans] == [(0, 4), (4, 2)]


def test_empty_payload():
    assert StaticChunker(4).chunk(b"") == []


def test_payload_smaller_than_chunk():
    spans = StaticChunker(100).chunk(b"tiny")
    assert len(spans) == 1
    assert spans[0].data == b"tiny"


def test_invalid_chunk_size():
    with pytest.raises(ValueError):
        StaticChunker(0)


def test_index_of():
    chunker = StaticChunker(10)
    assert chunker.index_of(0) == 0
    assert chunker.index_of(9) == 0
    assert chunker.index_of(10) == 1
    with pytest.raises(ValueError):
        chunker.index_of(-1)


def test_aligned_range():
    chunker = StaticChunker(10)
    assert list(chunker.aligned_range(0, 10)) == [0]
    assert list(chunker.aligned_range(5, 10)) == [0, 1]
    assert list(chunker.aligned_range(10, 1)) == [1]
    assert list(chunker.aligned_range(0, 0)) == []


def test_span_validation():
    with pytest.raises(ValueError):
        ChunkSpan(offset=-1, length=1, data=b"a")
    with pytest.raises(ValueError):
        ChunkSpan(offset=0, length=2, data=b"a")


@given(data=st.binary(max_size=4096), size=st.integers(min_value=1, max_value=1000))
def test_static_chunks_tile_payload(data, size):
    spans = StaticChunker(size).chunk(data)
    validate_chunking(data, spans)
    assert all(s.length == size for s in spans[:-1])
    if spans:
        assert 1 <= spans[-1].length <= size


@given(data=st.binary(min_size=1, max_size=2048))
def test_same_content_same_chunks(data):
    a = StaticChunker(64).chunk(data)
    b = StaticChunker(64).chunk(data)
    assert a == b
