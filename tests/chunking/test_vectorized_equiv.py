"""Cross-validation: vectorized and reference scanners are byte-identical.

The NumPy-vectorized boundary scan is only allowed to exist because it
emits exactly the reference scanner's ChunkSpans — this module is the
Hypothesis property pinning that down for both CDC chunkers across
random buffers, size configs, and memoryview/offset inputs, plus a
subprocess check that ``REPRO_NO_NUMPY`` really forces the fallback.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.chunking import GearChunker, RabinChunker, validate_chunking
from repro.chunking._vector import HAVE_NUMPY

if not HAVE_NUMPY:
    pytest.skip(
        "NumPy unavailable (or disabled via REPRO_NO_NUMPY)",
        allow_module_level=True,
    )

# Configs chosen to hit the scan's edge regimes: default min/max, a
# one-byte min (warm-up shorter than the rolling window), degenerate
# min == avg == max (every cut forced by the clamp), and a wide
# min/max spread (long easy-mask segments).
GEAR_CONFIGS = [
    dict(avg_size=256),
    dict(avg_size=512, min_size=1),
    dict(avg_size=1024, min_size=1024, max_size=1024),
    dict(avg_size=256, min_size=8, max_size=4096),
    dict(avg_size=64, min_size=1, max_size=64 * 8),
]
RABIN_CONFIGS = [
    dict(avg_size=256),
    dict(avg_size=512, min_size=1),
    dict(avg_size=1024, min_size=1024, max_size=1024),
    dict(avg_size=256, min_size=16, max_size=4096),
]


def assert_identical_spans(chunker_cls, cfg, data):
    ref = chunker_cls(vectorized=False, **cfg).chunk(data)
    vec = chunker_cls(vectorized=True, **cfg).chunk(data)
    assert [(s.offset, s.length) for s in vec] == [
        (s.offset, s.length) for s in ref
    ]
    assert vec == ref  # ChunkSpan equality also compares content
    validate_chunking(data, vec)


@settings(max_examples=60, deadline=None)
@given(data=st.binary(max_size=16384), cfg=st.sampled_from(GEAR_CONFIGS))
def test_gear_vectorized_equals_reference(data, cfg):
    assert_identical_spans(GearChunker, cfg, data)


@settings(max_examples=40, deadline=None)
@given(data=st.binary(max_size=16384), cfg=st.sampled_from(RABIN_CONFIGS))
def test_rabin_vectorized_equals_reference(data, cfg):
    assert_identical_spans(RabinChunker, cfg, data)


@settings(max_examples=30, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=8192),
    offset=st.integers(min_value=0, max_value=512),
    cls=st.sampled_from([GearChunker, RabinChunker]),
)
def test_memoryview_offset_inputs(data, offset, cls):
    """Offset memoryview slices (the tier's zero-copy path) match too."""
    view = memoryview(data)[min(offset, len(data)) :]
    cfg = dict(avg_size=256, min_size=16)
    ref = cls(vectorized=False, **cfg).chunk(view)
    vec = cls(vectorized=True, **cfg).chunk(view)
    assert [(s.offset, s.length) for s in vec] == [(s.offset, s.length) for s in ref]
    assert [bytes(s.data) for s in vec] == [bytes(s.data) for s in ref]


@pytest.mark.parametrize(
    "payload",
    [
        b"",
        bytes(50_000),
        b"\xff" * 50_000,
        bytes(range(256)) * 200,
        b"abcd" * 12_000,
    ],
    ids=["empty", "zeros", "ones", "ramp", "repeat4"],
)
def test_structured_corpora(payload):
    """Degenerate/repetitive streams (worst cases for rolling hashes)."""
    for cls, configs in ((GearChunker, GEAR_CONFIGS), (RabinChunker, RABIN_CONFIGS)):
        for cfg in configs:
            assert_identical_spans(cls, cfg, payload)


def test_auto_selects_vectorized_when_numpy_present():
    assert GearChunker(avg_size=256).vectorized is True
    assert RabinChunker(avg_size=256).vectorized is True


def test_repro_no_numpy_forces_fallback():
    """REPRO_NO_NUMPY=1 must flip chunking *and* EC to pure Python."""
    code = (
        "from repro.chunking import GearChunker, RabinChunker\n"
        "from repro.chunking._vector import HAVE_NUMPY\n"
        "from repro.cluster.ec import ReedSolomon\n"
        "assert not HAVE_NUMPY\n"
        "for cls in (GearChunker, RabinChunker):\n"
        "    c = cls(avg_size=256)\n"
        "    assert c.vectorized is False\n"
        "    spans = c.chunk(bytes(range(256)) * 40)\n"
        "    assert sum(s.length for s in spans) == 256 * 40\n"
        "    try:\n"
        "        cls(avg_size=256, vectorized=True)\n"
        "    except RuntimeError:\n"
        "        pass\n"
        "    else:\n"
        "        raise AssertionError('vectorized=True should fail')\n"
        "rs = ReedSolomon(k=2, m=1)\n"
        "shards = rs.encode(b'hello world!')\n"
        "assert rs.decode([None, shards[1], shards[2]], length=12) == b'hello world!'\n"
        "assert rs.reconstruct_shard([shards[0], None, shards[2]], 1, 12) == shards[1]\n"
    )
    env = dict(os.environ, REPRO_NO_NUMPY="1")
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr


def test_pure_python_ec_matches_numpy():
    """The list/translate GF(256) paths produce NumPy-identical shards."""
    import random

    from repro.cluster.ec import ReedSolomon

    rng = random.Random(3)
    for k, m in ((2, 1), (4, 2), (3, 3)):
        rs = ReedSolomon(k=k, m=m)
        for size in (0, 1, 17, 4096):
            data = bytes(rng.getrandbits(8) for _ in range(size))
            np_shards = rs.encode(data)
            py_shards = rs._encode_py(data, rs.shard_size(size) if data else 1)
            assert np_shards == py_shards
            # decode via the pure path against numpy-encoded shards
            lost = list(np_shards)
            for dead in range(m):
                lost[dead] = None
            survivors = [i for i, s in enumerate(lost) if s is not None][: rs.k]
            from repro.cluster.ec import GF256

            inv = GF256.mat_inv([rs._matrix[i] for i in survivors])
            assert (
                rs._decode_py(lost, survivors, inv, rs.shard_size(size) if data else 1, size)
                == data
            )
