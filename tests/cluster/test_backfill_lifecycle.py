"""Tests for the single-owner ``needs_backfill`` lifecycle.

Both rejoin paths (``restart_osd``: disk intact; ``revive_osd``: fresh
disk) must flag the OSD ``needs_backfill``; only ``recover()`` clears
the flag, and only after a fully successful pass.  The regression this
pins down: a revived OSD that rejoined *unflagged* looked like a clean
acting replica with no data, which recovery's deletion planner could
read as a deletion witness — "the object is gone from a healthy acting
holder, so the stale copies elsewhere must be tombstones" — deleting the
last real copy of an object that was merely waiting for backfill.
"""

from repro.cluster import RadosCluster, Replicated, recover_sync


def fill(cluster, pool, n=20, size=4096):
    for i in range(n):
        cluster.write_full_sync(pool, f"obj{i}", bytes([i % 256]) * size)


def test_restart_sets_flag_and_only_recover_clears_it():
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool)
    cluster.fail_osd(0, mark_out=False)
    cluster.restart_osd(0)
    assert cluster.osds[0].needs_backfill
    recover_sync(cluster)
    assert not cluster.osds[0].needs_backfill


def test_revive_sets_flag_and_only_recover_clears_it():
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool)
    cluster.fail_osd(0)
    recover_sync(cluster)
    cluster.revive_osd(0)
    assert cluster.osds[0].needs_backfill
    recover_sync(cluster)
    assert not cluster.osds[0].needs_backfill


def test_revived_empty_osd_is_not_a_deletion_witness():
    """The regression: fail an OSD out, recover (copies move to the new
    acting set), then re-add it empty.  The acting sets flip back to
    include the empty OSD, making every recovery copy a "stray" — and an
    unflagged empty rejoiner would let the planner delete those strays
    before backfill, losing data."""
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool, n=30)
    cluster.fail_osd(0)
    recover_sync(cluster)
    cluster.revive_osd(0)
    assert len(cluster.osds[0].store) == 0
    stats = recover_sync(cluster)
    assert stats.objects_lost == 0
    for i in range(30):
        assert cluster.read_sync(pool, f"obj{i}") == bytes([i % 256]) * 4096
    # Backfill completed: every acting holder (including OSD 0 where it
    # acts) holds its copy.
    for i in range(30):
        key = cluster.object_key(pool, f"obj{i}")
        for osd_id in pool.acting_set_for(f"obj{i}"):
            assert cluster.osds[osd_id].store.exists(key)


def test_failed_recovery_leaves_flag_set():
    """A recovery pass that could not finish must NOT clear the flag —
    clearing it would promote a half-backfilled OSD to a trusted
    replica."""
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool)
    cluster.fail_osd(0, mark_out=False)
    cluster.restart_osd(0)
    # Take a source OSD down so some copy tasks fail mid-recovery.
    cluster.fail_osd(3, mark_out=False)
    stats = recover_sync(cluster)
    if stats.tasks_failed:
        assert cluster.osds[0].needs_backfill
    cluster.restart_osd(3)
    stats = recover_sync(cluster)
    assert stats.tasks_failed == 0
    assert not cluster.osds[0].needs_backfill
    assert not cluster.osds[3].needs_backfill
