"""Tests for OSD capacity enforcement (full ratio / ENOSPC)."""

import pytest

from repro.cluster import (
    DiskSpec,
    HardwareProfile,
    OsdFullError,
    RadosCluster,
    Replicated,
)

KiB = 1024


def tiny_cluster(capacity=64 * KiB, full_ratio=0.95):
    profile = HardwareProfile(
        disk=DiskSpec(capacity_bytes=capacity, full_ratio=full_ratio)
    )
    cluster = RadosCluster(
        profile=profile, num_hosts=2, osds_per_host=1, pg_num=8
    )
    pool = cluster.create_pool("p", Replicated(2))
    return cluster, pool


def test_writes_refused_when_full():
    cluster, pool = tiny_cluster(capacity=32 * KiB)
    with pytest.raises(OsdFullError):
        for i in range(100):
            cluster.write_full_sync(pool, f"o{i}", b"x" * (8 * KiB))


def test_full_flag_and_threshold():
    cluster, pool = tiny_cluster(capacity=32 * KiB, full_ratio=0.5)
    osd = cluster.osds[0]
    assert not osd.is_full
    assert osd.full_threshold == 16 * KiB
    try:
        for i in range(100):
            cluster.write_full_sync(pool, f"o{i}", b"x" * (4 * KiB))
    except OsdFullError:
        pass
    assert any(o.is_full or o.store.used_bytes() > 0 for o in cluster.osds.values())


def test_reads_and_deletes_still_work_when_full():
    cluster, pool = tiny_cluster(capacity=48 * KiB)
    written = []
    try:
        for i in range(100):
            cluster.write_full_sync(pool, f"o{i}", b"y" * (8 * KiB))
            written.append(f"o{i}")
    except OsdFullError:
        pass
    assert written
    assert cluster.read_sync(pool, written[0]) == b"y" * (8 * KiB)
    # Deleting frees space and writes resume.
    for oid in written:
        cluster.remove_sync(pool, oid)
    cluster.write_full_sync(pool, "fresh", b"z" * (4 * KiB))
    assert cluster.read_sync(pool, "fresh") == b"z" * (4 * KiB)


def test_dedup_postpones_enospc():
    """The capacity payoff: duplicate-heavy data fills a plain pool long
    before it fills a deduplicated one."""
    from repro.core import DedupConfig, DedupedStorage

    def writes_until_full(dedup: bool):
        profile = HardwareProfile(disk=DiskSpec(capacity_bytes=96 * KiB))
        cluster = RadosCluster(
            profile=profile, num_hosts=4, osds_per_host=1, pg_num=16
        )
        if dedup:
            storage = DedupedStorage(
                cluster,
                DedupConfig(chunk_size=4 * KiB, cache_on_flush=False),
                start_engine=False,
            )
        else:
            from repro.core import PlainStorage

            storage = PlainStorage(cluster)
        count = 0
        try:
            for i in range(200):
                storage.write_sync(f"o{i}", b"dup" * 1366)  # ~4 KiB, identical
                if dedup and i % 4 == 3:
                    storage.drain()  # flush so the cache doesn't fill the pool
                count += 1
        except OsdFullError:
            pass
        return count

    assert writes_until_full(dedup=True) > 1.5 * writes_until_full(dedup=False)
