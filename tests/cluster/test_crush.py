"""Tests for CRUSH-style placement: determinism, domains, balance,
and the straw2 minimal-movement property."""

from collections import Counter

from repro.cluster import ClusterMap, CrushMap, stable_hash64, straw2_select


def make_map(hosts=4, osds_per_host=4):
    cmap = ClusterMap()
    for h in range(hosts):
        for _ in range(osds_per_host):
            cmap.add_osd(f"host{h}")
    return cmap


def test_stable_hash_is_stable():
    assert stable_hash64("a", 1) == stable_hash64("a", 1)
    assert stable_hash64("a", 1) != stable_hash64("a", 2)
    assert stable_hash64(b"bytes") == stable_hash64(b"bytes")


def test_straw2_deterministic():
    items = [(f"i{i}", 1.0) for i in range(10)]
    assert straw2_select(42, items, 3) == straw2_select(42, items, 3)


def test_straw2_respects_n():
    items = [(f"i{i}", 1.0) for i in range(10)]
    assert len(straw2_select(7, items, 4)) == 4
    assert straw2_select(7, items, 0) == []


def test_straw2_weight_zero_excluded():
    items = [("a", 1.0), ("b", 0.0)]
    for key in range(50):
        assert straw2_select(key, items, 1) == ["a"]


def test_straw2_weight_proportional():
    items = [("heavy", 3.0), ("light", 1.0)]
    wins = Counter(straw2_select(key, items, 1)[0] for key in range(4000))
    ratio = wins["heavy"] / wins["light"]
    assert 2.4 < ratio < 3.6  # expect ~3.0


def test_map_pg_distinct_hosts():
    cmap = make_map(hosts=4, osds_per_host=4)
    crush = CrushMap(cmap)
    for pg in range(100):
        osds = crush.map_pg(1, pg, 3)
        hosts = {cmap.osds[i].host for i in osds}
        assert len(osds) == 3
        assert len(hosts) == 3  # host failure domain


def test_map_pg_falls_back_when_hosts_scarce():
    cmap = make_map(hosts=2, osds_per_host=4)
    crush = CrushMap(cmap)
    osds = crush.map_pg(1, 5, 3)
    assert len(osds) == 3
    assert len(set(osds)) == 3  # still distinct OSDs


def test_placement_changes_with_out_osd():
    cmap = make_map()
    crush = CrushMap(cmap)
    before = {pg: crush.map_pg(1, pg, 2) for pg in range(200)}
    victim = before[0][0]
    cmap.mark_out(victim)
    after = {pg: crush.map_pg(1, pg, 2) for pg in range(200)}
    # The out OSD never appears any more.
    assert all(victim not in osds for osds in after.values())
    # Straw2 minimal movement: a PG whose acting set did not touch the
    # victim's *host* cannot change (only that host's weight changed).
    victim_host = cmap.osds[victim].host
    moved_unrelated = 0
    for pg in range(200):
        hosts_before = {cmap.osds[i].host for i in before[pg]}
        if victim_host not in hosts_before:
            assert after[pg] == before[pg]
        elif victim not in before[pg] and after[pg] != before[pg]:
            moved_unrelated += 1
    # PGs on the victim's host via a sibling OSD may move (host weight
    # dropped), but most should stay put.
    assert moved_unrelated < 30


def test_balance_roughly_uniform():
    cmap = make_map(hosts=4, osds_per_host=4)
    crush = CrushMap(cmap)
    primary_count = Counter()
    for pg in range(4000):
        primary_count[crush.map_pg(1, pg, 2)[0]] += 1
    counts = [primary_count[i] for i in range(16)]
    mean = sum(counts) / len(counts)
    assert min(counts) > 0.5 * mean
    assert max(counts) < 1.6 * mean


def test_cache_invalidation_on_epoch_bump():
    cmap = make_map()
    crush = CrushMap(cmap)
    crush.map_pg(1, 1, 2)  # warm the cache
    cmap.add_osd("host0")
    second = crush.map_pg(1, 1, 2)
    assert len(second) == 2  # recomputed without error


def test_select_is_cached_copy_safe():
    cmap = make_map()
    crush = CrushMap(cmap)
    result = crush.map_pg(1, 1, 2)
    result.append(999)
    assert 999 not in crush.map_pg(1, 1, 2)
