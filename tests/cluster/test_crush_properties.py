"""Property-based tests for CRUSH placement invariants."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterMap, CrushMap


def build_map(host_osds):
    """host_osds: list of OSD counts per host."""
    cmap = ClusterMap()
    for h, count in enumerate(host_osds):
        for _ in range(count):
            cmap.add_osd(f"host{h}")
    return cmap


@given(
    host_osds=st.lists(st.integers(min_value=1, max_value=4), min_size=2, max_size=6),
    n=st.integers(min_value=1, max_value=3),
    keys=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_selection_invariants(host_osds, n, keys):
    """For any topology: deterministic, distinct OSDs, host-distinct
    while enough hosts exist."""
    cmap = build_map(host_osds)
    crush = CrushMap(cmap)
    for key in keys:
        osds = crush.select(key, n)
        assert osds == crush.select(key, n)  # deterministic
        assert len(osds) == min(n, sum(host_osds))
        assert len(set(osds)) == len(osds)  # distinct devices
        hosts = [cmap.osds[i].host for i in osds]
        if len(host_osds) >= n:
            assert len(set(hosts)) == len(hosts)  # distinct hosts


@given(
    out_victim=st.integers(min_value=0, max_value=11),
    n=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=40, deadline=None)
def test_minimal_movement_on_out(out_victim, n):
    """Marking one OSD out never moves PGs whose hosts were untouched."""
    cmap = build_map([3, 3, 3, 3])
    crush = CrushMap(cmap)
    before = {pg: crush.map_pg(1, pg, n) for pg in range(150)}
    victim_host = cmap.osds[out_victim].host
    cmap.mark_out(out_victim)
    for pg in range(150):
        hosts_before = {cmap.osds[i].host for i in before[pg]}
        after = crush.map_pg(1, pg, n)
        assert out_victim not in after
        if victim_host not in hosts_before:
            assert after == before[pg]


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_weight_increase_only_attracts(seed):
    """Doubling one OSD's weight only pulls PGs toward it — placements
    that did not involve its host stay identical (straw2's guarantee)."""
    cmap = build_map([1, 1, 1, 1])
    crush = CrushMap(cmap)
    keys = [seed * 1000 + i for i in range(100)]
    before = {k: crush.select(k, 2) for k in keys}
    cmap.osds[0].weight = 2.0
    cmap.epoch += 1
    gained = lost = 0
    for k in keys:
        after = crush.select(k, 2)
        if 0 in after and 0 not in before[k]:
            gained += 1
        if 0 in before[k] and 0 not in after:
            lost += 1
        if 0 not in before[k] and 0 not in after:
            assert after == before[k]
    assert lost == 0  # never repels


def test_balance_tracks_weights():
    """Long-run placement share is roughly weight-proportional."""
    cmap = build_map([1, 1])
    cmap.osds[0].weight = 3.0
    cmap.epoch += 1
    crush = CrushMap(cmap)
    wins = Counter(crush.select(k, 1)[0] for k in range(4000))
    ratio = wins[0] / wins[1]
    assert 2.3 < ratio < 3.8
