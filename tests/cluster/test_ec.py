"""Tests for GF(256) arithmetic and the Reed-Solomon codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import GF256, ReedSolomon


# ------------------------------------------------------------------ GF256


def test_gf_mul_identity_and_zero():
    for a in range(256):
        assert GF256.mul(a, 1) == a
        assert GF256.mul(a, 0) == 0


def test_gf_mul_commutative():
    for a in (3, 7, 91, 200, 255):
        for b in (5, 11, 130, 254):
            assert GF256.mul(a, b) == GF256.mul(b, a)


def test_gf_inverse():
    for a in range(1, 256):
        assert GF256.mul(a, GF256.inv(a)) == 1


def test_gf_inverse_of_zero_raises():
    with pytest.raises(ZeroDivisionError):
        GF256.inv(0)


def test_gf_pow():
    assert GF256.pow(2, 0) == 1
    assert GF256.pow(0, 5) == 0
    assert GF256.pow(2, 2) == GF256.mul(2, 2)
    assert GF256.pow(3, 3) == GF256.mul(3, GF256.mul(3, 3))


def test_gf_mat_inv_roundtrip():
    m = [[1, 2, 3], [4, 5, 6], [7, 8, 10]]
    inv = GF256.mat_inv(m)
    identity = GF256.mat_mul(m, inv)
    assert identity == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]


def test_gf_singular_matrix_raises():
    with pytest.raises(ValueError):
        GF256.mat_inv([[1, 2], [1, 2]])


# ------------------------------------------------------------ ReedSolomon


def test_encode_produces_k_plus_m_shards():
    rs = ReedSolomon(k=2, m=1)
    shards = rs.encode(b"abcdef")
    assert len(shards) == 3
    assert all(len(s) == 3 for s in shards)


def test_systematic_data_shards_contain_payload():
    rs = ReedSolomon(k=2, m=1)
    shards = rs.encode(b"abcdef")
    assert shards[0] + shards[1] == b"abcdef"


def test_decode_with_all_shards():
    rs = ReedSolomon(k=3, m=2)
    data = bytes(range(100)) * 3
    shards = rs.encode(data)
    assert rs.decode(shards, len(data)) == data


@pytest.mark.parametrize("lost", [[0], [1], [2], [0, 1], [0, 2], [1, 2], [3, 4], [0, 4]])
def test_decode_with_any_two_losses(lost):
    rs = ReedSolomon(k=3, m=2)
    data = b"the quick brown fox jumps over the lazy dog" * 7
    shards = list(rs.encode(data))
    for i in lost:
        shards[i] = None
    assert rs.decode(shards, len(data)) == data


def test_decode_too_many_losses_raises():
    rs = ReedSolomon(k=2, m=1)
    shards = list(rs.encode(b"hello"))
    shards[0] = shards[1] = None
    with pytest.raises(ValueError):
        rs.decode(shards, 5)


def test_decode_wrong_slot_count_raises():
    rs = ReedSolomon(k=2, m=1)
    with pytest.raises(ValueError):
        rs.decode([b"x", b"y"], 2)


def test_reconstruct_single_shard():
    rs = ReedSolomon(k=2, m=2)
    data = b"0123456789abcdef"
    shards = list(rs.encode(data))
    original = shards[2]
    shards[2] = None
    shards[3] = None
    assert rs.reconstruct_shard(shards, 2, len(data)) == original


def test_empty_payload():
    rs = ReedSolomon(k=2, m=1)
    shards = rs.encode(b"")
    assert rs.decode(shards, 0) == b""


def test_invalid_profile_rejected():
    with pytest.raises(ValueError):
        ReedSolomon(k=0, m=1)
    with pytest.raises(ValueError):
        ReedSolomon(k=200, m=100)


@given(
    data=st.binary(min_size=0, max_size=2048),
    k=st.integers(min_value=1, max_value=6),
    m=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(data, k, m):
    """encode->decode is the identity for any payload and profile."""
    rs = ReedSolomon(k=k, m=m)
    assert rs.decode(rs.encode(data), len(data)) == data


@given(
    data=st.binary(min_size=1, max_size=512),
    seed=st.integers(min_value=0, max_value=10**9),
)
@settings(max_examples=60, deadline=None)
def test_any_k_subset_decodes(data, seed):
    """Losing any m shards still decodes (MDS property)."""
    import random

    rs = ReedSolomon(k=3, m=2)
    shards = list(rs.encode(data))
    rng = random.Random(seed)
    for i in rng.sample(range(5), 2):
        shards[i] = None
    assert rs.decode(shards, len(data)) == data
