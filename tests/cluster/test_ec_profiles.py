"""Wider EC profiles (4+2, 6+3) through write/read/failure/recovery."""

import pytest

from repro.cluster import ErasureCoded, RadosCluster, recover_sync
from repro.sim import RngRegistry


@pytest.mark.parametrize("k,m", [(4, 2), (6, 3)])
def test_wide_profile_roundtrip_and_fault_tolerance(k, m):
    # Enough hosts for one shard per host.
    cluster = RadosCluster(num_hosts=k + m, osds_per_host=1, pg_num=32)
    pool = cluster.create_pool("ec", ErasureCoded(k, m))
    rng = RngRegistry(1).stream("data")
    payloads = {f"o{i}": rng.randbytes(5000 + i * 101) for i in range(10)}
    for oid, data in payloads.items():
        cluster.write_full_sync(pool, oid, data)

    # Raw payload amplification ~ (k+m)/k.
    raw = sum(
        o.store.data_bytes() for o in cluster.osds.values()
    )
    logical = sum(len(d) for d in payloads.values())
    assert raw == pytest.approx(logical * (k + m) / k, rel=0.02)

    # Any m failures survive.
    for osd_id in range(m):
        cluster.cluster_map.mark_down(osd_id)
    for oid, data in payloads.items():
        assert cluster.read_sync(pool, oid) == data

    # Mark out and recover to full shard count.
    for osd_id in range(m):
        cluster.cluster_map.mark_out(osd_id)
    stats = recover_sync(cluster)
    assert stats.objects_lost == 0
    for oid, data in payloads.items():
        assert cluster.read_sync(pool, oid) == data


def test_wide_profile_dedup_tier():
    from repro.core import DedupConfig, DedupedStorage

    cluster = RadosCluster(num_hosts=6, osds_per_host=2, pg_num=32)
    storage = DedupedStorage(
        cluster,
        DedupConfig(chunk_size=2048, cache_on_flush=False),
        chunk_redundancy=ErasureCoded(4, 2),
        start_engine=False,
    )
    for i in range(8):
        storage.write_sync(f"obj{i}", b"wide-ec" * 600)
    storage.drain()
    report = storage.space_report()
    assert report.chunk_objects == 3  # 4200 bytes over 2 KiB chunks
    assert storage.read_sync("obj5") == b"wide-ec" * 600
    # Chunk pool raw payload ~1.5x unique data (4+2).
    pool_id = storage.tier.chunk_pool.pool_id
    shard_payload = sum(
        osd.store.get(key).allocated_bytes()
        for osd in cluster.osds.values()
        for key in osd.store.keys()
        if key.pool_id == pool_id
    )
    assert shard_payload == pytest.approx(1.5 * report.chunk_data_bytes, rel=0.02)
