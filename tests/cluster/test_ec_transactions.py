"""Tests for generic transactions on erasure-coded pools (full-stripe RMW)."""

import pytest

from repro.cluster import ErasureCoded, RadosCluster, Transaction


@pytest.fixture
def setup():
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    pool = cluster.create_pool("ec", ErasureCoded(k=2, m=1))
    return cluster, pool


def test_ec_txn_write_and_xattr(setup):
    cluster, pool = setup
    key = cluster.object_key(pool, "obj")
    txn = Transaction().write(key, 0, b"payload").setxattr(key, "meta", b"value")
    cluster.submit_sync(pool, "obj", txn)
    assert cluster.read_sync(pool, "obj") == b"payload"
    assert cluster.run(cluster.getxattr(pool, "obj", "meta")) == b"value"


def test_ec_txn_partial_write_is_rmw(setup):
    cluster, pool = setup
    cluster.write_full_sync(pool, "obj", b"a" * 1000)
    key = cluster.object_key(pool, "obj")
    cluster.submit_sync(pool, "obj", Transaction().write(key, 500, b"MID"))
    got = cluster.read_sync(pool, "obj")
    assert got[:500] == b"a" * 500 and got[500:503] == b"MID"


def test_ec_txn_preserves_existing_metadata(setup):
    cluster, pool = setup
    key = cluster.object_key(pool, "obj")
    cluster.submit_sync(
        pool, "obj", Transaction().write_full(key, b"v1").setxattr(key, "keep", b"me")
    )
    cluster.submit_sync(pool, "obj", Transaction().write(key, 0, b"V"))
    assert cluster.run(cluster.getxattr(pool, "obj", "keep")) == b"me"
    assert cluster.read_sync(pool, "obj") == b"V1"


def test_ec_txn_omap(setup):
    cluster, pool = setup
    key = cluster.object_key(pool, "obj")
    cluster.submit_sync(
        pool, "obj", Transaction().write_full(key, b"d").omap_set(key, {"k": b"v"})
    )
    assert cluster.run(cluster.omap_get(pool, "obj", "k")) == b"v"
    cluster.submit_sync(pool, "obj", Transaction().omap_rm(key, ["k"]))
    with pytest.raises(KeyError):
        cluster.run(cluster.omap_get(pool, "obj", "k"))


def test_ec_txn_zero_and_truncate(setup):
    cluster, pool = setup
    key = cluster.object_key(pool, "obj")
    cluster.write_full_sync(pool, "obj", b"z" * 1000)
    cluster.submit_sync(pool, "obj", Transaction().zero(key, 100, 100))
    got = cluster.read_sync(pool, "obj")
    assert got[100:200] == b"\x00" * 100
    cluster.submit_sync(pool, "obj", Transaction().truncate(key, 150))
    assert cluster.run(cluster.stat(pool, "obj")) == 150


def test_ec_txn_remove(setup):
    cluster, pool = setup
    key = cluster.object_key(pool, "obj")
    cluster.write_full_sync(pool, "obj", b"gone")
    cluster.submit_sync(pool, "obj", Transaction().remove(key))
    assert not cluster.exists(pool, "obj")


def test_ec_txn_costs_more_than_replicated(setup):
    """The whole point: a tiny mutation on EC pays a full-stripe RMW."""
    cluster, pool = setup
    rpool = cluster.create_pool("rep")
    big = b"b" * 262144
    cluster.write_full_sync(pool, "obj", big)
    cluster.write_full_sync(rpool, "obj", big)
    t0 = cluster.sim.now
    cluster.write_sync(rpool, "obj", 10, b"!")
    rep_cost = cluster.sim.now - t0
    t0 = cluster.sim.now
    cluster.write_sync(pool, "obj", 10, b"!")
    ec_cost = cluster.sim.now - t0
    assert ec_cost > 3 * rep_cost


def test_ec_txn_degraded(setup):
    cluster, pool = setup
    cluster.write_full_sync(pool, "obj", b"d" * 3000)
    key = cluster.object_key(pool, "obj")
    holders = [o.osd_id for o in cluster.osds.values() if o.store.exists(key)]
    cluster.cluster_map.mark_down(holders[0])
    cluster.submit_sync(pool, "obj", Transaction().write(key, 0, b"NEW"))
    got = cluster.read_sync(pool, "obj")
    assert got[:3] == b"NEW"
    assert got[3:] == b"d" * 2997
