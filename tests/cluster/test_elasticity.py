"""Tests for online elasticity: expand/decommission + dedup-aware rebalance."""

from repro.cluster import (
    ErasureCoded,
    RadosCluster,
    Rebalancer,
    Replicated,
    compute_remap,
    placement_report,
    rebalance_sync,
    recover_sync,
)
from repro.core import DedupConfig, DedupedStorage, scrub_sync
from repro.obs import Tracer


def fill(cluster, pool, n=20, size=4096, prefix="obj"):
    for i in range(n):
        cluster.write_full_sync(pool, f"{prefix}{i}", bytes([i % 256]) * size)


def all_ok(cluster, pool, n, size, prefix="obj"):
    for i in range(n):
        assert cluster.read_sync(pool, f"{prefix}{i}") == bytes([i % 256]) * size


def test_expand_produces_remap_diff():
    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool)
    before = cluster.snapshot_acting_sets()
    diff = cluster.expand("host2", 2)
    assert diff.pgs_remapped > 0
    assert len(cluster.osds) == 6
    # Every diff entry records a real old->new move for a known PG.
    for remap in diff.remaps:
        assert tuple(before[(remap.pool_id, remap.pg)]) == remap.old
        assert remap.old != remap.new
    assert len(cluster.active_remaps()) == diff.pgs_remapped


def test_compute_remap_empty_when_nothing_changed():
    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)
    cluster.create_pool("data", Replicated(2))
    diff = compute_remap(cluster, cluster.snapshot_acting_sets())
    assert diff.pgs_remapped == 0


def test_rebalance_migrates_and_trims():
    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool)
    cluster.expand("host2", 2)
    stats = rebalance_sync(cluster)
    assert stats.objects_moved > 0
    assert stats.bytes_moved > 0
    assert stats.tasks_failed == 0
    assert not cluster.active_remaps()
    assert placement_report(cluster) == []
    all_ok(cluster, pool, 20, 4096)


def test_reads_and_writes_flow_during_remap():
    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool)
    cluster.expand("host2", 2)
    # With remaps active (nothing migrated yet), IO keeps working:
    all_ok(cluster, pool, 20, 4096)
    cluster.write_full_sync(pool, "during", b"x" * 8192)
    cluster.write_full_sync(pool, "obj0", b"y" * 4096)  # overwrite
    assert cluster.read_sync(pool, "during") == b"x" * 8192
    assert cluster.read_sync(pool, "obj0") == b"y" * 4096
    rebalance_sync(cluster)
    recover_sync(cluster)  # trims union copies of mid-remap creations
    assert placement_report(cluster) == []
    assert cluster.read_sync(pool, "during") == b"x" * 8192
    assert cluster.read_sync(pool, "obj0") == b"y" * 4096


def test_decommission_drains_and_finalizes():
    cluster = RadosCluster(num_hosts=3, osds_per_host=2, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool)
    diff = cluster.decommission_osd(1)
    assert diff.pgs_remapped > 0
    assert 1 not in {o for r in cluster.active_remaps() for o in r.new}
    rebalance_sync(cluster)
    assert len(cluster.osds[1].store) == 0
    cluster.finalize_decommission(1)
    assert 1 not in cluster.osds
    assert 1 not in cluster.cluster_map.osds
    all_ok(cluster, pool, 20, 4096)
    assert placement_report(cluster) == []


def test_restart_does_not_cancel_decommission():
    """A daemon restart of a decommissioned OSD must leave it out of
    placement — mark_in on restart would silently undo the drain with
    no remap registered to move the data back."""
    cluster = RadosCluster(num_hosts=3, osds_per_host=2, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool)
    cluster.decommission_osd(1)
    cluster.fail_osd(1, mark_out=False)
    cluster.restart_osd(1)
    assert not cluster.cluster_map.osds[1].in_cluster
    rebalance_sync(cluster)
    recover_sync(cluster)
    cluster.finalize_decommission(1)
    assert placement_report(cluster) == []
    all_ok(cluster, pool, 20, 4096)


def test_finalize_decommission_refuses_undrained_osd():
    cluster = RadosCluster(num_hosts=3, osds_per_host=2, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool)
    cluster.decommission_osd(1)
    try:
        cluster.finalize_decommission(1)
    except ValueError:
        pass
    else:
        raise AssertionError("finalize on an undrained OSD must fail")


def test_ec_migration_preserves_user_xattrs():
    cluster = RadosCluster(num_hosts=3, osds_per_host=2, pg_num=16)
    pool = cluster.create_pool("ec", ErasureCoded(2, 1))
    fill(cluster, pool, n=12, size=12288)
    cluster.run(cluster.setxattr(pool, "obj0", "user.tag", b"keep-me"))
    cluster.expand("host3", 2)
    stats = rebalance_sync(cluster)
    assert stats.tasks_failed == 0
    assert placement_report(cluster) == []
    all_ok(cluster, pool, 12, 12288)
    # The user xattr survived shard reconstruction on the new OSDs.
    key = cluster.object_key(pool, "obj0")
    for osd_id in pool.acting_set_for("obj0"):
        assert cluster.osds[osd_id].store.getxattr(key, "user.tag") == b"keep-me"


def test_crash_mid_migration_is_resumable():
    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool)
    cluster.expand("host2", 2)
    # Crash one of the NEW OSDs: migration into it must fail and stay
    # pending, without losing anything.
    cluster.fail_osd(4, mark_out=False)
    stats1 = rebalance_sync(cluster, max_passes=2)
    assert cluster.active_remaps()  # not done: a target is down
    all_ok(cluster, pool, 20, 4096)  # reads still fine (degraded)
    cluster.restart_osd(4)
    recover_sync(cluster)
    stats2 = rebalance_sync(cluster)
    assert stats2.tasks_failed == 0
    assert not cluster.active_remaps()
    assert placement_report(cluster) == []
    all_ok(cluster, pool, 20, 4096)


def test_rebalance_is_idempotent():
    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool)
    cluster.expand("host2", 2)
    rebalance_sync(cluster)
    stats = rebalance_sync(cluster)  # nothing left: a no-op
    assert stats.objects_moved == 0
    assert placement_report(cluster) == []


def test_rate_limit_slows_migration():
    def migrate_time(rate):
        cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)
        pool = cluster.create_pool("data", Replicated(2))
        fill(cluster, pool, n=20, size=65536)
        cluster.expand("host2", 2)
        start = cluster.sim.now
        rebalance_sync(cluster, rate_limit_bps=rate)
        return cluster.sim.now - start

    assert migrate_time(64 * 1024) > migrate_time(None)


def test_rebalance_emits_spans():
    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool)
    cluster.expand("host2", 2)
    tracer = Tracer(lambda: cluster.sim.now)
    root = tracer.root_span("op.rebalance")
    engine = Rebalancer(cluster)

    def drive():
        yield from engine.run_to_completion(span=root)

    cluster.run(drive())
    root.finish()
    stages = {r["stage"] for r in tracer.to_records()}
    assert "rebalance.pass" in stages
    assert "rebalance.pg" in stages
    assert "rebalance.copy" in stages


def test_rebalance_stats_accounting():
    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool, n=20, size=4096)
    cluster.expand("host2", 2)
    stats = rebalance_sync(cluster)
    assert stats.bytes_moved == sum(stats.bytes_by_pool.values())
    assert stats.pgs_completed > 0
    assert stats.passes >= 1
    assert stats.degraded_seconds >= 0.0
    assert any("copies moved" in line for line in stats.summary_lines())


def test_dedup_tier_survives_expansion():
    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=32)
    storage = DedupedStorage(
        cluster, DedupConfig(chunk_size=4096), start_engine=False
    )
    payloads = {f"o{i}": bytes([i % 7]) * 16384 for i in range(10)}
    for oid, data in payloads.items():
        storage.write_sync(oid, data)
    storage.drain()
    chunks_before = storage.space_report().chunk_objects
    storage.expand("host2", 2)
    # Reads and writes keep working against the union while remapped.
    assert storage.read_sync("o0", 0, 16384) == payloads["o0"]
    stats = storage.rebalance_sync()
    assert stats.tasks_failed == 0
    recover_sync(cluster)
    assert placement_report(cluster) == []
    # Migration moved chunk objects without duplicating or losing any:
    # refcount metadata travelled inside the chunk objects' xattrs.
    report = storage.space_report()
    assert report.chunk_objects == chunks_before
    assert scrub_sync(storage.tier).clean
    for oid, data in payloads.items():
        assert storage.read_sync(oid, 0, len(data)) == data
