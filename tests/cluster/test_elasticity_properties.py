"""Property-based tests: elasticity event sequences always converge.

Any interleaving of expand / decommission / fail / restart events,
once every OSD is back up and rebalance + recovery have run, must leave
the cluster CRUSH-clean (every copy exactly on the acting set, replicas
byte-identical, EC shards in their slots) with every object readable and
byte-identical to what was written.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.cluster import (  # noqa: E402
    NotEnoughReplicas,
    OsdDownError,
    RadosCluster,
    Replicated,
    placement_report,
    rebalance_sync,
    recover_sync,
)

# Each event is (kind, argument-seed); arguments are resolved against the
# cluster state at apply time so every sequence is valid by construction.
EVENT = st.tuples(
    st.sampled_from(["expand", "decommission", "fail", "restart"]),
    st.integers(min_value=0, max_value=7),
)


def apply_event(cluster, kind, arg, state):
    osd_ids = sorted(cluster.osds)
    if kind == "expand" and state["hosts"] < 6:
        cluster.expand(f"host{state['hosts']}", 2)
        state["hosts"] += 1
    elif kind == "decommission":
        in_ids = [
            i for i in osd_ids
            if cluster.cluster_map.osds[i].in_cluster
            and i not in state["decommissioned"]
        ]
        # Keep enough OSDs in placement for Replicated(2) to make sense.
        if len(in_ids) > 3:
            victim = in_ids[arg % len(in_ids)]
            cluster.decommission_osd(victim)
            state["decommissioned"].add(victim)
    elif kind == "fail":
        up_ids = [i for i in osd_ids if cluster.osds[i].up]
        # Never take the last two down: writes must stay serviceable.
        if len(up_ids) > 2:
            victim = up_ids[arg % len(up_ids)]
            cluster.fail_osd(victim, mark_out=False)
            state["down"].add(victim)
    elif kind == "restart":
        if state["down"]:
            victim = sorted(state["down"])[arg % len(state["down"])]
            cluster.restart_osd(victim)
            state["down"].discard(victim)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(events=st.lists(EVENT, min_size=1, max_size=6), data_seed=st.integers(0, 3))
def test_event_sequences_converge_to_clean_placement(events, data_seed):
    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    payloads = {
        f"obj{i}": bytes([(i * 7 + data_seed) % 256]) * 4096 for i in range(12)
    }
    for oid, data in sorted(payloads.items()):
        cluster.write_full_sync(pool, oid, data)
    state = {"hosts": 2, "down": set(), "decommissioned": set()}
    for i, (kind, arg) in enumerate(events):
        apply_event(cluster, kind, arg, state)
        # Interleave writes between events so data lands mid-topology-change.
        # A write may be refused outright when every acting replica of its
        # PG is down — the two-phase commit fails closed rather than
        # accepting a write it cannot make durable; such an object simply
        # does not exist.
        oid = f"mid{i}"
        data = bytes([(i + 11) % 256]) * 4096
        try:
            cluster.write_full_sync(pool, oid, data)
            payloads[oid] = data
        except (NotEnoughReplicas, OsdDownError):
            pass
    # Converge: everything back up, then alternate rebalance + recovery
    # until the remap overlay is gone.
    for osd_id in sorted(state["down"]):
        cluster.restart_osd(osd_id)
    for _ in range(4):
        rebalance_sync(cluster)
        recover_sync(cluster)
        if not cluster.active_remaps():
            break
    assert not cluster.active_remaps()
    assert placement_report(cluster) == []
    for oid, data in sorted(payloads.items()):
        assert cluster.read_sync(pool, oid) == data
