"""Tests for configurable failure domains (osd / host / rack)."""

import pytest

from repro.cluster import ClusterMap, CrushMap, RadosCluster, Replicated, recover_sync


def rack_cluster(racks=2, hosts_per_rack=2, osds_per_host=2):
    cluster = RadosCluster(num_hosts=0, osds_per_host=0, pg_num=32)
    for r in range(racks):
        for h in range(hosts_per_rack):
            cluster.add_host(f"r{r}h{h}", osds_per_host, rack=f"rack{r}")
    return cluster


def test_invalid_failure_domain():
    cmap = ClusterMap()
    cmap.add_osd("h0")
    with pytest.raises(ValueError):
        CrushMap(cmap).select(1, 1, failure_domain="datacenter")


def test_osd_domain_allows_same_host():
    cluster = RadosCluster(num_hosts=1, osds_per_host=4, pg_num=32)
    pool = cluster.create_pool("p", Replicated(2), failure_domain="osd")
    for pg in range(32):
        acting = pool.acting_set(pg)
        assert len(set(acting)) == 2  # distinct devices, same host is fine


def test_host_domain_needs_distinct_hosts():
    cluster = rack_cluster()
    pool = cluster.create_pool("p", Replicated(2), failure_domain="host")
    for pg in range(32):
        hosts = {cluster.cluster_map.osds[i].host for i in pool.acting_set(pg)}
        assert len(hosts) == 2


def test_rack_domain_spreads_across_racks():
    cluster = rack_cluster(racks=3)
    pool = cluster.create_pool("p", Replicated(3), failure_domain="rack")
    for pg in range(32):
        racks = {cluster.cluster_map.osds[i].rack for i in pool.acting_set(pg)}
        assert len(racks) == 3


def test_rack_domain_survives_whole_rack_failure():
    cluster = rack_cluster(racks=2, hosts_per_rack=2, osds_per_host=2)
    pool = cluster.create_pool("p", Replicated(2), failure_domain="rack")
    for i in range(30):
        cluster.write_full_sync(pool, f"obj{i}", bytes([i]) * 2048)
    # Kill every OSD in rack0.
    for osd_id, info in list(cluster.cluster_map.osds.items()):
        if info.rack == "rack0":
            cluster.fail_osd(osd_id)
    stats = recover_sync(cluster)
    assert stats.objects_lost == 0  # rack-level domains: no PG lost both copies
    for i in range(30):
        assert cluster.read_sync(pool, f"obj{i}") == bytes([i]) * 2048


def test_host_domain_can_lose_data_on_rack_failure():
    """The contrast: host-level domains may co-locate both replicas in
    one rack, so a rack failure can lose objects."""
    cluster = rack_cluster(racks=2, hosts_per_rack=2, osds_per_host=2)
    pool = cluster.create_pool("p", Replicated(2), failure_domain="host")
    for i in range(60):
        cluster.write_full_sync(pool, f"obj{i}", bytes([i % 250]) * 1024)
    for osd_id, info in list(cluster.cluster_map.osds.items()):
        if info.rack == "rack0":
            cluster.fail_osd(osd_id)
    stats = recover_sync(cluster)
    assert stats.objects_lost > 0


def test_rack_fallback_when_racks_scarce():
    cluster = rack_cluster(racks=2)
    pool = cluster.create_pool("p", Replicated(3), failure_domain="rack")
    acting = pool.acting_set(0)
    assert len(set(acting)) == 3  # falls back to distinct OSDs


def test_dedup_tier_on_rack_domains():
    from repro.core import DedupConfig, DedupedStorage

    cluster = rack_cluster(racks=3)
    storage = DedupedStorage(
        cluster,
        DedupConfig(chunk_size=1024),
        start_engine=False,
    )
    # Re-create pools with rack domains.
    storage.tier.metadata_pool.failure_domain = "rack"
    storage.tier.chunk_pool.failure_domain = "rack"
    for i in range(5):
        storage.write_sync(f"o{i}", b"rack-safe" * 200)
    storage.drain()
    for i in range(5):
        assert storage.read_sync(f"o{i}") == b"rack-safe" * 200
