"""Tests for the device models' timing behaviour."""

import pytest

from repro.cluster import Cpu, CpuSpec, Disk, DiskSpec, Nic, NicSpec
from repro.sim import Simulator

MiB = 1024 * 1024


def run_proc(sim, gen):
    p = sim.process(gen)
    sim.run()
    assert p.ok
    return p.value


def test_disk_write_time_matches_spec():
    spec = DiskSpec(seq_bandwidth=500 * MiB, write_iops=30_000)
    sim = Simulator()
    disk = Disk(sim, spec)

    def proc():
        yield from disk.write(4096)
        return sim.now

    finish = run_proc(sim, proc())
    assert finish == pytest.approx(1 / 30_000 + 4096 / (500 * MiB))


def test_disk_reads_cheaper_than_writes():
    spec = DiskSpec()
    assert spec.read_time(4096) < spec.write_time(4096)


def test_disk_serializes_requests():
    sim = Simulator()
    disk = Disk(sim, DiskSpec())

    def proc():
        for _ in range(10):
            yield from disk.write(4096)
        return sim.now

    finish = run_proc(sim, proc())
    assert finish == pytest.approx(10 * DiskSpec().write_time(4096))
    assert disk.writes == 10
    assert disk.bytes_written == 40960


def test_disk_saturated_iops_close_to_rated():
    """A closed-loop 4K random write stream achieves ~rated IOPS."""
    sim = Simulator()
    spec = DiskSpec()
    disk = Disk(sim, spec)

    def worker():
        while sim.now < 0.1:
            yield from disk.write(4096)

    sim.process(worker())
    sim.run()
    achieved = disk.writes / sim.now
    # 4K at 500MB/s adds ~8us to the 33us op: expect ~24k IOPS.
    assert 0.6 * spec.write_iops < achieved <= spec.write_iops


def test_nic_transfer_time():
    spec = NicSpec(bandwidth=1.25 * 1024 * MiB, latency=50e-6)
    sim = Simulator()
    nic = Nic(sim, spec)

    def proc():
        yield from nic.send(1024 * 1024)
        return sim.now

    finish = run_proc(sim, proc())
    assert finish == pytest.approx(spec.transfer_time(1024 * 1024))
    assert nic.bytes_sent == 1024 * 1024


def test_nic_send_receive_independent_queues():
    sim = Simulator()
    nic = Nic(sim, NicSpec())

    def sender():
        yield from nic.send(10 * MiB)
        return sim.now

    def receiver():
        yield from nic.receive(10 * MiB)
        return sim.now

    s = sim.process(sender())
    r = sim.process(receiver())
    sim.run()
    # Full duplex: both finish at the single-transfer time.
    assert s.value == pytest.approx(r.value)


def test_cpu_parallelism():
    sim = Simulator()
    cpu = Cpu(sim, CpuSpec(cores=4))

    def worker():
        yield from cpu.execute(1.0)

    for _ in range(8):
        sim.process(worker())
    sim.run()
    assert sim.now == pytest.approx(2.0)  # 8 jobs / 4 cores


def test_cpu_utilization_accounting():
    sim = Simulator()
    cpu = Cpu(sim, CpuSpec(cores=2))

    def worker():
        yield from cpu.execute(1.0)
        yield sim.timeout(1.0)

    sim.process(worker())
    sim.run()
    # 1 core-second busy over 2 seconds on 2 cores = 25%.
    assert cpu.utilization() == pytest.approx(0.25)


def test_cpu_zero_cost_is_free():
    sim = Simulator()
    cpu = Cpu(sim, CpuSpec())

    def worker():
        yield from cpu.execute(0.0)
        return sim.now

    assert run_proc(sim, worker()) == 0.0


def test_fingerprint_cost_scales_with_size():
    spec = CpuSpec()
    assert spec.fingerprint_time(2 * MiB) == pytest.approx(
        2 * spec.fingerprint_time(MiB)
    )
