"""Tests for the per-OSD object store and atomic transactions."""

import pytest

from repro.cluster import (
    NoSuchObject,
    ObjectExists,
    ObjectKey,
    ObjectStore,
    PER_OBJECT_OVERHEAD,
    StoredObject,
    Transaction,
)


def key(name="obj", pool=1, pg=0):
    return ObjectKey(pool, pg, name)


def test_write_full_and_read():
    store = ObjectStore()
    store.apply(Transaction().write_full(key(), b"hello"))
    assert store.read(key()) == b"hello"
    assert store.stat(key()) == 5


def test_partial_write_within_object():
    store = ObjectStore()
    store.apply(Transaction().write_full(key(), b"aaaaaaaa"))
    store.apply(Transaction().write(key(), 2, b"BB"))
    assert store.read(key()) == b"aaBBaaaa"


def test_partial_write_extends_object():
    store = ObjectStore()
    store.apply(Transaction().write(key(), 4, b"xy"))
    assert store.read(key()) == b"\x00\x00\x00\x00xy"


def test_read_offset_length_and_short_read():
    store = ObjectStore()
    store.apply(Transaction().write_full(key(), b"0123456789"))
    assert store.read(key(), 2, 3) == b"234"
    assert store.read(key(), 8, 100) == b"89"
    assert store.read(key(), 3) == b"3456789"


def test_truncate_shrinks_and_extends():
    store = ObjectStore()
    store.apply(Transaction().write_full(key(), b"0123456789"))
    store.apply(Transaction().truncate(key(), 4))
    assert store.read(key()) == b"0123"
    store.apply(Transaction().truncate(key(), 6))
    assert store.read(key()) == b"0123\x00\x00"


def test_remove():
    store = ObjectStore()
    store.apply(Transaction().write_full(key(), b"x"))
    store.apply(Transaction().remove(key()))
    assert not store.exists(key())


def test_remove_missing_raises_and_nothing_applied():
    store = ObjectStore()
    txn = Transaction().write_full(key("a"), b"data").remove(key("missing"))
    with pytest.raises(NoSuchObject):
        store.apply(txn)
    # Atomicity: the earlier write did not happen either.
    assert not store.exists(key("a"))


def test_exclusive_create():
    store = ObjectStore()
    store.apply(Transaction().create(key(), exclusive=True))
    with pytest.raises(ObjectExists):
        store.apply(Transaction().create(key(), exclusive=True))
    # Non-exclusive create of existing object is fine.
    store.apply(Transaction().create(key()))


def test_create_then_remove_in_one_txn():
    store = ObjectStore()
    txn = Transaction().write_full(key(), b"x").remove(key())
    store.apply(txn)
    assert not store.exists(key())


def test_xattrs():
    store = ObjectStore()
    store.apply(
        Transaction().write_full(key(), b"d").setxattr(key(), "chunkmap", b"\x01\x02")
    )
    assert store.getxattr(key(), "chunkmap") == b"\x01\x02"
    store.apply(Transaction().rmxattr(key(), "chunkmap"))
    with pytest.raises(KeyError):
        store.getxattr(key(), "chunkmap")


def test_rmxattr_missing_raises():
    store = ObjectStore()
    store.apply(Transaction().write_full(key(), b"d"))
    with pytest.raises(KeyError):
        store.apply(Transaction().rmxattr(key(), "nope"))


def test_setxattr_then_rmxattr_same_txn():
    store = ObjectStore()
    store.apply(
        Transaction()
        .write_full(key(), b"d")
        .setxattr(key(), "tmp", b"v")
        .rmxattr(key(), "tmp")
    )
    with pytest.raises(KeyError):
        store.getxattr(key(), "tmp")


def test_omap_set_get_rm():
    store = ObjectStore()
    store.apply(Transaction().omap_set(key(), {"k1": b"v1", "k2": b"v2"}))
    assert store.omap_get(key(), "k1") == b"v1"
    store.apply(Transaction().omap_rm(key(), ["k1", "missing-is-ok"]))
    with pytest.raises(KeyError):
        store.omap_get(key(), "k1")
    assert store.omap_get(key(), "k2") == b"v2"


def test_footprint_accounting():
    store = ObjectStore()
    store.apply(
        Transaction()
        .write_full(key(), b"x" * 100)
        .setxattr(key(), "a", b"y" * 10)
        .omap_set(key(), {"k": b"z" * 5})
    )
    expected = PER_OBJECT_OVERHEAD + 100 + (1 + 10) + (1 + 5)
    assert store.used_bytes() == expected
    assert store.data_bytes() == 100


def test_keys_in_pg():
    store = ObjectStore()
    store.apply(Transaction().write_full(ObjectKey(1, 3, "a"), b"1"))
    store.apply(Transaction().write_full(ObjectKey(1, 4, "b"), b"2"))
    store.apply(Transaction().write_full(ObjectKey(2, 3, "c"), b"3"))
    assert store.keys_in_pg(1, 3) == [ObjectKey(1, 3, "a")]
    assert len(store) == 3


def test_io_bytes_costing():
    txn = (
        Transaction()
        .write_full(key(), b"x" * 100)
        .write(key(), 0, b"y" * 50)
        .setxattr(key(), "a", b"z" * 10)
        .remove(key())
    )
    assert txn.io_bytes == 100 + 50 + 10 + 64


def test_clone_is_deep():
    obj = StoredObject(data=bytearray(b"abc"), xattrs={"k": b"v"})
    clone = obj.clone()
    clone.data[0] = ord("z")
    clone.xattrs["k"] = b"w"
    assert obj.data == bytearray(b"abc")
    assert obj.xattrs["k"] == b"v"


def test_negative_offset_rejected():
    with pytest.raises(ValueError):
        Transaction().write(key(), -1, b"x")
    with pytest.raises(ValueError):
        Transaction().truncate(key(), -5)


def test_zero_punches_hole():
    store = ObjectStore()
    store.apply(Transaction().write_full(key(), b"x" * 100))
    store.apply(Transaction().zero(key(), 20, 30))
    assert store.read(key(), 20, 30) == b"\x00" * 30
    assert store.stat(key()) == 100  # length unchanged
    obj = store.get(key())
    assert obj.allocated_bytes() == 70
    assert store.used_bytes() == PER_OBJECT_OVERHEAD + 70


def test_write_into_hole_reallocates():
    store = ObjectStore()
    store.apply(Transaction().write_full(key(), b"x" * 100))
    store.apply(Transaction().zero(key(), 0, 50))
    store.apply(Transaction().write(key(), 10, b"y" * 20))
    obj = store.get(key())
    assert obj.allocated_bytes() == 70  # 50 + re-filled 20
    assert store.read(key(), 10, 20) == b"y" * 20
    assert store.read(key(), 0, 10) == b"\x00" * 10


def test_write_full_clears_holes():
    store = ObjectStore()
    store.apply(Transaction().write_full(key(), b"x" * 100))
    store.apply(Transaction().zero(key(), 0, 100))
    store.apply(Transaction().write_full(key(), b"z" * 40))
    assert store.get(key()).allocated_bytes() == 40


def test_zero_beyond_eof_clamped():
    store = ObjectStore()
    store.apply(Transaction().write_full(key(), b"x" * 10))
    store.apply(Transaction().zero(key(), 5, 100))
    assert store.get(key()).allocated_bytes() == 5
    assert store.stat(key()) == 10


def test_truncate_clips_holes():
    store = ObjectStore()
    store.apply(Transaction().write_full(key(), b"x" * 100))
    store.apply(Transaction().zero(key(), 50, 100))
    store.apply(Transaction().truncate(key(), 60))
    assert store.get(key()).allocated_bytes() == 50


def test_zero_invalid_range():
    with pytest.raises(ValueError):
        Transaction().zero(key(), -1, 5)


def test_clone_preserves_holes():
    store = ObjectStore()
    store.apply(Transaction().write_full(key(), b"x" * 100))
    store.apply(Transaction().zero(key(), 0, 40))
    clone = store.get(key()).clone()
    assert clone.allocated_bytes() == 60
